// End-to-end trace: a co-located write/read through the real initiator +
// target engines under the sim clock lands initiator-side AND target-side
// spans on one timeline, detours (shm demotion, abort) show up as resilience
// events, and the exported Chrome JSON is deterministic run-to-run.
//
// These tests use the process-global tracer the way production does; each
// test resets it, enables recording, and disables it on the way out.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "af/locality.h"
#include "common/json_parse.h"
#include "net/pipe_channel.h"
#include "nvmf/initiator.h"
#include "nvmf/target.h"
#include "sim/scheduler.h"
#include "ssd/real_device.h"
#include "telemetry/telemetry.h"

namespace oaf::nvmf {
namespace {

struct TraceHarness {
  explicit TraceHarness(af::AfConfig cfg)
      : broker(1), device(sched, 512, 1 << 18), subsystem("nqn") {
    (void)subsystem.add_namespace(1, &device);
    auto pair = net::make_pipe_channel_pair(sched, sched);
    client_ch = std::move(pair.first);
    target_ch = std::move(pair.second);
    TargetOptions topts{cfg, "tracee"};
    target = std::make_unique<NvmfTargetConnection>(sched, *target_ch, copier,
                                                    broker, subsystem, topts);
    InitiatorOptions iopts;
    iopts.af = cfg;
    iopts.queue_depth = 16;
    iopts.connection_name = "tracee";
    initiator =
        std::make_unique<NvmfInitiator>(sched, *client_ch, copier, broker, iopts);
    initiator->connect([](Status) {});
    sched.run();
  }

  sim::Scheduler sched;
  net::InlineCopier copier;
  af::ShmBroker broker;
  ssd::RealDevice device;
  ssd::Subsystem subsystem;
  std::unique_ptr<net::MsgChannel> client_ch;
  std::unique_ptr<net::MsgChannel> target_ch;
  std::unique_ptr<NvmfTargetConnection> target;
  std::unique_ptr<NvmfInitiator> initiator;
};

/// Distinct (category, name) pairs in the recorded stream.
std::set<std::pair<std::string, std::string>> distinct_spans(
    const std::vector<telemetry::TraceEvent>& evs) {
  std::set<std::pair<std::string, std::string>> out;
  for (const auto& ev : evs) {
    if (ev.name != nullptr && ev.cat != nullptr) out.emplace(ev.cat, ev.name);
  }
  return out;
}

class E2ETraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!OAF_TELEMETRY_COMPILED) {
      GTEST_SKIP() << "instrumentation compiled out (OAF_TELEMETRY=OFF)";
    }
    telemetry::tracer().reset();
    telemetry::tracer().set_enabled(true);
  }
  void TearDown() override { telemetry::tracer().set_enabled(false); }
};

TEST_F(E2ETraceTest, CoLocatedWriteSpansBothSidesOfTheTimeline) {
  TraceHarness h(af::AfConfig::oaf());
  std::vector<u8> data(128 * 1024, 0xA5);
  bool done = false;
  h.initiator->write(1, 0, data, [&](auto r) {
    EXPECT_TRUE(r.ok());
    done = true;
  });
  h.sched.run();
  ASSERT_TRUE(done);

  const auto evs = telemetry::tracer().snapshot();
  const auto spans = distinct_spans(evs);
  // One write crosses at least: the initiator command span + capsule-send
  // marker, the shm stage on the client, the target command span + device
  // span, and the shm consume on the target.
  EXPECT_GE(spans.size(), 6u) << "got " << spans.size() << " distinct spans";
  EXPECT_TRUE(spans.count({"init_io", "write"}));
  EXPECT_TRUE(spans.count({"target_io", "write"}));
  EXPECT_TRUE(spans.count({"target_io", "device"}));
  EXPECT_TRUE(spans.count({"shm", "shm_stage"}));
  EXPECT_TRUE(spans.count({"shm", "shm_consume"}));

  // Both engines' tracks carry events (one merged timeline, two lanes).
  const u32 init_lane = telemetry::tracer().track("init:tracee");
  const u32 target_lane = telemetry::tracer().track("target:tracee");
  bool saw_init = false;
  bool saw_target = false;
  for (const auto& ev : evs) {
    saw_init |= ev.track == init_lane;
    saw_target |= ev.track == target_lane;
  }
  EXPECT_TRUE(saw_init);
  EXPECT_TRUE(saw_target);

  // Every async begin has a matching end with the same (cat, id, name).
  for (const auto& ev : evs) {
    if (ev.phase != 'b') continue;
    bool matched = false;
    for (const auto& other : evs) {
      matched |= other.phase == 'e' && other.id == ev.id &&
                 std::string(other.cat) == ev.cat &&
                 std::string(other.name) == ev.name;
    }
    EXPECT_TRUE(matched) << "unmatched begin: " << ev.cat << "/" << ev.name;
  }
}

TEST_F(E2ETraceTest, ShmDemotionDetourAppearsAsResilienceEvents) {
  TraceHarness h(af::AfConfig::oaf());
  std::vector<u8> data(64 * 1024);
  h.initiator->write(1, 0, data, [](auto r) { EXPECT_TRUE(r.ok()); });
  h.sched.run();

  h.initiator->demote_shm("test detour");
  h.sched.run();
  // Post-demotion traffic still completes (over TCP) and keeps tracing.
  bool done = false;
  h.initiator->write(1, 0, data, [&](auto r) {
    EXPECT_TRUE(r.ok());
    done = true;
  });
  h.sched.run();
  ASSERT_TRUE(done);

  const auto spans = distinct_spans(telemetry::tracer().snapshot());
  bool saw_resilience = false;
  for (const auto& [cat, name] : spans) saw_resilience |= cat == "resilience";
  EXPECT_TRUE(saw_resilience)
      << "demotion detour should emit resilience-category events";
}

TEST_F(E2ETraceTest, ChromeJsonIsDeterministicUnderSimClock) {
  auto one_run = [] {
    telemetry::tracer().reset();
    TraceHarness h(af::AfConfig::oaf());
    std::vector<u8> data(96 * 1024, 0x5A);
    h.initiator->write(1, 0, data, [](auto r) { EXPECT_TRUE(r.ok()); });
    h.sched.run();
    std::vector<u8> out(96 * 1024);
    h.initiator->read(1, 0, out, [](auto r) { EXPECT_TRUE(r.ok()); });
    h.sched.run();
    return telemetry::tracer().to_chrome_json();
  };
  const std::string first = one_run();
  const std::string second = one_run();
  EXPECT_GT(first.size(), 500u);
  EXPECT_EQ(first, second);
}

// Unit-suffix naming convention (DESIGN.md §9): counters end _total,
// histograms carry an explicit unit (_ns/_bytes), gauges never masquerade
// as counters. Audited against the live process registry after real engines
// have registered their instruments, so a new nonconforming registration
// anywhere in src/ fails here.
TEST_F(E2ETraceTest, MetricNamesFollowUnitSuffixConvention) {
  // Arm the attribution engine so its instruments (stage histograms, SLO
  // breach counters, anomaly capture counter) register and get audited too.
  telemetry::AttributionOptions aopts;
  aopts.slo_read_ns = 1;  // everything breaches: exercises the breach path
  aopts.slo_write_ns = 1;
  telemetry::attribution().configure(aopts);
  (void)telemetry::anomaly();  // registers oaf_anomaly_captures_total

  TraceHarness h(af::AfConfig::oaf());
  std::vector<u8> data(64 * 1024, 0x11);
  h.initiator->write(1, 0, data, [](auto r) { EXPECT_TRUE(r.ok()); });
  h.sched.run();
  telemetry::attribution().set_enabled(false);

  auto doc = json_parse(telemetry::metrics().to_json());
  ASSERT_TRUE(doc) << doc.status().to_string();
  const JsonValue& root = doc.value();
  ASSERT_FALSE(root["counters"].members().empty());
  // The new attribution-plane instruments must be live in this registry —
  // an audit that never sees them proves nothing about their names.
  EXPECT_TRUE(root["histograms"]["oaf_stage_grant_ns"].is_object());
  EXPECT_TRUE(root["histograms"]["oaf_stage_device_ns"].is_object());
  EXPECT_TRUE(root["counters"]["oaf_slo_breaches_total"].is_number());
  EXPECT_TRUE(root["counters"]["oaf_anomaly_captures_total"].is_number());
  EXPECT_TRUE(root["gauges"]["oaf_slo_last_window_breaches"].is_number());

  auto well_formed = [](const std::string& name) {
    if (name.rfind("oaf_", 0) != 0) return false;
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                      c == '_';
      if (!ok) return false;
    }
    return true;
  };
  for (const auto& member : root["counters"].members()) {
    EXPECT_TRUE(well_formed(member.first)) << member.first;
    EXPECT_TRUE(member.first.ends_with("_total"))
        << "counter " << member.first << " must end in _total";
  }
  for (const auto& member : root["histograms"].members()) {
    EXPECT_TRUE(well_formed(member.first)) << member.first;
    EXPECT_TRUE(member.first.ends_with("_ns") ||
                member.first.ends_with("_bytes"))
        << "histogram " << member.first
        << " needs an explicit unit suffix (_ns or _bytes)";
  }
  for (const auto& member : root["gauges"].members()) {
    EXPECT_TRUE(well_formed(member.first)) << member.first;
    EXPECT_FALSE(member.first.ends_with("_total"))
        << "gauge " << member.first << " must not masquerade as a counter";
  }
}

}  // namespace
}  // namespace oaf::nvmf

// TraceRecorder: runtime gating, span lifecycle phases, bounded-ring
// overflow (drops oldest, counts drops), and byte-exact Chrome trace JSON.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "telemetry/trace.h"

namespace oaf::telemetry {
namespace {

TEST(TraceRecorderTest, DisabledByDefaultRecordsNothing) {
  TraceRecorder rec(16);
  EXPECT_FALSE(rec.enabled());
  rec.instant(0, "cat", "ev", 0, 100);
  EXPECT_EQ(rec.size(), 0u);
  rec.set_enabled(true);
  rec.instant(0, "cat", "ev", 0, 100);
  EXPECT_EQ(rec.size(), 1u);
  rec.set_enabled(false);
  rec.instant(0, "cat", "ev", 0, 200);
  EXPECT_EQ(rec.size(), 1u);
}

TEST(TraceRecorderTest, SpanLifecyclePhasesRoundTrip) {
  TraceRecorder rec(16);
  rec.set_enabled(true);
  const u32 lane = rec.track("lane");
  rec.begin(lane, "io", "write", 42, 1000, "bytes", 4096);
  rec.complete(lane, "shm", "stage", 3, 1200, 500, "bytes", 512);
  rec.instant(lane, "resilience", "retry", 42, 1600);
  rec.end(lane, "io", "write", 42, 2000);
  const auto evs = rec.snapshot();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs[0].phase, 'b');
  EXPECT_STREQ(evs[0].name, "write");
  EXPECT_EQ(evs[0].id, 42u);
  EXPECT_STREQ(evs[0].arg_name, "bytes");
  EXPECT_EQ(evs[0].arg, 4096);
  EXPECT_EQ(evs[1].phase, 'X');
  EXPECT_EQ(evs[1].ts_ns, 1200);
  EXPECT_EQ(evs[1].dur_ns, 500);
  EXPECT_EQ(evs[2].phase, 'i');
  EXPECT_EQ(evs[3].phase, 'e');
  // The begin/end pair matches by (cat, id, name).
  EXPECT_STREQ(evs[3].cat, evs[0].cat);
  EXPECT_EQ(evs[3].id, evs[0].id);
  EXPECT_STREQ(evs[3].name, evs[0].name);
}

TEST(TraceRecorderTest, RingOverflowDropsOldestAndCounts) {
  TraceRecorder rec(4);
  rec.set_enabled(true);
  for (u64 i = 0; i < 10; ++i) {
    rec.instant(0, "cat", "ev", i, static_cast<TimeNs>(i * 100));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  const auto evs = rec.snapshot();
  ASSERT_EQ(evs.size(), 4u);
  // Oldest-first snapshot of the newest four events.
  for (u64 i = 0; i < 4; ++i) EXPECT_EQ(evs[i].id, 6 + i);
  // The drop count is reported in the exported document.
  EXPECT_NE(rec.to_chrome_json().find("\"dropped_events\":6"),
            std::string::npos);
}

TEST(TraceRecorderTest, TrackIsFindOrCreate) {
  TraceRecorder rec(4);
  const u32 a = rec.track("alpha");
  const u32 b = rec.track("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(rec.track("alpha"), a);
  EXPECT_EQ(rec.track("beta"), b);
}

TEST(TraceRecorderTest, ResetClearsEventsButKeepsTracks) {
  TraceRecorder rec(4);
  rec.set_enabled(true);
  const u32 lane = rec.track("lane");
  for (u64 i = 0; i < 6; ++i) rec.instant(lane, "c", "e", i, 0);
  rec.reset();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.track("lane"), lane);
}

// Golden-file test: the exporter's output is byte-stable for a fixed event
// sequence. If this breaks, every archived trace diff becomes noise — bump
// deliberately.
TEST(TraceRecorderTest, ChromeJsonMatchesGolden) {
  TraceRecorder rec(8);
  rec.set_enabled(true);
  const u32 lane = rec.track("lane");
  ASSERT_EQ(lane, 1u);
  rec.begin(lane, "io", "write", 7, 1500, "bytes", 4096);
  rec.complete(lane, "shm", "stage", 2, 2000, 750, "bytes", 512);
  rec.end(lane, "io", "write", 7, 3500);
  rec.instant(lane, "resilience", "retry", 0, 4000);
  const std::string expected =
      "{\"displayTimeUnit\":\"ns\",\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"nvme-oaf\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"lane\"}},"
      "{\"name\":\"write\",\"cat\":\"io\",\"ph\":\"b\",\"pid\":1,\"tid\":1,"
      "\"ts\":1.500,\"id\":\"0x7\",\"args\":{\"bytes\":4096}},"
      "{\"name\":\"stage\",\"cat\":\"shm\",\"ph\":\"X\",\"pid\":1,\"tid\":1,"
      "\"ts\":2.000,\"dur\":0.750,\"args\":{\"bytes\":512}},"
      "{\"name\":\"write\",\"cat\":\"io\",\"ph\":\"e\",\"pid\":1,\"tid\":1,"
      "\"ts\":3.500,\"id\":\"0x7\",\"args\":{}},"
      "{\"name\":\"retry\",\"cat\":\"resilience\",\"ph\":\"i\",\"pid\":1,"
      "\"tid\":1,\"ts\":4.000,\"s\":\"t\"}"
      "],\"otherData\":{\"dropped_events\":0}}";
  EXPECT_EQ(rec.to_chrome_json(), expected);
}

TEST(TraceRecorderTest, WriteChromeJsonRoundTrips) {
  TraceRecorder rec(8);
  rec.set_enabled(true);
  rec.instant(rec.track("lane"), "c", "e", 1, 100);
  const std::string path = testing::TempDir() + "oaf_trace_test.json";
  ASSERT_TRUE(rec.write_chrome_json(path));
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string got;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) got.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(got, rec.to_chrome_json());
}

}  // namespace
}  // namespace oaf::telemetry

// Flight recorder: always recording, dump disarmed until install(), and a
// fatal signal in an armed process leaves a parseable postmortem behind
// while the process still dies with the original signal.
#include "telemetry/flight.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json_parse.h"

namespace oaf::telemetry {
namespace {

namespace fs = std::filesystem;

std::string make_temp_dir(const char* tag) {
  fs::path dir = fs::path(::testing::TempDir()) /
                 (std::string("oaf_flight_test_") + tag + "_" +
                  std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(FlightRecorderTest, DisarmedDumpWritesNothing) {
  FlightRecorder fr(16);
  fr.note("resilience", "deadline_fired", 7, 1000);
  EXPECT_FALSE(fr.armed());
  EXPECT_EQ(fr.dump_now("unit tests must not litter the filesystem"), "");
}

TEST(FlightRecorderTest, DumpWritesParseablePostmortem) {
  const std::string dir = make_temp_dir("dump");
  FlightRecorder fr(16);
  fr.note("resilience", "abort_sent", 42, 2000, "cid", 7);
  fr.install({dir, /*fatal_signals=*/false});
  ASSERT_TRUE(fr.armed());

  const std::string path = fr.dump_now("injected fault");
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("oaf_flight_"), std::string::npos);
  EXPECT_EQ(path.find(dir), 0u);

  auto parsed = json_parse(slurp(path));
  ASSERT_TRUE(parsed) << parsed.status().to_string();
  const JsonValue& root = parsed.value();
  EXPECT_EQ(root["reason"].as_string(), "injected fault");
  EXPECT_EQ(root["pid"].as_i64(), static_cast<i64>(::getpid()));
  EXPECT_TRUE(root["metrics"].is_object());
  // The ring snapshot is embedded in Chrome trace form, Perfetto-loadable.
  bool saw_note = false;
  for (const auto& ev : root["trace"]["traceEvents"].items()) {
    saw_note |= ev["name"].as_string() == "abort_sent" &&
                ev["args"]["cid"].as_i64() == 7;
  }
  EXPECT_TRUE(saw_note);
}

TEST(FlightRecorderTest, RingDropsOldestBeyondCapacity) {
  FlightRecorder fr(4);
  for (u64 i = 0; i < 10; ++i) {
    fr.note("t", "e", i, static_cast<TimeNs>(i));
  }
  EXPECT_EQ(fr.ring().dropped(), 6u);
  EXPECT_EQ(fr.ring().size(), 4u);
}

// End-to-end injected fault: the death-test child arms the GLOBAL recorder
// with fatal-signal hooks and aborts. The handler must dump the postmortem
// and re-raise, so the child still dies with SIGABRT (exit status intact for
// CI markers) while the parent finds the dump file.
TEST(FlightRecorderDeathTest, FatalSignalDumpsThenDies) {
  // The dump path allocates and is exercised from a real signal handler
  // here; run the death test in its own re-executed process so other tests'
  // threads cannot be mid-malloc at fork time.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  // The threadsafe child re-executes this test body with its own pid, so the
  // directory name must not embed the pid — both processes must agree on it.
  const std::string dir =
      (fs::path(::testing::TempDir()) / "oaf_flight_test_fatal").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  EXPECT_EXIT(
      {
        flight().note("resilience", "about_to_crash", 1, 123);
        flight().install({dir, /*fatal_signals=*/true});
        std::raise(SIGABRT);
      },
      ::testing::KilledBySignal(SIGABRT), "");

  fs::path dump;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("oaf_flight_", 0) == 0) dump = entry.path();
  }
  ASSERT_FALSE(dump.empty()) << "no oaf_flight_*.json written in " << dir;

  auto parsed = json_parse(slurp(dump));
  ASSERT_TRUE(parsed) << parsed.status().to_string();
  const JsonValue& root = parsed.value();
  EXPECT_FALSE(root["reason"].as_string().empty());
  bool saw_note = false;
  for (const auto& ev : root["trace"]["traceEvents"].items()) {
    saw_note |= ev["name"].as_string() == "about_to_crash";
  }
  EXPECT_TRUE(saw_note);
}

}  // namespace
}  // namespace oaf::telemetry

// Profiling plane (DESIGN.md §15): unwinder edge cases on hand-built frame
// chains, sample-ring FIFO/overflow behavior, exclusive-time CostScope
// accounting, allocation-ledger attribution, reactor health, the prof_json
// aggregation — and the signal-safety contract: a thread being sampled at
// full rate while it hammers malloc must neither deadlock nor crash.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/json_parse.h"
#include "sim/real_executor.h"
#include "telemetry/prof/prof.h"
#include "telemetry/prof/sample_ring.h"
#include "telemetry/prof/unwind.h"

namespace oaf::telemetry::prof {
namespace {

// --------------------------------------------------------------------------
// Unwinder: hand-built frame chains in a local buffer.
// --------------------------------------------------------------------------

/// Builds [ next_fp ][ ret ] frame records inside `stack` and returns the
/// fp of the innermost frame. Frames are laid out low-to-high, matching a
/// downward-growing call stack unwound toward the base.
struct FakeStack {
  // 64 u64 slots, 8-aligned by type.
  u64 slots[64] = {};
  u64 lo() const { return reinterpret_cast<u64>(&slots[0]); }
  u64 hi() const { return reinterpret_cast<u64>(&slots[64]); }
  u64 at(std::size_t i) const { return reinterpret_cast<u64>(&slots[i]); }
};

TEST(Unwind, WalksChainLeafToRoot) {
  FakeStack st;
  // Innermost frame at slot 0 -> frame at slot 8 -> frame at slot 16 (root).
  st.slots[0] = st.at(8);   // caller's fp
  st.slots[1] = 0x1001;     // return address into caller
  st.slots[8] = st.at(16);
  st.slots[9] = 0x1002;
  st.slots[16] = 0;         // root: null next fp terminates
  st.slots[17] = 0x1003;
  u64 out[8] = {};
  const std::size_t n =
      unwind_frame_pointers(0x1000, st.at(0), st.lo(), st.hi(), out, 8);
  ASSERT_EQ(n, 4u);
  EXPECT_EQ(out[0], 0x1000u);  // leaf PC always frame 0
  EXPECT_EQ(out[1], 0x1001u);
  EXPECT_EQ(out[2], 0x1002u);
  EXPECT_EQ(out[3], 0x1003u);
}

TEST(Unwind, LeafPcOnlyWhenFpIsNull) {
  FakeStack st;
  u64 out[8] = {};
  EXPECT_EQ(unwind_frame_pointers(0xabc, 0, st.lo(), st.hi(), out, 8), 1u);
  EXPECT_EQ(out[0], 0xabcu);
}

TEST(Unwind, StopsOnMisalignedFp) {
  FakeStack st;
  u64 out[8] = {};
  EXPECT_EQ(
      unwind_frame_pointers(0xabc, st.at(0) + 4, st.lo(), st.hi(), out, 8),
      1u);
}

TEST(Unwind, StopsOnOutOfBoundsFp) {
  FakeStack st;
  u64 out[8] = {};
  // Below the stack.
  EXPECT_EQ(unwind_frame_pointers(0xabc, st.lo() - 64, st.lo(), st.hi(), out,
                                  8),
            1u);
  // Too close to the top for a two-word frame record.
  EXPECT_EQ(
      unwind_frame_pointers(0xabc, st.at(63), st.lo(), st.hi(), out, 8), 1u);
}

TEST(Unwind, CycleGuardStopsNonMonotonicChain) {
  FakeStack st;
  st.slots[8] = st.at(8);  // self-loop
  st.slots[9] = 0x2001;
  u64 out[8] = {};
  // The looping frame's ret is recorded once, then the walk stops.
  EXPECT_EQ(
      unwind_frame_pointers(0x2000, st.at(8), st.lo(), st.hi(), out, 8), 2u);
  EXPECT_EQ(out[1], 0x2001u);

  st.slots[16] = st.at(8);  // chain that moves back down
  st.slots[17] = 0x2002;
  EXPECT_EQ(
      unwind_frame_pointers(0x2000, st.at(16), st.lo(), st.hi(), out, 8), 2u);
}

TEST(Unwind, StopsOnNullReturnAddress) {
  FakeStack st;
  st.slots[0] = st.at(8);
  st.slots[1] = 0;  // null ret: frame record not yet written
  u64 out[8] = {};
  EXPECT_EQ(
      unwind_frame_pointers(0x3000, st.at(0), st.lo(), st.hi(), out, 8), 1u);
}

TEST(Unwind, TruncatesAtMaxFrames) {
  FakeStack st;
  for (std::size_t i = 0; i + 2 < 64; i += 2) {
    st.slots[i] = st.at(i + 2);
    st.slots[i + 1] = 0x4000 + i;
  }
  u64 out[4] = {};
  EXPECT_EQ(
      unwind_frame_pointers(0x9999, st.at(0), st.lo(), st.hi(), out, 4), 4u);
  EXPECT_EQ(unwind_frame_pointers(0x9999, st.at(0), st.lo(), st.hi(), out, 0),
            0u);
}

// --------------------------------------------------------------------------
// Sample ring.
// --------------------------------------------------------------------------

TEST(SampleRing, FifoAndCapacityRounding) {
  SampleRing ring(100);  // rounds up to 128
  EXPECT_EQ(ring.capacity(), 128u);
  Sample s{};
  s.nframes = 1;
  for (u64 i = 0; i < 100; ++i) {
    s.time_ns = static_cast<TimeNs>(i);
    ASSERT_TRUE(ring.push(s));
  }
  EXPECT_EQ(ring.size(), 100u);
  Sample out{};
  for (u64 i = 0; i < 100; ++i) {
    ASSERT_TRUE(ring.pop(&out));
    EXPECT_EQ(out.time_ns, static_cast<TimeNs>(i));
  }
  EXPECT_FALSE(ring.pop(&out));
}

TEST(SampleRing, DropsWhenFullAndCounts) {
  SampleRing ring(4);
  Sample s{};
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.push(s));
  EXPECT_FALSE(ring.push(s));
  EXPECT_FALSE(ring.push(s));
  EXPECT_EQ(ring.dropped(), 2u);
  Sample out{};
  ASSERT_TRUE(ring.pop(&out));
  EXPECT_TRUE(ring.push(s));  // slot freed
}

// --------------------------------------------------------------------------
// Cost centers and cycle accounting.
// --------------------------------------------------------------------------

TEST(CostCenter, MirrorsStageValuesAndNames) {
  EXPECT_STREQ(to_string(CostCenter::kQueue), "queue");
  EXPECT_STREQ(to_string(CostCenter::kSubmit), "submit");
  EXPECT_STREQ(to_string(clamp_cost_center(255)), "other");
  EXPECT_EQ(clamp_cost_center(3), CostCenter::kXfer);
}

TEST(CostScope, RestoresPreviousCenterOnExit) {
  set_cost_center(CostCenter::kControl);
  {
    CostScope outer(CostCenter::kSubmit);
    EXPECT_EQ(current_cost_center(), CostCenter::kSubmit);
    {
      CostScope inner(CostCenter::kEncode);
      EXPECT_EQ(current_cost_center(), CostCenter::kEncode);
    }
    EXPECT_EQ(current_cost_center(), CostCenter::kSubmit);
  }
  EXPECT_EQ(current_cost_center(), CostCenter::kControl);
  set_cost_center(CostCenter::kOther);
}

TEST(CostScope, ExclusiveAccountingChargesEachCenterOnce) {
  if (rdcycles() == 0) GTEST_SKIP() << "no cycle counter on this arch";
  cycle_ledger().reset_for_test();
  cycle_ledger().set_enabled(true);
  const u64 t0 = rdcycles();
  {
    CostScope outer(CostCenter::kSubmit);
    CostScope inner(CostCenter::kEncode);
    // Burn a few cycles so both segments are nonzero.
    volatile u64 x = 0;
    for (int i = 0; i < 1000; ++i) x += static_cast<u64>(i);
  }
  const u64 wall = rdcycles() - t0;
  cycle_ledger().set_enabled(false);
  const auto s = cycle_ledger().snapshot();
  const u64 submit = s.cycles[static_cast<u32>(CostCenter::kSubmit)];
  const u64 encode = s.cycles[static_cast<u32>(CostCenter::kEncode)];
  EXPECT_EQ(s.visits[static_cast<u32>(CostCenter::kSubmit)], 1u);
  EXPECT_EQ(s.visits[static_cast<u32>(CostCenter::kEncode)], 1u);
  EXPECT_GT(encode, 0u);
  // Exclusive accounting: the centers partition the scoped wall time, so
  // their sum cannot exceed what the wall clock saw (same TSC).
  EXPECT_LE(submit + encode, wall);
  cycle_ledger().reset_for_test();
}

TEST(CycleLedger, AddIoOnlyCountsWhenEnabled) {
  cycle_ledger().reset_for_test();
  cycle_ledger().set_enabled(false);
  cycle_ledger().add_io();
  EXPECT_EQ(cycle_ledger().snapshot().ios, 0u);
  cycle_ledger().set_enabled(true);
  cycle_ledger().add_io();
  cycle_ledger().add_io();
  EXPECT_EQ(cycle_ledger().snapshot().ios, 2u);
  cycle_ledger().set_enabled(false);
  cycle_ledger().reset_for_test();
}

// --------------------------------------------------------------------------
// Allocation ledger.
// --------------------------------------------------------------------------

TEST(AllocLedger, AttributesToCurrentCostCenter) {
  alloc_ledger().reset_for_test();
  set_cost_center(CostCenter::kSubmit);
  alloc_ledger().record_alloc(64);
  alloc_ledger().record_alloc(32);
  alloc_ledger().record_free();
  set_cost_center(CostCenter::kOther);
  const auto s = alloc_ledger().snapshot();
  const auto& submit = s.center[static_cast<u32>(CostCenter::kSubmit)];
  EXPECT_EQ(submit.allocs, 2u);
  EXPECT_EQ(submit.frees, 1u);
  EXPECT_EQ(submit.bytes, 96u);
  EXPECT_EQ(s.total.allocs, 2u);
  alloc_ledger().reset_for_test();
}

TEST(AllocLedger, CostCenterIsPerThread) {
  alloc_ledger().reset_for_test();
  set_cost_center(CostCenter::kSubmit);
  std::thread other([] {
    // Fresh thread: token defaults to kOther, independent of ours.
    EXPECT_EQ(current_cost_center(), CostCenter::kOther);
    set_cost_center(CostCenter::kTarget);
    alloc_ledger().record_alloc(100);
  });
  other.join();
  alloc_ledger().record_alloc(1);
  set_cost_center(CostCenter::kOther);
  // With the interposer linked, ambient allocations (thread spawn, gtest
  // internals) also land in the ledger under whatever center was current,
  // so assert lower bounds; without it the manual records are exact.
  const auto s = alloc_ledger().snapshot();
  const auto& target = s.center[static_cast<u32>(CostCenter::kTarget)];
  const auto& submit = s.center[static_cast<u32>(CostCenter::kSubmit)];
  if (interposer_active()) {
    EXPECT_GE(target.allocs, 1u);
    EXPECT_GE(target.bytes, 100u);
    EXPECT_GE(submit.allocs, 1u);
  } else {
    EXPECT_EQ(target.allocs, 1u);
    EXPECT_EQ(target.bytes, 100u);
    EXPECT_EQ(submit.allocs, 1u);
  }
  alloc_ledger().reset_for_test();
}

TEST(AllocLedger, InterposerCountsRealAllocations) {
  if (!interposer_active()) {
    GTEST_SKIP() << "interposer not linked (build with -DOAF_PROF=ON)";
  }
  alloc_ledger().reset_for_test();
  set_cost_center(CostCenter::kXfer);
  {
    std::vector<char> v(4096);
    v[0] = 1;
    char* raw = static_cast<char*>(std::malloc(128));
    ASSERT_NE(raw, nullptr);
    std::free(raw);
  }
  set_cost_center(CostCenter::kOther);
  const auto s = alloc_ledger().snapshot();
  const auto& xfer = s.center[static_cast<u32>(CostCenter::kXfer)];
  EXPECT_GE(xfer.allocs, 2u);
  EXPECT_GE(xfer.bytes, 4096u + 128u);
  EXPECT_GE(xfer.frees, 2u);
  alloc_ledger().reset_for_test();
}

// --------------------------------------------------------------------------
// Reactor health.
// --------------------------------------------------------------------------

TEST(ReactorHealth, RealExecutorFeedsThePlane) {
  const auto before = reactor_health().snapshot();
  {
    sim::RealExecutor exec;
    std::atomic<bool> ran{false};
    for (int i = 0; i < 8; ++i) {
      exec.post([&] { ran = true; });
    }
    while (!ran.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const auto after = reactor_health().snapshot();
  EXPECT_GE(after.tasks, before.tasks + 8);
  EXPECT_GE(after.runq_peak, 1u);
  const std::string j = reactor_health().json();
  auto doc = json_parse(j);
  ASSERT_TRUE(doc.is_ok()) << j;
}

// --------------------------------------------------------------------------
// prof_json aggregation.
// --------------------------------------------------------------------------

TEST(ProfJson, ParsesAndCoversAllPlanes) {
  const std::string j = prof_json();
  auto doc = json_parse(j);
  ASSERT_TRUE(doc.is_ok()) << j;
  for (const char* key :
       {"reactor", "cycles", "allocs", "sampler", "busy_poll"}) {
    EXPECT_NE(j.find("\"" + std::string(key) + "\""), std::string::npos)
        << "missing " << key << " in " << j;
  }
}

// --------------------------------------------------------------------------
// Sampler end-to-end + signal safety.
// --------------------------------------------------------------------------

/// Spin for roughly `ms` of CPU time (not sleep: sleeping threads accrue no
/// CPU time, and the sampler's timers run on the thread CPU clock).
void burn_cpu_ms(int ms) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  volatile u64 sink = 0;
  while (std::chrono::steady_clock::now() < until) {
    for (int i = 0; i < 4096; ++i) sink += static_cast<u64>(i);
  }
}

TEST(CpuProfiler, SamplesBusyThreadAndEmitsCollapsedStacks) {
  auto& prof = profiler();
  const Status reg = prof.register_this_thread("proftest");
  if (!reg.is_ok()) GTEST_SKIP() << "sampler unsupported: " << reg.to_string();
  ProfilerOptions opts;
  opts.sample_hz = 499;
  const Status st = prof.start(opts);
  if (!st.is_ok()) GTEST_SKIP() << "cannot arm timers: " << st.to_string();
  set_cost_center(CostCenter::kSubmit);
  burn_cpu_ms(300);
  set_cost_center(CostCenter::kOther);
  prof.stop();
  EXPECT_FALSE(prof.running());
  EXPECT_GE(prof.samples_total(), 5u) << prof.stats_json();
  const std::string collapsed = prof.collapsed();
  EXPECT_NE(collapsed.find("proftest;"), std::string::npos) << collapsed;
  EXPECT_NE(collapsed.find("cc:submit"), std::string::npos) << collapsed;
  auto doc = json_parse(prof.stats_json());
  ASSERT_TRUE(doc.is_ok()) << prof.stats_json();
}

/// The deadlock canary: glibc's malloc takes an arena lock, and a signal
/// handler that allocated (or locked) would self-deadlock the moment a
/// SIGPROF lands between lock and unlock. Run the allocator at full tilt
/// under a fast sampler in a child process; the child must exit cleanly.
TEST(CpuProfilerDeathTest, SamplingMidMallocDoesNotDeadlockOrCrash) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_EXIT(
      {
        auto& prof = profiler();
        if (!prof.register_this_thread("malloc-storm").is_ok()) std::exit(0);
        ProfilerOptions opts;
        opts.sample_hz = 2000;  // aggressive: maximize mid-malloc hits
        if (!prof.start(opts).is_ok()) std::exit(0);
        const auto until = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(400);
        while (std::chrono::steady_clock::now() < until) {
          for (int i = 0; i < 64; ++i) {
            void* p = std::malloc(static_cast<std::size_t>(16 + i * 8));
            std::free(p);
            std::vector<int> v(static_cast<std::size_t>(i + 1));
            (void)v;
          }
        }
        prof.stop();
        std::exit(0);
      },
      ::testing::ExitedWithCode(0), "");
}

}  // namespace
}  // namespace oaf::telemetry::prof

#include "telemetry/clock_sync.h"

#include <gtest/gtest.h>

namespace oaf::telemetry {
namespace {

TEST(ClockSyncTest, EmptyEstimatorIsInvalid) {
  ClockSyncEstimator cs;
  EXPECT_FALSE(cs.valid());
  EXPECT_EQ(cs.samples(), 0u);
  EXPECT_EQ(cs.offset_ns(), 0);
  EXPECT_EQ(cs.best_rtt_ns(), -1);
}

TEST(ClockSyncTest, SymmetricPathRecoversExactOffset) {
  // Target clock = initiator clock + 500ns; one-way delay 100ns each way.
  // t1=1000 (init), t2=t3=1600 (target: 1000+100+500), t4=1200 (init).
  ClockSyncEstimator cs;
  cs.add_sample(1000, 1600, 1600, 1200);
  ASSERT_TRUE(cs.valid());
  EXPECT_EQ(cs.offset_ns(), 500);
  EXPECT_EQ(cs.best_rtt_ns(), 200);
}

TEST(ClockSyncTest, NegativeOffsetRecovered) {
  // Target clock BEHIND the initiator's by 300ns, delay 50ns each way.
  // t1=2000, t2=t3=2000+50-300=1750, t4=2100.
  ClockSyncEstimator cs;
  cs.add_sample(2000, 1750, 1750, 2100);
  ASSERT_TRUE(cs.valid());
  EXPECT_EQ(cs.offset_ns(), -300);
  EXPECT_EQ(cs.best_rtt_ns(), 100);
}

TEST(ClockSyncTest, MinRttSampleWins) {
  ClockSyncEstimator cs;
  // Noisy sample: rtt 10000, asymmetric queueing skews the offset estimate.
  cs.add_sample(1000, 9000, 9000, 11000);
  const i64 noisy = cs.offset_ns();
  // Clean sample: rtt 200, true offset 500.
  cs.add_sample(20000, 20600, 20600, 20200);
  EXPECT_EQ(cs.best_rtt_ns(), 200);
  EXPECT_EQ(cs.offset_ns(), 500);
  EXPECT_NE(cs.offset_ns(), noisy);
  // A later, worse sample does not displace the min-RTT estimate.
  cs.add_sample(30000, 39000, 39000, 41000);
  EXPECT_EQ(cs.offset_ns(), 500);
  EXPECT_EQ(cs.best_rtt_ns(), 200);
  EXPECT_EQ(cs.samples(), 3u);
}

TEST(ClockSyncTest, GarbageSamplesDropped) {
  ClockSyncEstimator cs;
  cs.add_sample(1000, 1600, 1600, 900);  // t4 < t1: non-monotonic, dropped
  EXPECT_FALSE(cs.valid());
  EXPECT_EQ(cs.samples(), 0u);
}

TEST(ClockSyncTest, LargeAbsoluteTimestampsDoNotOverflow) {
  // Timestamps near u64 range used by steady clocks that count from boot.
  const u64 base = u64{1} << 62;
  ClockSyncEstimator cs;
  cs.add_sample(base + 1000, base + 1600, base + 1600, base + 1200);
  ASSERT_TRUE(cs.valid());
  EXPECT_EQ(cs.offset_ns(), 500);
  EXPECT_EQ(cs.best_rtt_ns(), 200);
}

}  // namespace
}  // namespace oaf::telemetry

// MetricsRegistry: handle stability, exact concurrent counting, callback
// gauge lifetime/summing, and deterministic exposition output.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "telemetry/metrics.h"

namespace oaf::telemetry {
namespace {

TEST(MetricsRegistryTest, FindOrCreateReturnsStableHandles) {
  MetricsRegistry r;
  Counter* a = r.counter("x_total", "first registration");
  Counter* b = r.counter("x_total", "second registration, same name");
  EXPECT_EQ(a, b);
  Gauge* g1 = r.gauge("g", "gauge");
  Gauge* g2 = r.gauge("g", "gauge");
  EXPECT_EQ(g1, g2);
  HistogramMetric* h1 = r.histogram("h", "hist");
  HistogramMetric* h2 = r.histogram("h", "hist");
  EXPECT_EQ(h1, h2);
  // Distinct names are distinct metrics.
  EXPECT_NE(a, r.counter("y_total", "other"));
  EXPECT_EQ(r.size(), 4u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsSumExactly) {
  MetricsRegistry r;
  Counter* c = r.counter("oaf_test_concurrent_total", "hammered");
  constexpr int kThreads = 8;
  constexpr u64 kPerThread = 100'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&r, c] {
      // Half the increments go through a fresh name lookup to exercise the
      // registration slow path concurrently with the hot path.
      Counter* mine = r.counter("oaf_test_concurrent_total", "hammered");
      for (u64 i = 0; i < kPerThread; ++i) {
        (i % 2 ? mine : c)->inc();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c->value(), kThreads * kPerThread);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationYieldsOneMetric) {
  MetricsRegistry r;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&r, &seen, t] {
      seen[static_cast<size_t>(t)] = r.counter("same_name", "race");
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0], seen[static_cast<size_t>(t)]);
  EXPECT_EQ(r.size(), 1u);
}

TEST(MetricsRegistryTest, CallbackGaugesSumByNameAndUnregisterOnDestroy) {
  MetricsRegistry r;
  i64 a = 3;
  i64 b = 4;
  auto ha = r.callback_gauge("busy_slots", "occupancy", [&a] { return a; });
  {
    auto hb = r.callback_gauge("busy_slots", "occupancy", [&b] { return b; });
    const std::string text = r.to_prometheus();
    EXPECT_NE(text.find("busy_slots 7"), std::string::npos) << text;
  }
  // hb died: only the first callback is sampled now.
  const std::string text = r.to_prometheus();
  EXPECT_NE(text.find("busy_slots 3"), std::string::npos) << text;
}

TEST(MetricsRegistryTest, MovedFromCallbackHandleDoesNotUnregister) {
  MetricsRegistry r;
  MetricsRegistry::CallbackHandle kept;
  {
    auto h = r.callback_gauge("moved", "m", [] { return i64{9}; });
    kept = std::move(h);
  }  // the moved-from handle dies here; registration must survive
  EXPECT_NE(r.to_prometheus().find("moved 9"), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusOutputIsSortedWithHelpAndType) {
  MetricsRegistry r;
  r.counter("zzz_total", "last")->inc(2);
  r.gauge("aaa", "first")->set(-5);
  r.histogram("mmm", "middle")->record(1000);
  const std::string text = r.to_prometheus();
  const size_t at_a = text.find("# HELP aaa first");
  const size_t at_m = text.find("# HELP mmm middle");
  const size_t at_z = text.find("# HELP zzz_total last");
  ASSERT_NE(at_a, std::string::npos) << text;
  ASSERT_NE(at_m, std::string::npos) << text;
  ASSERT_NE(at_z, std::string::npos) << text;
  EXPECT_LT(at_a, at_m);
  EXPECT_LT(at_m, at_z);
  EXPECT_NE(text.find("# TYPE zzz_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE aaa gauge"), std::string::npos);
  EXPECT_NE(text.find("aaa -5"), std::string::npos);
  EXPECT_NE(text.find("zzz_total 2"), std::string::npos);
  // Identical state twice -> identical output (exposition is deterministic).
  EXPECT_EQ(text, r.to_prometheus());
}

TEST(MetricsRegistryTest, JsonExpositionCarriesAllKinds) {
  MetricsRegistry r;
  r.counter("c_total", "c")->inc(7);
  r.gauge("g", "g")->set(11);
  r.histogram("h", "h")->record(500);
  auto cb = r.callback_gauge("cb", "cb", [] { return i64{13}; });
  const std::string j = r.to_json();
  EXPECT_NE(j.find("\"counters\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"c_total\":7"), std::string::npos) << j;
  EXPECT_NE(j.find("\"gauges\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"g\":11"), std::string::npos) << j;
  EXPECT_NE(j.find("\"cb\":13"), std::string::npos) << j;
  EXPECT_NE(j.find("\"histograms\""), std::string::npos) << j;
}

TEST(MetricsRegistryTest, ResetForTestZeroesValuesButKeepsHandles) {
  MetricsRegistry r;
  Counter* c = r.counter("c_total", "c");
  Gauge* g = r.gauge("g", "g");
  HistogramMetric* h = r.histogram("h", "h");
  c->inc(5);
  g->set(5);
  h->record(5);
  r.reset_for_test();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->snapshot().count(), 0u);
  // Handles remain registered under the same names.
  EXPECT_EQ(c, r.counter("c_total", "c"));
  EXPECT_EQ(r.size(), 3u);
}

TEST(MetricsPrometheusEscapeTest, HelpEscapesBackslashAndNewline) {
  EXPECT_EQ(prometheus_escape_help("plain"), "plain");
  EXPECT_EQ(prometheus_escape_help("a\\b\nc"), "a\\\\b\\nc");
  // Double quotes are legal in HELP text and pass through untouched.
  EXPECT_EQ(prometheus_escape_help("say \"hi\""), "say \"hi\"");
}

TEST(MetricsPrometheusEscapeTest, LabelEscapesQuoteBackslashNewline) {
  EXPECT_EQ(prometheus_escape_label("v"), "v");
  EXPECT_EQ(prometheus_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_escape_label("a\nb"), "a\\nb");
  EXPECT_EQ(prometheus_escape_label("\"\\\n"), "\\\"\\\\\\n");
}

TEST(MetricsPrometheusEscapeTest, ExpositionKeepsHelpOnOnePhysicalLine) {
  MetricsRegistry r;
  r.counter("oaf_esc_total", "first line\nsecond \\ line \"quoted\"");
  const std::string text = r.to_prometheus();
  EXPECT_NE(
      text.find(
          "# HELP oaf_esc_total first line\\nsecond \\\\ line \"quoted\"\n"),
      std::string::npos);
  // Every physical line must be a comment or a sample — a raw newline
  // surviving inside HELP text would produce one that is neither, which
  // breaks Prometheus text-format parsers.
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    EXPECT_TRUE(line.empty() || line[0] == '#' ||
                line.rfind("oaf_", 0) == 0)
        << "unparseable exposition line: " << line;
    start = end + 1;
  }
}

}  // namespace
}  // namespace oaf::telemetry

// Trace stitching: two single-process Chrome trace documents (initiator +
// target) merge into one timeline with the target's clock corrected by the
// NTP-style offset the initiator embedded, and both sides of an I/O linked
// by the shared async id. The merged output is byte-deterministic and
// golden-file tested; regenerate the golden with
//   OAF_UPDATE_GOLDEN=1 ctest -R TraceMerge
#include "telemetry/trace_merge.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "common/json_parse.h"
#include "telemetry/trace.h"

namespace oaf::telemetry {
namespace {

// A miniature session standing in for real loopback traces: the initiator
// issues write 0x10; the target (whose clock runs 250ns AHEAD of the
// initiator's) serves it. 0x10 is the wire trace id both sides tagged their
// spans with, and 250 is the clock offset oaf_perf embeds in otherData.
std::pair<std::string, std::string> make_inputs() {
  TraceRecorder init(64);
  init.set_enabled(true);
  const u32 lane = init.track("init:conn0");
  init.begin(lane, "init_io", "write", 0x10, 1000, "bytes", 4096);
  init.instant(lane, "init_io", "r2t_received", 0x10, 2000);
  init.end(lane, "init_io", "write", 0x10, 5000);

  TraceRecorder target(64);
  target.set_enabled(true);
  const u32 tlane = target.track("target:conn0");
  target.begin(tlane, "target_io", "write", 0x10, 1400);
  target.complete(tlane, "target_io", "device", 0x10, 1600, 2600, "bytes",
                  4096);
  target.end(tlane, "target_io", "write", 0x10, 4600);

  return {init.to_chrome_json({{"clock_offset_ns", 250}}),
          target.to_chrome_json()};
}

/// ts/dur are microseconds with fixed 3-decimal ns precision; recover ns.
i64 ts_ns(const JsonValue& ev) {
  return static_cast<i64>(std::llround(ev["ts"].as_double() * 1000.0));
}

/// First event with this name/phase under the given pid (0 = any pid).
const JsonValue* find_event(const JsonValue& root, const std::string& name,
                            const std::string& ph, i64 pid = 0) {
  for (const auto& ev : root["traceEvents"].items()) {
    if (ev["name"].as_string() == name && ev["ph"].as_string() == ph &&
        (pid == 0 || ev["pid"].as_i64() == pid)) {
      return &ev;
    }
  }
  return nullptr;
}

TEST(TraceMergeTest, MergesAndCorrectsTargetClock) {
  auto [init_json, target_json] = make_inputs();
  auto merged = merge_chrome_traces(init_json, target_json);
  ASSERT_TRUE(merged) << merged.status().to_string();
  auto parsed = json_parse(merged.value());
  ASSERT_TRUE(parsed) << parsed.status().to_string();
  const JsonValue& root = parsed.value();

  // Both processes present, renamed, on distinct pids.
  bool saw_init_proc = false;
  bool saw_target_proc = false;
  for (const auto& ev : root["traceEvents"].items()) {
    if (ev["name"].as_string() != "process_name") continue;
    const std::string pname = ev["args"]["name"].as_string();
    saw_init_proc |= ev["pid"].as_i64() == 1 && pname == "oaf-initiator";
    saw_target_proc |= ev["pid"].as_i64() == 2 && pname == "oaf-target";
  }
  EXPECT_TRUE(saw_init_proc);
  EXPECT_TRUE(saw_target_proc);

  // Initiator timestamps are untouched; target timestamps are re-homed onto
  // the initiator clock: t_init = t_target - offset (1400 - 250 = 1150).
  const JsonValue* iw = find_event(root, "write", "b", 1);
  ASSERT_NE(iw, nullptr);
  EXPECT_EQ(ts_ns(*iw), 1000);
  const JsonValue* tw = find_event(root, "write", "b", 2);
  ASSERT_NE(tw, nullptr);
  EXPECT_EQ(ts_ns(*tw), 1150);
  const JsonValue* dev = find_event(root, "device", "X", 2);
  ASSERT_NE(dev, nullptr);
  EXPECT_EQ(ts_ns(*dev), 1350);
  EXPECT_EQ(static_cast<i64>(std::llround((*dev)["dur"].as_double() * 1000.0)),
            2600);

  // The two sides of the I/O share the async id (the wire trace id), so
  // id-based queries link them across processes.
  EXPECT_EQ((*iw)["id"].as_string(), "0x10");
  EXPECT_EQ((*tw)["id"].as_string(), "0x10");

  // Provenance survives in otherData.
  EXPECT_EQ(root["otherData"]["clock_offset_ns"].as_i64(), 250);
  EXPECT_EQ(root["otherData"]["initiator_dropped_events"].as_i64(), 0);
  EXPECT_EQ(root["otherData"]["target_dropped_events"].as_i64(), 0);
}

TEST(TraceMergeTest, OffsetOverrideWinsOverEmbeddedOffset) {
  auto [init_json, target_json] = make_inputs();
  TraceMergeOptions opts;
  opts.has_offset_override = true;
  opts.offset_ns_override = 400;
  auto merged = merge_chrome_traces(init_json, target_json, opts);
  ASSERT_TRUE(merged) << merged.status().to_string();
  auto parsed = json_parse(merged.value());
  ASSERT_TRUE(parsed);
  const JsonValue* tw = find_event(parsed.value(), "write", "b", 2);
  ASSERT_NE(tw, nullptr);
  EXPECT_EQ(ts_ns(*tw), 1000);  // 1400 - 400
  EXPECT_EQ(parsed.value()["otherData"]["clock_offset_ns"].as_i64(), 400);
}

TEST(TraceMergeTest, MissingOffsetDefaultsToZeroShift) {
  // An initiator document without clock_offset_ns (e.g. trace_ctx refused by
  // an old peer): target events merge unshifted rather than failing.
  TraceRecorder init(8);
  init.set_enabled(true);
  init.instant(init.track("init:conn0"), "init_io", "submit", 1, 500);
  TraceRecorder target(8);
  target.set_enabled(true);
  target.instant(target.track("target:conn0"), "target_io", "served", 1, 900);
  auto merged = merge_chrome_traces(init.to_chrome_json(),
                                    target.to_chrome_json());
  ASSERT_TRUE(merged) << merged.status().to_string();
  auto parsed = json_parse(merged.value());
  ASSERT_TRUE(parsed);
  const JsonValue* ev = find_event(parsed.value(), "served", "i", 2);
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ts_ns(*ev), 900);
  EXPECT_EQ(parsed.value()["otherData"]["clock_offset_ns"].as_i64(), 0);
}

TEST(TraceMergeTest, RejectsMalformedInput) {
  TraceRecorder ok(8);
  const std::string good = ok.to_chrome_json();
  EXPECT_FALSE(merge_chrome_traces("not json", good));
  EXPECT_FALSE(merge_chrome_traces(good, "{\"traceEvents\": 3}"));
  EXPECT_FALSE(merge_chrome_traces(good, "[1, 2]"));
}

TEST(TraceMergeTest, GoldenFileByteStable) {
  auto [init_json, target_json] = make_inputs();
  auto merged = merge_chrome_traces(init_json, target_json);
  ASSERT_TRUE(merged) << merged.status().to_string();

  const std::string golden_path =
      std::string(OAF_TESTDATA_DIR) + "/trace_merge_golden.json";
  if (std::getenv("OAF_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out.is_open()) << "cannot write " << golden_path;
    out << merged.value();
    GTEST_SKIP() << "golden regenerated: " << golden_path;
  }

  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.is_open())
      << "missing " << golden_path
      << " — regenerate with OAF_UPDATE_GOLDEN=1 ctest -R TraceMerge";
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(merged.value(), ss.str())
      << "merged trace output drifted from the committed golden; if the "
         "change is intentional, regenerate with OAF_UPDATE_GOLDEN=1";
}

}  // namespace
}  // namespace oaf::telemetry

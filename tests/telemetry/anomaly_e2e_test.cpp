// End-to-end retroactive anomaly capture: a real initiator + target pair
// under the sim clock, an SLO tight enough that an I/O breaches, and the
// full wire round-trip — breach verdict → begin_capture → AnomalyReq to the
// target → AnomalyResp with the peer's ring events → one durable
// oaf_anomaly_<n>.json holding BOTH halves keyed by the shared trace_id.
//
// Clean runs (no SLO, or watchdog disarmed) must write nothing, and a storm
// of breaches must still produce exactly one file (rate-limit gate).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "af/locality.h"
#include "common/json_parse.h"
#include "net/pipe_channel.h"
#include "nvmf/initiator.h"
#include "nvmf/target.h"
#include "sim/scheduler.h"
#include "ssd/sim_device.h"
#include "telemetry/anomaly.h"
#include "telemetry/attribution.h"
#include "telemetry/telemetry.h"

namespace oaf::nvmf {
namespace {

struct Harness {
  // The functional-plane RealDevice completes in zero simulated time, which
  // would make every stage — and the end-to-end latency — zero, so no SLO
  // could ever breach. The timing-plane SimDevice moves the sim clock.
  static ssd::SimDeviceParams dev_params() {
    ssd::SimDeviceParams p;
    p.num_blocks = 1 << 18;
    p.jitter_frac = 0;  // deterministic latencies
    return p;
  }

  explicit Harness(af::AfConfig cfg)
      : broker(1), device(sched, dev_params()), subsystem("nqn") {
    (void)subsystem.add_namespace(1, &device);
    auto pair = net::make_pipe_channel_pair(sched, sched);
    client_ch = std::move(pair.first);
    target_ch = std::move(pair.second);
    TargetOptions topts{cfg, "anomcon"};
    // Both halves share this process's recorder; the target's residency
    // watchdog would otherwise breach first (at send_resp, before the host
    // ever sees the response) and steal the one rate-limited capture slot
    // from the host-driven two-sided capture under test.
    topts.capture_local_breaches = false;
    target = std::make_unique<NvmfTargetConnection>(sched, *target_ch, copier,
                                                    broker, subsystem, topts);
    InitiatorOptions iopts;
    iopts.af = cfg;
    iopts.queue_depth = 16;
    iopts.connection_name = "anomcon";
    initiator =
        std::make_unique<NvmfInitiator>(sched, *client_ch, copier, broker, iopts);
    initiator->connect([](Status) {});
    sched.run();
  }

  sim::Scheduler sched;
  net::InlineCopier copier;
  af::ShmBroker broker;
  ssd::SimDevice device;
  ssd::Subsystem subsystem;
  std::unique_ptr<net::MsgChannel> client_ch;
  std::unique_ptr<net::MsgChannel> target_ch;
  std::unique_ptr<NvmfTargetConnection> target;
  std::unique_ptr<NvmfInitiator> initiator;
};

class AnomalyE2ETest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "anomaly_e2e";
    (void)std::system(("rm -rf " + dir_ + " && mkdir -p " + dir_).c_str());
    telemetry::attribution().reset_for_test();
    telemetry::anomaly().reset_for_test();
  }
  void TearDown() override {
    telemetry::attribution().set_enabled(false);
    telemetry::attribution().reset_for_test();
    telemetry::anomaly().reset_for_test();
  }

  void arm_watchdog(DurNs slo_read_ns) {
    telemetry::AttributionOptions aopts;
    aopts.slo_read_ns = slo_read_ns;
    telemetry::attribution().configure(aopts);
  }
  void arm_capture() {
    telemetry::AnomalyOptions opts;
    opts.dir = dir_;
    telemetry::anomaly().configure(opts);
  }

  [[nodiscard]] int capture_count() const {
    int n = 0;
    for (int i = 0; i < 16; ++i) {
      const std::string p = dir_ + "/oaf_anomaly_" + std::to_string(i) + ".json";
      std::FILE* f = std::fopen(p.c_str(), "r");
      if (f != nullptr) {
        std::fclose(f);
        n++;
      }
    }
    return n;
  }

  [[nodiscard]] static std::string slurp(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) return {};
    std::string body(1 << 20, '\0');
    body.resize(std::fread(body.data(), 1, body.size(), f));
    std::fclose(f);
    return body;
  }

  std::string dir_;
};

TEST_F(AnomalyE2ETest, BreachCapturesBothHalvesKeyedByTraceId) {
  if (!OAF_TELEMETRY_COMPILED) {
    GTEST_SKIP() << "instrumentation compiled out (OAF_TELEMETRY=OFF)";
  }
  arm_watchdog(/*slo_read_ns=*/1);  // every read breaches
  arm_capture();
  Harness h(af::AfConfig::oaf());
  ASSERT_TRUE(h.initiator->trace_ctx_active());

  std::vector<u8> out(64 * 1024);
  bool done = false;
  h.initiator->read(1, 0, out, [&](auto r) {
    EXPECT_TRUE(r.ok());
    done = true;
  });
  h.sched.run();
  ASSERT_TRUE(done);

  EXPECT_GE(telemetry::metrics().counter("oaf_slo_breaches_total", "")->value(),
            1)
      << "the read never breached: watchdog problem, not capture problem";
  ASSERT_EQ(capture_count(), 1);
  auto doc = json_parse(slurp(dir_ + "/oaf_anomaly_0.json"));
  ASSERT_TRUE(doc) << doc.status().to_string();
  const auto& root = doc.value();
  EXPECT_EQ(root["reason"].as_string(), "slo_breach");
  EXPECT_EQ(root["op"].as_string(), "read");
  EXPECT_GT(root["total_ns"].as_i64(), 1);
  EXPECT_EQ(root["slo_ns"].as_i64(), 1);

  const i64 trace_id = root["trace_id"].as_i64();
  ASSERT_GT(trace_id, 0);
  // Both processes here are this one, but the halves travelled the wire:
  // the remote side is stamped with the responding pid.
  EXPECT_EQ(root["local"]["pid"].as_i64(), static_cast<i64>(::getpid()));
  EXPECT_EQ(root["remote"]["pid"].as_i64(), static_cast<i64>(::getpid()));

  // The breaching I/O's span set appears on BOTH sides under one trace_id.
  auto has_trace_id = [&](const JsonValue& events) {
    if (!events.is_array()) return false;
    for (const auto& ev : events.items()) {
      if (ev["id"].as_i64() == trace_id) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_trace_id(root["local"]["events"]))
      << "local half lost the breaching I/O's spans";
  EXPECT_TRUE(has_trace_id(root["remote"]["events"]))
      << "remote half lost the breaching I/O's spans";

  // The attached heatmap shows the stage data that fingered the breach.
  EXPECT_TRUE(root["heat"]["windows"].is_array());
  // Stages were carved: device residency must not be zero for a real read.
  EXPECT_GT(root["stages"]["device"].as_i64(), 0);
}

TEST_F(AnomalyE2ETest, BreachStormStillWritesExactlyOneCapture) {
  if (!OAF_TELEMETRY_COMPILED) {
    GTEST_SKIP() << "instrumentation compiled out (OAF_TELEMETRY=OFF)";
  }
  arm_watchdog(1);
  arm_capture();
  Harness h(af::AfConfig::oaf());
  std::vector<u8> out(16 * 1024);
  int completed = 0;
  for (int i = 0; i < 32; ++i) {
    h.initiator->read(1, 0, out, [&](auto r) {
      EXPECT_TRUE(r.ok());
      completed++;
    });
    h.sched.run();
  }
  EXPECT_EQ(completed, 32);
  // 32 breaches, one claim: min_interval_ns (5 s) dwarfs the sim run.
  EXPECT_EQ(capture_count(), 1);
  EXPECT_GE(telemetry::metrics()
                .counter("oaf_slo_breaches_total", "")
                ->value(),
            32);
}

TEST_F(AnomalyE2ETest, CleanRunWritesNothing) {
  if (!OAF_TELEMETRY_COMPILED) {
    GTEST_SKIP() << "instrumentation compiled out (OAF_TELEMETRY=OFF)";
  }
  arm_watchdog(/*slo_read_ns=*/0);  // no SLO: nothing can breach
  arm_capture();
  Harness h(af::AfConfig::oaf());
  std::vector<u8> out(64 * 1024);
  bool done = false;
  h.initiator->read(1, 0, out, [&](auto r) {
    EXPECT_TRUE(r.ok());
    done = true;
  });
  h.sched.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(capture_count(), 0);
}

TEST_F(AnomalyE2ETest, BreachWithoutArmedCaptureWritesNothing) {
  if (!OAF_TELEMETRY_COMPILED) {
    GTEST_SKIP() << "instrumentation compiled out (OAF_TELEMETRY=OFF)";
  }
  arm_watchdog(1);  // breaches fire, but capture was never armed
  Harness h(af::AfConfig::oaf());
  std::vector<u8> out(64 * 1024);
  bool done = false;
  h.initiator->read(1, 0, out, [&](auto r) {
    EXPECT_TRUE(r.ok());
    done = true;
  });
  h.sched.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(capture_count(), 0);
}

TEST(AnomalyRecorderTest, ArmedPollsRaceConfigureWithoutTearing) {
  // Regression: armed() used to read armed_ without mu_ while configure()
  // and reset_for_test() write it from tool threads — a data race the
  // annotation pass (OAF_GUARDED_BY(mu_)) flagged. armed()/captures() now
  // lock; this drives the exact read-vs-write overlap under TSan and
  // checks the end state is coherent either way.
  telemetry::AnomalyRecorder rec(64);
  std::atomic<bool> done{false};
  std::atomic<u64> armed_seen{0};
  std::vector<std::thread> pollers;
  pollers.reserve(3);
  for (int p = 0; p < 3; ++p) {
    pollers.emplace_back([&rec, &done, &armed_seen] {
      while (!done.load(std::memory_order_acquire)) {
        if (rec.armed()) armed_seen.fetch_add(1, std::memory_order_relaxed);
        (void)rec.captures();
        (void)rec.options();
      }
    });
  }

  telemetry::AnomalyOptions opts;
  opts.dir = "/tmp";
  for (int cycle = 0; cycle < 500; ++cycle) {
    rec.configure(opts);   // arm
    rec.reset_for_test();  // disarm + forget history
  }
  rec.configure(opts);
  done.store(true, std::memory_order_release);
  for (auto& t : pollers) t.join();

  EXPECT_TRUE(rec.armed());  // last write wins, visible to everyone
  EXPECT_EQ(rec.captures(), 0u);
  EXPECT_EQ(rec.options().dir, "/tmp");
}

}  // namespace
}  // namespace oaf::nvmf

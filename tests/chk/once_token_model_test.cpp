// Model-checked composition of the linear completion token with the
// multipath exactly-once fence (DESIGN.md §11, §14).
//
// PathGroup's redrive protocol holds one af::OnceCallback per live command
// and uses "erase the gseq entry, then deliver" as the exactly-once fence.
// The token adds a second, orthogonal guarantee: whichever event wins the
// fence TAKES the token out of the map entry (a move), so a late duplicate
// does not even have a callback left to invoke — and losing the race can
// never leak an armed token (the abort-on-armed-drop tripwire would fire).
//
// The models below run that combined protocol under the model checker with
// a token modelled as a moveable armed flag carrying the same invariants
// OnceCallback enforces at runtime: invoke requires armed, invoke disarms,
// and finish() asserts no armed token survives. Every arrival order the
// event loop could produce is explored.
#include <gtest/gtest.h>

#include "chk/atomic.h"
#include "chk/check.h"

namespace oaf::nvmf {
namespace {

using oaf::chk::RunResult;
using oaf::u32;

/// Moveable stand-in for af::OnceCallback inside the checker: the runtime
/// class aborts the process on violation, the model makes the same states
/// checkable assertions.
struct TokenModel {
  bool armed = false;

  void arm() { armed = true; }
  /// Move-out: the source disarms, the caller owns the arm.
  bool take() {
    const bool had = armed;
    armed = false;
    return had;
  }
};

/// Two completions race for one live command: the survivor path's result
/// and a late duplicate from the original (half-dead) path. The fence
/// (erase-before-deliver) picks the winner; the token must be invoked
/// exactly once and must never be left armed.
struct TokenThroughFenceModel {
  static constexpr u32 kThreads = 2;

  oaf::chk::mutex mu;
  bool live = true;             ///< gseq still in the map
  TokenModel token{true};       ///< the map entry's token, armed at submit
                                ///< (construction happens-before threads)
  bool stolen = false;          ///< winner moved the token out
  int invoked = 0;              ///< application callback ran
  int suppressed = 0;           ///< loser found no entry

  void thread(u32) {
    // The fence: erase the entry AND move the token out in the same
    // critical section (PathGroup does both under event-loop serialization
    // before calling the application).
    mu.lock();
    const bool won = live;
    bool have_arm = false;
    if (won) {
      live = false;
      have_arm = token.take();  // move the OnceCallback out of the entry
      stolen = true;
    }
    mu.unlock();
    if (won) {
      CHK_ASSERT(have_arm, "fence winner must receive an armed token");
      invoked++;  // std::move(cb)(res)
    } else {
      mu.lock();
      suppressed++;
      mu.unlock();
    }
  }

  void finish() {
    CHK_ASSERT(invoked == 1, "token must be invoked exactly once");
    CHK_ASSERT(suppressed == 1, "late duplicate must find no entry");
    CHK_ASSERT(!token.armed,
               "an armed token survived teardown — the runtime class would "
               "abort at this drop");
  }
};

TEST(ChkOnceToken, TokenThroughFenceInvokedExactlyOnce) {
  const RunResult r = oaf::chk::check<TokenThroughFenceModel>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_GE(r.executions, 2u);
}

/// The buggy variant the token construction makes impossible in the real
/// class: delivering WITHOUT taking the token (a copyable std::function
/// callback would permit this — both racers can hold a copy). The checker
/// finds the interleaving where both events deliver.
struct CopyableCallbackBugModel {
  static constexpr u32 kThreads = 2;

  oaf::chk::mutex mu;
  bool live = true;
  int invoked = 0;

  void thread(u32) {
    mu.lock();
    const bool present = live;
    mu.unlock();
    // BUG under test: the fence check and the erase are not atomic, and
    // the callback is copyable so each racer holds its own handle.
    if (present) {
      mu.lock();
      live = false;
      mu.unlock();
      invoked++;
    }
  }

  void finish() {
    CHK_ASSERT(invoked == 1, "double delivery through copied callbacks");
  }
};

TEST(ChkOnceToken, CopyableCallbackRaceIsCaught) {
  const RunResult r = oaf::chk::check<CopyableCallbackBugModel>();
  EXPECT_FALSE(r.ok) << "the checker must find the double-delivery order";
  EXPECT_NE(r.report().find("double delivery"), std::string::npos) << r.report();
}

/// Teardown discard: the group dies while commands are still live. The
/// destructor must drop() every armed token deliberately — modelled here
/// as take() without invoke — so teardown is not a linearity violation.
struct TeardownDiscardModel {
  static constexpr u32 kThreads = 1;

  oaf::chk::mutex mu;
  TokenModel a{true}, b{true};  ///< armed at submit
  int invoked = 0;

  void thread(u32) {
    // One command completes normally...
    mu.lock();
    const bool have = a.take();
    mu.unlock();
    if (have) invoked++;
    // ...then the group is destroyed with b still live: explicit drop.
    mu.lock();
    (void)b.take();  // std::move(b).drop()
    mu.unlock();
  }

  void finish() {
    CHK_ASSERT(invoked == 1, "completed command must deliver");
    CHK_ASSERT(!a.armed && !b.armed,
               "teardown left an armed token (runtime: abort in ~PathGroup)");
  }
};

TEST(ChkOnceToken, TeardownDropsArmedTokensDeliberately) {
  const RunResult r = oaf::chk::check<TeardownDiscardModel>();
  EXPECT_TRUE(r.ok) << r.report();
}

}  // namespace
}  // namespace oaf::nvmf

// Model-checked invariants of the target's staging-budget grant/release
// protocol (DESIGN.md §12).
//
// The target charges a command's full transfer length against per-connection
// and global budgets at admission, carries the charge on the IoCtx, moves it
// onto the zombie buffer when an abort orphans the staging buffer, and
// releases it at exactly one of: command completion (erase_inflight), zombie
// reclamation (drop_zombie), or connection teardown (the destructor sweep).
// The events are serialized by the connection's executor but can arrive in
// any order; the models below prove that under every ordering the budget is
// never over-granted past capacity, every admitted charge is released
// exactly once (no leak, no double credit), and an abort/teardown racing a
// completion never strands or duplicates a charge.
#include <gtest/gtest.h>

#include "chk/atomic.h"
#include "chk/check.h"

namespace oaf::nvmf {
namespace {

using oaf::chk::RunResult;
using oaf::u32;

/// Admission under a shared budget: three commands race for two units of
/// capacity. Grants must never exceed capacity, every denied command must
/// leave the budget untouched, and once every granted command completes the
/// budget returns to zero.
struct BudgetGrantModel {
  static constexpr u32 kThreads = 3;
  static constexpr u32 kCapacity = 2;

  oaf::chk::mutex mu;
  u32 in_use = 0;
  u32 peak = 0;
  u32 granted = 0;
  u32 denied = 0;

  void thread(u32) {
    // Admission: try_acquire(1) against the shared budget.
    mu.lock();
    const bool ok = in_use + 1 <= kCapacity;
    if (ok) {
      in_use++;
      if (in_use > peak) peak = in_use;
      granted++;
    } else {
      denied++;  // kQueueFull reject: no charge taken
    }
    mu.unlock();
    if (!ok) return;
    // Completion: erase_inflight releases exactly the admitted charge.
    mu.lock();
    in_use--;
    mu.unlock();
  }

  void finish() {
    CHK_ASSERT(in_use == 0, "charge leaked after all commands resolved");
    CHK_ASSERT(peak <= kCapacity, "budget over-granted past capacity");
    CHK_ASSERT(granted + denied == kThreads, "admission lost a command");
  }
};

TEST(ChkBudget, GrantNeverExceedsCapacityAndAlwaysReturns) {
  const RunResult r = oaf::chk::check<BudgetGrantModel>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_TRUE(r.exhausted);
}

/// Abort vs completion for one admitted command carrying one unit of
/// charge. handle_abort moves the charge onto the zombie buffer and zeroes
/// the IoCtx's copy, so whichever release point fires — erase_inflight for
/// the ctx, drop_zombie for the orphaned buffer — the unit comes back
/// exactly once.
struct AbortChargeHandoffModel {
  static constexpr u32 kThreads = 2;

  oaf::chk::mutex mu;
  bool inflight = true;   ///< IoCtx present
  u32 ctx_charge = 1;     ///< charge riding the IoCtx
  u32 zombie_charge = 0;  ///< charge parked on the zombie buffer
  u32 released = 0;       ///< units returned to the budget

  void abort_cmd() {
    // handle_abort: the staging buffer (and its charge) moves to the zombie
    // map; the victim's CapsuleResp will then release a zero charge.
    mu.lock();
    if (inflight && ctx_charge > 0) {
      zombie_charge += ctx_charge;
      ctx_charge = 0;
    }
    mu.unlock();
  }

  void complete_cmd() {
    // erase_inflight: release whatever charge the ctx still carries.
    mu.lock();
    if (inflight) {
      inflight = false;
      released += ctx_charge;
      ctx_charge = 0;
    }
    mu.unlock();
    // drop_zombie: the device/copy completion reclaims the orphaned buffer.
    mu.lock();
    released += zombie_charge;
    zombie_charge = 0;
    mu.unlock();
  }

  void thread(u32 t) {
    if (t == 0) {
      abort_cmd();
    } else {
      complete_cmd();
    }
  }

  void finish() {
    CHK_ASSERT(released == 1, "charge leaked or double-released across abort");
    CHK_ASSERT(ctx_charge == 0 && zombie_charge == 0, "charge stranded");
  }
};

TEST(ChkBudget, AbortHandoffReleasesChargeExactlyOnce) {
  const RunResult r = oaf::chk::check<AbortChargeHandoffModel>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_TRUE(r.exhausted);
}

/// Connection teardown (eviction, failover) racing a normal completion.
/// The destructor sweeps every remaining IoCtx and zombie charge back to
/// the service-owned global budget; a completion that already released its
/// charge must not be released again by the sweep.
struct TeardownSweepModel {
  static constexpr u32 kThreads = 2;

  oaf::chk::mutex mu;
  u32 inflight_charge = 1;  ///< one live command
  u32 zombie_charge = 1;    ///< one orphaned abort victim
  u32 released = 0;
  bool torn_down = false;

  void complete_one() {
    mu.lock();
    if (!torn_down) {
      released += inflight_charge;  // erase_inflight
      inflight_charge = 0;
    }
    mu.unlock();
  }

  void teardown() {
    // ~NvmfTargetConnection: release everything still charged.
    mu.lock();
    torn_down = true;
    released += inflight_charge + zombie_charge;
    inflight_charge = 0;
    zombie_charge = 0;
    mu.unlock();
  }

  void thread(u32 t) {
    if (t == 0) {
      complete_one();
    } else {
      teardown();
    }
  }

  void finish() {
    CHK_ASSERT(released == 2, "teardown leaked or double-released charges");
    CHK_ASSERT(inflight_charge == 0 && zombie_charge == 0,
               "charge survived teardown");
  }
};

TEST(ChkBudget, TeardownSweepNeverLeaksOrDoubleReleases) {
  const RunResult r = oaf::chk::check<TeardownSweepModel>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_TRUE(r.exhausted);
}

}  // namespace
}  // namespace oaf::nvmf

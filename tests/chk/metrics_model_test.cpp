// Model-checked invariants of the metrics registry — production
// BasicMetricsRegistry over chk::CheckedPolicy. The contract under test:
// find-or-create is atomic (two racing callers of counter("x") get the SAME
// instrument, never a duplicate registration), increments on the shared
// instrument are never lost, and the registry mutex composes with the
// per-instrument atomics without deadlock.
#include <gtest/gtest.h>

#include "chk/check.h"
#include "chk/policy.h"
#include "telemetry/metrics.h"

namespace oaf::telemetry {
namespace {

using oaf::chk::RunResult;
using Registry = BasicMetricsRegistry<oaf::chk::CheckedPolicy>;

// Two connections race to register-and-bump the same counter name.
struct FindOrCreateModel {
  static constexpr u32 kThreads = 2;

  Registry reg;
  Registry::Counter* got[2] = {nullptr, nullptr};

  void thread(u32 t) {
    got[t] = reg.counter("oaf_io_total", "completed I/Os");
    got[t]->inc();
  }
  void finish() {
    CHK_ASSERT(got[0] != nullptr && got[1] != nullptr,
               "find-or-create returned null");
    CHK_ASSERT(got[0] == got[1],
               "racing counter(\"x\") calls created distinct instruments");
    CHK_ASSERT(got[0]->value() == 2, "increment lost on shared counter");
    CHK_ASSERT(reg.size() == 1, "duplicate registration leaked");
  }
};

TEST(ChkMetrics, FindOrCreateRaceYieldsOneInstrument) {
  const RunResult r = oaf::chk::check<FindOrCreateModel>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_TRUE(r.exhausted);
}

// Mixed-type traffic: one thread works a counter, the other a gauge under
// the same registry mutex; totals must be exact and both registrations kept.
struct MixedTrafficModel {
  static constexpr u32 kThreads = 2;

  Registry reg;

  void thread(u32 t) {
    if (t == 0) {
      auto* c = reg.counter("oaf_bytes_total", "bytes moved");
      c->inc(4096);
      c->inc(4096);
    } else {
      auto* g = reg.gauge("oaf_queue_depth", "inflight");
      g->add(3);
      g->add(-1);
    }
  }
  void finish() {
    CHK_ASSERT(reg.counter("oaf_bytes_total", "")->value() == 8192,
               "counter total wrong");
    CHK_ASSERT(reg.gauge("oaf_queue_depth", "")->value() == 2,
               "gauge total wrong");
    CHK_ASSERT(reg.size() == 2, "registration count wrong");
  }
};

TEST(ChkMetrics, ConcurrentMixedTrafficExact) {
  const RunResult r = oaf::chk::check<MixedTrafficModel>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_TRUE(r.exhausted);
}

}  // namespace
}  // namespace oaf::telemetry

// Model-checked invariants of the multipath handoff fence (DESIGN.md §11).
//
// PathGroup keys every live command by a group sequence number in a map and
// makes "erase the entry, then deliver the callback" the exactly-once
// fence: whichever completion event wins the erase owns delivery, and every
// later event for the same gseq finds nothing and is suppressed. The group
// itself runs on one executor, so the events are serialized — but they can
// arrive in ANY order (a half-dead path's late duplicate can land before or
// after the redriven path's completion, an abort can race a redrive). The
// models below run the same fence protocol under the model checker with a
// chk::mutex standing in for event-loop serialization, proving delivery is
// exactly-once and commands are never lost under every arrival order the
// loop could produce.
#include <gtest/gtest.h>

#include "chk/atomic.h"
#include "chk/check.h"

namespace oaf::nvmf {
namespace {

using oaf::chk::RunResult;
using oaf::u32;

/// The fence itself: a command was redriven from a dying path onto a
/// survivor, and now two success completions race for it — the survivor's
/// and a late duplicate from the original path (its capsule had already
/// executed before the fault). Exactly one may reach the application.
struct LateDuplicateFenceModel {
  static constexpr u32 kThreads = 2;

  oaf::chk::mutex mu;
  bool live = true;  ///< gseq present in the map
  int delivered = 0;
  int suppressed = 0;

  void complete() {
    mu.lock();
    const bool won = live;
    if (won) live = false;  // erase-before-deliver
    mu.unlock();
    if (won) {
      delivered++;  // application callback
    } else {
      mu.lock();
      suppressed++;
      mu.unlock();
    }
  }

  void thread(u32) { complete(); }

  void finish() {
    CHK_ASSERT(delivered == 1, "duplicate or lost delivery through the fence");
    CHK_ASSERT(suppressed == 1, "late duplicate was not suppressed");
  }
};

TEST(ChkPathHandoff, LateDuplicateCompletionDeliversExactlyOnce) {
  const RunResult r = oaf::chk::check<LateDuplicateFenceModel>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_TRUE(r.exhausted);
}

/// Redrive racing abort: one event is a transport-shaped failure that wants
/// to re-issue the command (budget permitting), the other an abort-shaped
/// failure, and a third the eventual success of whichever re-issue landed.
/// Whatever interleaving the loop produces, the application sees exactly
/// one terminal callback and the redrive count never exceeds the budget.
struct RedriveVsAbortModel {
  static constexpr u32 kThreads = 3;
  static constexpr u32 kBudget = 1;

  oaf::chk::mutex mu;
  bool live = true;
  u32 redrives = 0;
  int delivered_ok = 0;
  int delivered_err = 0;
  int suppressed = 0;

  /// A redrivable failure (kDataTransferError / kAbortedByRequest): consume
  /// budget and re-issue, or surface the error through the fence.
  void fail_redrivable() {
    mu.lock();
    if (!live) {
      suppressed++;
      mu.unlock();
      return;
    }
    if (redrives < kBudget) {
      redrives++;  // command stays live, re-issued on a survivor
      mu.unlock();
      return;
    }
    live = false;  // budget exhausted: erase, then deliver the error
    mu.unlock();
    delivered_err++;
  }

  void complete_ok() {
    mu.lock();
    const bool won = live;
    if (won) live = false;
    mu.unlock();
    if (won) {
      delivered_ok++;
    } else {
      mu.lock();
      suppressed++;
      mu.unlock();
    }
  }

  void thread(u32 t) {
    if (t == 2) {
      complete_ok();
    } else {
      fail_redrivable();
    }
  }

  void finish() {
    CHK_ASSERT(delivered_ok + delivered_err == 1,
               "application saw zero or multiple terminal callbacks");
    CHK_ASSERT(redrives <= kBudget, "redrive budget exceeded");
    CHK_ASSERT(!live, "command leaked: still live after all events");
  }
};

TEST(ChkPathHandoff, RedriveAbortSuccessRaceIsExactlyOnce) {
  const RunResult r = oaf::chk::check<RedriveVsAbortModel>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_TRUE(r.exhausted);
}

/// Parking vs drain: submissions that find no eligible path park; a path
/// coming back drains the deque. A submission racing the drain must end up
/// either issued (the drain saw it) or still parked (it arrived after) —
/// never lost, never issued twice.
struct ParkDrainModel {
  static constexpr u32 kThreads = 2;
  static constexpr u32 kCmds = 2;

  oaf::chk::mutex mu;
  bool path_up = false;
  u32 parked = 0;   ///< commands waiting in the deque
  u32 issued = 0;   ///< commands handed to a path
  u32 submitted = 0;

  void submit_one() {
    mu.lock();
    submitted++;
    if (path_up) {
      issued++;
    } else {
      parked++;
    }
    mu.unlock();
  }

  void drain() {
    mu.lock();
    path_up = true;
    issued += parked;  // drain_parked(): every waiter moves, exactly once
    parked = 0;
    mu.unlock();
  }

  void thread(u32 t) {
    if (t == 0) {
      for (u32 i = 0; i < kCmds; ++i) submit_one();
    } else {
      drain();
    }
  }

  void finish() {
    CHK_ASSERT(submitted == kCmds, "wrong submission count");
    CHK_ASSERT(issued + parked == submitted,
               "command lost or duplicated across the park/drain handoff");
    // Once the path is up nothing may remain parked.
    CHK_ASSERT(!path_up || parked == 0, "drain left waiters behind");
  }
};

TEST(ChkPathHandoff, ParkDrainRaceNeverLosesACommand) {
  const RunResult r = oaf::chk::check<ParkDrainModel>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_TRUE(r.exhausted);
}

}  // namespace
}  // namespace oaf::nvmf

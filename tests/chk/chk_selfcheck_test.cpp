// Self-checks for the model-checker engine: classic memory-model litmus
// tests with known answers. These prove the checker's C++11 modelling is
// neither naive interleaving (it must FIND the relaxed-order weak behaviors)
// nor broken (it must NOT invent weak behaviors that release/acquire or
// seq_cst forbid), and that the race detector and deadlock detector fire.
#include <gtest/gtest.h>

#include "chk/check.h"

namespace oaf::chk {
namespace {

// ---------------------------------------------------------------------------
// Message passing: data published with release, consumed with acquire.
// The consumer that sees flag==1 must see data==42; the race detector must
// stay quiet. This must hold over the WHOLE exhaustive DFS.
struct MpReleaseAcquire {
  static constexpr u32 kThreads = 2;
  atomic<u64> flag{0};
  var<u64> data{0};

  void thread(u32 t) {
    if (t == 0) {
      data = 42;
      flag.store(1, std::memory_order_release);
    } else {
      if (flag.load(std::memory_order_acquire) == 1) {
        CHK_ASSERT(data == 42, "acquire saw flag but stale data");
      }
    }
  }
};

TEST(ChkLitmus, MessagePassingReleaseAcquirePasses) {
  const RunResult r = check<MpReleaseAcquire>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_TRUE(r.exhausted);
  EXPECT_GT(r.executions, 1u);
}

// Same shape but the flag is published relaxed: the consumer can observe
// flag==1 yet race on (or observe stale) data. The checker must flag it.
struct MpRelaxed {
  static constexpr u32 kThreads = 2;
  atomic<u64> flag{0};
  var<u64> data{0};

  void thread(u32 t) {
    if (t == 0) {
      data = 42;
      flag.store(1, std::memory_order_relaxed);
    } else {
      if (flag.load(std::memory_order_relaxed) == 1) {
        CHK_ASSERT(data == 42, "relaxed publish let stale data through");
      }
    }
  }
};

TEST(ChkLitmus, MessagePassingRelaxedIsCaught) {
  const RunResult r = check<MpRelaxed>();
  ASSERT_FALSE(r.ok) << "checker missed the missing release/acquire pair";
  EXPECT_NE(r.failure.find("data race"), std::string::npos) << r.report();
}

// A release fence before a relaxed store re-establishes the ordering
// (fence + relaxed store pattern used by seqlock-style writers).
struct MpReleaseFence {
  static constexpr u32 kThreads = 2;
  atomic<u64> flag{0};
  var<u64> data{0};

  void thread(u32 t) {
    if (t == 0) {
      data = 42;
      thread_fence(std::memory_order_release);
      flag.store(1, std::memory_order_relaxed);
    } else {
      if (flag.load(std::memory_order_relaxed) == 1) {
        thread_fence(std::memory_order_acquire);
        CHK_ASSERT(data == 42, "fence pair failed to order data");
      }
    }
  }
};

TEST(ChkLitmus, ReleaseFencePairPasses) {
  const RunResult r = check<MpReleaseFence>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_TRUE(r.exhausted);
}

// ---------------------------------------------------------------------------
// Store buffering (Dekker): with seq_cst both threads can never read 0.
struct SbSeqCst {
  static constexpr u32 kThreads = 2;
  atomic<u64> x{0};
  atomic<u64> y{0};
  u64 r0 = 1;
  u64 r1 = 1;

  void thread(u32 t) {
    if (t == 0) {
      x.store(1, std::memory_order_seq_cst);
      r0 = y.load(std::memory_order_seq_cst);
    } else {
      y.store(1, std::memory_order_seq_cst);
      r1 = x.load(std::memory_order_seq_cst);
    }
  }
  void finish() const {
    CHK_ASSERT(r0 == 1 || r1 == 1, "seq_cst store buffering leaked");
  }
};

TEST(ChkLitmus, StoreBufferingSeqCstForbidden) {
  const RunResult r = check<SbSeqCst>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_TRUE(r.exhausted);
}

// With relaxed (or even acquire/release) ordering, both-zero IS allowed on
// real hardware; the modelled store buffer must be able to produce it.
struct SbRelaxed {
  static constexpr u32 kThreads = 2;
  atomic<u64> x{0};
  atomic<u64> y{0};
  u64 r0 = 1;
  u64 r1 = 1;

  void thread(u32 t) {
    if (t == 0) {
      x.store(1, std::memory_order_relaxed);
      r0 = y.load(std::memory_order_relaxed);
    } else {
      y.store(1, std::memory_order_relaxed);
      r1 = x.load(std::memory_order_relaxed);
    }
  }
  void finish() const {
    CHK_ASSERT(r0 == 1 || r1 == 1, "both-zero observed (expected!)");
  }
};

TEST(ChkLitmus, StoreBufferingRelaxedObserved) {
  const RunResult r = check<SbRelaxed>();
  ASSERT_FALSE(r.ok) << "checker cannot model store buffering";
  EXPECT_NE(r.failure.find("both-zero"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Race detector: two unsynchronized writers.
struct PlainRace {
  static constexpr u32 kThreads = 2;
  var<u64> v{0};
  void thread(u32 t) { v = t; }
};

TEST(ChkRaces, UnsynchronizedWritesAreARace) {
  const RunResult r = check<PlainRace>();
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("data race"), std::string::npos) << r.report();
}

// Mutex-protected counter: no race, and the count adds up.
struct MutexCounter {
  static constexpr u32 kThreads = 3;
  mutex mu;
  var<u64> n{0};

  void thread(u32) {
    std::lock_guard<mutex> lk(mu);
    n = n + 1;
  }
  void finish() { CHK_ASSERT(n == kThreads, "lost update under mutex"); }
};

TEST(ChkRaces, MutexCounterIsClean) {
  const RunResult r = check<MutexCounter>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_TRUE(r.exhausted);
}

// Un-mutexed counter: increments can be lost AND it is a race.
struct RacyCounter {
  static constexpr u32 kThreads = 2;
  var<u64> n{0};
  void thread(u32) { n = n + 1; }
};

TEST(ChkRaces, RacyCounterIsCaught) {
  const RunResult r = check<RacyCounter>();
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("data race"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Deadlock: classic AB/BA lock order inversion.
struct LockOrderInversion {
  static constexpr u32 kThreads = 2;
  mutex a;
  mutex b;

  void thread(u32 t) {
    if (t == 0) {
      std::lock_guard<mutex> la(a);
      std::lock_guard<mutex> lb(b);
    } else {
      std::lock_guard<mutex> lb(b);
      std::lock_guard<mutex> la(a);
    }
  }
};

TEST(ChkDeadlock, LockOrderInversionIsCaught) {
  const RunResult r = check<LockOrderInversion>();
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("deadlock"), std::string::npos) << r.report();
}

// ---------------------------------------------------------------------------
// CAS / RMW atomicity: concurrent fetch_add never loses an increment.
struct AtomicCounter {
  static constexpr u32 kThreads = 3;
  atomic<u64> n{0};
  void thread(u32) { n.fetch_add(1, std::memory_order_relaxed); }
  void finish() {
    CHK_ASSERT(n.load(std::memory_order_relaxed) == kThreads,
               "fetch_add lost an increment");
  }
};

TEST(ChkAtomics, FetchAddNeverLosesIncrements) {
  const RunResult r = check<AtomicCounter>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_TRUE(r.exhausted);
}

// Exactly one of N CAS contenders wins.
struct CasOneWinner {
  static constexpr u32 kThreads = 3;
  atomic<u32> state{0};
  var<u32> winners{0};
  mutex mu;

  void thread(u32) {
    u32 expected = 0;
    if (state.compare_exchange_strong(expected, 1, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      std::lock_guard<mutex> lk(mu);
      winners = winners + 1;
    }
  }
  void finish() { CHK_ASSERT(winners == 1, "CAS granted twice (or never)"); }
};

TEST(ChkAtomics, CasHasExactlyOneWinner) {
  const RunResult r = check<CasOneWinner>();
  EXPECT_TRUE(r.ok) << r.report();
}

}  // namespace
}  // namespace oaf::chk

// Model-checked invariants of the shm double-buffer ring (paper §4.4.1),
// run over BasicDoubleBufferRing<chk::CheckedPolicy> — the SAME source as
// the production ring — under the deterministic concurrency checker:
//   - round-robin acquire never double-grants a slot;
//   - a published payload is fully visible to the consumer (client/target
//     ownership handoff carries happens-before);
//   - the orphan sweeper and a slow owner can never both win a slot
//     (regression for the check-then-store publish/release bug);
//   - epoch fencing rejects a stale incarnation's writes.
#include <gtest/gtest.h>

#include <array>

#include "chk/check.h"
#include "chk/policy.h"
#include "shm/double_buffer.h"
#include "shm/fault_ring.h"

namespace oaf::shm {
namespace {

using oaf::chk::RunResult;
using Ring = BasicDoubleBufferRing<oaf::chk::CheckedPolicy>;
using Fault = BasicShmFaultRing<oaf::chk::CheckedPolicy>;

constexpr Direction kC2T = Direction::kClientToTarget;

// ---------------------------------------------------------------------------
// Two producers race acquire() on the same round-robin slot: exactly one may
// win, and only the winner may scribble on slot-owner state (the chk::var
// doubles as a race probe — two winners would also be a data race).
struct DoubleGrantModel {
  static constexpr u32 kThreads = 2;

  alignas(64) std::array<u8, 2048> mem{};
  Ring ring;
  chk::var<u64> owner_scratch{0};
  bool won[2] = {false, false};

  DoubleGrantModel()
      : ring(Ring::create(mem.data(), mem.size(), 8, 1).take()) {}

  void thread(u32 t) {
    if (ring.acquire(kC2T, 0).is_ok()) {
      won[t] = true;
      owner_scratch = t;
    }
  }
  void finish() {
    CHK_ASSERT(won[0] != won[1], "acquire double-granted (or never granted)");
    CHK_ASSERT(ring.state(kC2T, 0) == Ring::kWriting,
               "granted slot not in kWriting");
    CHK_ASSERT(ring.in_flight(kC2T) == 1, "in_flight miscounts");
  }
};

TEST(ChkDoubleBuffer, AcquireNeverDoubleGrants) {
  const RunResult r = oaf::chk::check<DoubleGrantModel>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_TRUE(r.exhausted);
}

// ---------------------------------------------------------------------------
// Full producer->consumer handoff: the consumer that wins consume() must see
// the payload the producer wrote before publish() — the race detector proves
// the release-CAS / acquire-CAS pair carries the happens-before edge — and
// the slot returns to kFree exactly once.
struct TransferModel {
  static constexpr u32 kThreads = 2;

  alignas(64) std::array<u8, 2048> mem{};
  Ring producer;
  Ring consumer;
  chk::var<u64> payload{0};
  bool consumed = false;

  TransferModel()
      : producer(Ring::create(mem.data(), mem.size(), 8, 1).take()),
        consumer(Ring::attach(mem.data(), mem.size()).take()) {}

  void thread(u32 t) {
    if (t == 0) {
      CHK_ASSERT(producer.acquire(kC2T, 0).is_ok(), "producer acquire failed");
      payload = 42;
      CHK_ASSERT(producer.publish(kC2T, 0, 8).is_ok(), "publish failed");
    } else {
      for (int attempt = 0; attempt < 2; ++attempt) {
        auto got = consumer.consume(kC2T, 0);
        if (!got.is_ok()) continue;
        CHK_ASSERT(got.value().size() == 8, "consume returned wrong length");
        CHK_ASSERT(payload == 42, "consumer saw stale payload");
        CHK_ASSERT(consumer.release(kC2T, 0).is_ok(), "release failed");
        consumed = true;
        return;
      }
    }
  }
  void finish() {
    if (consumed) {
      CHK_ASSERT(ring_state() == Ring::kFree, "released slot not kFree");
    } else {
      // Consumer gave up before the publish landed: payload still parked.
      CHK_ASSERT(ring_state() == Ring::kReady, "published slot not kReady");
    }
  }
  [[nodiscard]] Ring::SlotState ring_state() const {
    return producer.state(kC2T, 0);
  }
};

TEST(ChkDoubleBuffer, PublishConsumeCarriesHappensBefore) {
  const RunResult r = oaf::chk::check<TransferModel>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_TRUE(r.exhausted);
}

// ---------------------------------------------------------------------------
// REGRESSION: publish() used to be check-then-store (relaxed load of the
// state word, then plain stores of len/epoch/kReady). The orphan sweeper
// could claim the slot between the check and the stores, and both sides
// "won": the sweeper freed the slot while the producer force-published into
// it. With the CAS-based transition exactly one side wins.
struct SweeperVsPublishModel {
  static constexpr u32 kThreads = 2;

  alignas(64) std::array<u8, 2048> mem{};
  Ring ring;
  bool pub_ok = false;
  bool sweep_ok = false;

  SweeperVsPublishModel()
      : ring(Ring::create(mem.data(), mem.size(), 8, 1).take()) {
    // The producer owns the slot; the sweeper believes it is stuck.
    CHK_ASSERT(ring.acquire(kC2T, 0).is_ok(), "setup acquire failed");
  }

  void thread(u32 t) {
    if (t == 0) {
      pub_ok = ring.publish(kC2T, 0, 8).is_ok();
    } else {
      sweep_ok = ring.force_release(kC2T, 0).is_ok();
    }
  }
  void finish() {
    CHK_ASSERT(pub_ok != sweep_ok,
               "sweeper and producer both (or neither) won the slot");
    if (pub_ok) {
      CHK_ASSERT(ring.state(kC2T, 0) == Ring::kReady,
                 "published slot not kReady");
      auto got = ring.consume(kC2T, 0);
      CHK_ASSERT(got.is_ok(), "published payload not consumable");
      CHK_ASSERT(got.value().size() == 8, "published length lost");
    } else {
      CHK_ASSERT(ring.state(kC2T, 0) == Ring::kFree,
                 "swept slot not reclaimed to kFree");
      CHK_ASSERT(ring.acquire(kC2T, 0).is_ok(), "swept slot not reusable");
    }
  }
};

TEST(ChkDoubleBuffer, SweeperVsPublishExactlyOneWins) {
  const RunResult r = oaf::chk::check<SweeperVsPublishModel>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_TRUE(r.exhausted);
}

// Same race on the drain side: release() vs force_release() of a kDraining
// slot (consumer presumed dead mid-drain, then completes anyway).
struct SweeperVsReleaseModel {
  static constexpr u32 kThreads = 2;

  alignas(64) std::array<u8, 2048> mem{};
  Ring ring;
  bool rel_ok = false;
  bool sweep_ok = false;

  SweeperVsReleaseModel()
      : ring(Ring::create(mem.data(), mem.size(), 8, 1).take()) {
    CHK_ASSERT(ring.acquire(kC2T, 0).is_ok(), "setup acquire failed");
    CHK_ASSERT(ring.publish(kC2T, 0, 8).is_ok(), "setup publish failed");
    CHK_ASSERT(ring.consume(kC2T, 0).is_ok(), "setup consume failed");
  }

  void thread(u32 t) {
    if (t == 0) {
      rel_ok = ring.release(kC2T, 0).is_ok();
    } else {
      sweep_ok = ring.force_release(kC2T, 0).is_ok();
    }
  }
  void finish() {
    CHK_ASSERT(rel_ok != sweep_ok,
               "consumer and sweeper both (or neither) freed the slot");
    CHK_ASSERT(ring.state(kC2T, 0) == Ring::kFree, "slot not freed");
    Fault probe(ring);
    CHK_ASSERT(probe.slot_len(kC2T, 0) == 0, "freed slot kept a length");
    CHK_ASSERT(probe.slot_epoch(kC2T, 0) == 0, "freed slot kept a stamp");
    CHK_ASSERT(ring.acquire(kC2T, 0).is_ok(), "freed slot not reusable");
  }
};

TEST(ChkDoubleBuffer, SweeperVsReleaseExactlyOneWins) {
  const RunResult r = oaf::chk::check<SweeperVsReleaseModel>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_TRUE(r.exhausted);
}

// ---------------------------------------------------------------------------
// Epoch fence: after the region is re-formatted (reconnect), a handle of the
// previous incarnation must be rejected at every producer-side step, while
// the successor's traffic flows; the stale handle counts its fence hits.
struct EpochFenceModel {
  static constexpr u32 kThreads = 2;

  alignas(64) std::array<u8, 2048> mem{};
  Ring stale;
  Ring fresh;

  EpochFenceModel()
      : stale(make_stale(mem)),
        fresh(Ring::attach(mem.data(), mem.size()).take()) {}

  static Ring make_stale(std::array<u8, 2048>& m) {
    // First incarnation: the stale peer attaches and even holds a slot.
    Ring first = Ring::create(m.data(), m.size(), 8, 1).take();
    Ring peer = Ring::attach(m.data(), m.size()).take();
    CHK_ASSERT(peer.acquire(kC2T, 0).is_ok(), "setup acquire failed");
    // Reconnect: the target re-formats the same region -> epoch bump, all
    // slots reset. `peer` is now a zombie of the first epoch. (ring_epoch()
    // reads the live shared header, so sample it before the re-format.)
    const u32 epoch_before = first.ring_epoch();
    Ring second = Ring::create(m.data(), m.size(), 8, 1).take();
    CHK_ASSERT(second.ring_epoch() == epoch_before + 1,
               "re-format did not bump the epoch");
    return peer;
  }

  void thread(u32 t) {
    if (t == 0) {
      // The zombie tries to finish its in-flight I/O into the new ring.
      CHK_ASSERT(!stale.publish(kC2T, 0, 8).is_ok(),
                 "stale-epoch publish was accepted");
      CHK_ASSERT(!stale.acquire(kC2T, 0).is_ok(),
                 "stale-epoch acquire was accepted");
    } else {
      CHK_ASSERT(fresh.acquire(kC2T, 0).is_ok(), "fresh acquire failed");
      CHK_ASSERT(fresh.publish(kC2T, 0, 8).is_ok(), "fresh publish failed");
    }
  }
  void finish() {
    CHK_ASSERT(stale.fence_rejects() == 2, "fence hits not counted");
    auto got = fresh.consume(kC2T, 0);
    CHK_ASSERT(got.is_ok(), "successor traffic blocked");
    CHK_ASSERT(got.value().size() == 8, "successor payload length lost");
  }
};

TEST(ChkDoubleBuffer, EpochBumpFencesStalePeer) {
  const RunResult r = oaf::chk::check<EpochFenceModel>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_TRUE(r.exhausted);
}

// A misbehaving peer forges kReady with a stale (never-stamped) epoch tag:
// consume must reject with kPeerMisbehavior and reclaim — never hand out a
// span — even while a legitimate producer works the other slot.
struct StaleStampModel {
  static constexpr u32 kThreads = 2;

  alignas(64) std::array<u8, 4096> mem{};
  Ring ring;

  StaleStampModel()
      : ring(Ring::create(mem.data(), mem.size(), 8, 2).take()) {
    Fault fault(ring);
    fault.force_state(kC2T, 0, Ring::kReady);  // forged, epoch stamp == 0
  }

  void thread(u32 t) {
    if (t == 0) {
      auto got = ring.consume(kC2T, 0);
      CHK_ASSERT(!got.is_ok(), "forged slot handed out a span");
      CHK_ASSERT(got.status().code() == StatusCode::kPeerMisbehavior,
                 "forged slot not flagged as peer misbehavior");
      CHK_ASSERT(ring.state(kC2T, 0) == Ring::kFree,
                 "forged slot not reclaimed");
    } else {
      CHK_ASSERT(ring.acquire(kC2T, 1).is_ok(), "legit acquire failed");
      CHK_ASSERT(ring.publish(kC2T, 1, 4).is_ok(), "legit publish failed");
    }
  }
  void finish() {
    CHK_ASSERT(ring.fence_rejects() == 1, "stamp reject not counted");
    CHK_ASSERT(ring.consume(kC2T, 1).is_ok(), "legit slot blocked");
  }
};

TEST(ChkDoubleBuffer, ForgedReadyWithStaleStampRejected) {
  const RunResult r = oaf::chk::check<StaleStampModel>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_TRUE(r.exhausted);
}

}  // namespace
}  // namespace oaf::shm

// Meta-tests: prove the checker CATCHES the bug classes the model suite
// relies on it to rule out. Each planted-bug model is a known-broken variant
// of a protocol the production code uses correctly; the checker must fail
// it, and the failure must replay deterministically from the recorded
// choice sequence. A paired correct variant passes, showing the failure is
// the bug, not checker noise.
#include <gtest/gtest.h>

#include "chk/check.h"
#include "chk/policy.h"

namespace oaf::chk {
namespace {

struct Pair {
  u64 a = 0;
  u64 b = 0;
};

// ---------------------------------------------------------------------------
// Seqlock, correct: writer goes odd, release fence, payload, publish-even.
struct GoodSeqlock {
  static constexpr u32 kThreads = 2;

  chk::atomic<u64> seq{0};
  Pair data{};

  void thread(u32 t) {
    if (t == 0) {
      seq.store(1, std::memory_order_relaxed);
      thread_fence(std::memory_order_release);
      Pair p{7, 7};
      CheckedPolicy::torn_copy(data, p);
      seq.store(2, std::memory_order_release);
    } else {
      read_side();
    }
  }
  void read_side() {
    const u64 s1 = seq.load(std::memory_order_acquire);
    if ((s1 & 1) != 0) return;
    const Pair p = CheckedPolicy::torn_read(data);
    thread_fence(std::memory_order_acquire);
    const u64 s2 = seq.load(std::memory_order_relaxed);
    if (s1 == s2) CHK_ASSERT(p.a == p.b, "seqlock accepted a torn read");
  }
};

// Seqlock, planted bug: the payload is written BEFORE the sequence goes
// odd, so a reader overlapping the write sees a stable even sequence and
// accepts a half-written pair.
struct BuggySeqlock : GoodSeqlock {
  void thread(u32 t) {
    if (t == 0) {
      Pair p{7, 7};
      CheckedPolicy::torn_copy(data, p);  // BUG: claim comes after the data
      seq.store(2, std::memory_order_release);
    } else {
      read_side();
    }
  }
};

TEST(ChkMeta, CorrectSeqlockPasses) {
  const RunResult r = check<GoodSeqlock>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_TRUE(r.exhausted);
}

TEST(ChkMeta, BuggySeqlockCaughtAndReplays) {
  const RunResult r = check<BuggySeqlock>();
  ASSERT_FALSE(r.ok) << "checker missed the planted seqlock bug";
  EXPECT_NE(r.failure.find("torn"), std::string::npos) << r.failure;
  EXPECT_FALSE(r.choices.empty());
  EXPECT_NE(r.report().find("replay = {"), std::string::npos);

  // The printed choice sequence IS the schedule: replaying it must hit the
  // identical failure with the identical operation trace.
  const RunResult again = check<BuggySeqlock>({.replay = r.choices});
  ASSERT_FALSE(again.ok);
  EXPECT_EQ(again.failure, r.failure);
  EXPECT_EQ(again.trace, r.trace);
  EXPECT_EQ(again.executions, 1u);
}

// ---------------------------------------------------------------------------
// The trace-ring claim protocol with the post-claim release fence REMOVED —
// the exact bug the checker found in the recorder's first draft (latent on
// x86/TSO, real on weakly-ordered hardware): payload words can become
// visible before the claim, so a snapshot that re-validates seq can accept
// a half-overwritten record.
struct NoClaimFenceRecorder {
  static constexpr u32 kThreads = 2;

  chk::atomic<u64> seq{0};
  Pair slot{};

  NoClaimFenceRecorder() {
    // Record 0 published in setup: slot = {1,1}, seq = 2.
    Pair first{1, 1};
    CheckedPolicy::torn_copy(slot, first);
    seq.store(2, std::memory_order_relaxed);
  }

  void thread(u32 t) {
    if (t == 0) {
      // Overwriting writer, record 1: claim CAS ... but no release fence.
      u64 cur = seq.load(std::memory_order_relaxed);
      if ((cur & 1) != 0 || cur >= 3 ||
          !seq.compare_exchange_strong(cur, 3, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return;
      }
      // BUG: Policy::fence(memory_order_release) belongs here.
      Pair next{2, 2};
      CheckedPolicy::torn_copy(slot, next);
      seq.store(4, std::memory_order_release);
    } else {
      // snapshot() of record 0: seq check, torn read, fence, re-check.
      if (seq.load(std::memory_order_acquire) != 2) return;
      const Pair p = CheckedPolicy::torn_read(slot);
      thread_fence(std::memory_order_acquire);
      if (seq.load(std::memory_order_relaxed) != 2) return;
      CHK_ASSERT(p.a == p.b, "snapshot accepted a torn record");
    }
  }
};

TEST(ChkMeta, MissingClaimFenceCaughtAndReplays) {
  const RunResult r = check<NoClaimFenceRecorder>();
  ASSERT_FALSE(r.ok) << "checker missed the fence-less claim protocol";
  EXPECT_NE(r.failure.find("torn"), std::string::npos) << r.failure;

  const RunResult again = check<NoClaimFenceRecorder>({.replay = r.choices});
  ASSERT_FALSE(again.ok);
  EXPECT_EQ(again.failure, r.failure);
  EXPECT_EQ(again.trace, r.trace);
}

// ---------------------------------------------------------------------------
// One-slot mailbox with the publish store demoted to relaxed: the payload
// handoff loses its happens-before edge and the consumer's read of the
// plain cell is a data race. This is the bug class SpscQueue's release-tail
// store exists to prevent (see spsc_model_test.cpp for the correct queue).
struct MissingReleaseMailbox {
  static constexpr u32 kThreads = 2;

  chk::atomic<u32> full{0};
  chk::var<u64> cell{0};

  void thread(u32 t) {
    if (t == 0) {
      cell = 7;
      full.store(1, std::memory_order_relaxed);  // BUG: must be release
    } else {
      if (full.load(std::memory_order_acquire) == 1) {
        CHK_ASSERT(cell == 7, "consumer saw stale payload");
      }
    }
  }
};

TEST(ChkMeta, MissingReleasePublishCaughtAsDataRace) {
  const RunResult r = check<MissingReleaseMailbox>();
  ASSERT_FALSE(r.ok) << "checker missed the relaxed publish";
  EXPECT_NE(r.failure.find("data race"), std::string::npos) << r.failure;
  EXPECT_FALSE(r.choices.empty());
}

// ---------------------------------------------------------------------------
// Determinism: the same seed explores the same schedules and reports the
// same failing execution, bit for bit; DFS likewise. No wall-clock, no OS
// threads, no address-dependent behavior may leak into exploration.
TEST(ChkMeta, SameSeedSameFailingSchedule) {
  Options opts;
  opts.random_executions = 500;
  opts.seed = 99;
  const RunResult r1 = check<BuggySeqlock>(opts);
  const RunResult r2 = check<BuggySeqlock>(opts);
  ASSERT_FALSE(r1.ok);
  EXPECT_EQ(r1.executions, r2.executions);
  EXPECT_EQ(r1.choices, r2.choices);
  EXPECT_EQ(r1.failure, r2.failure);
  EXPECT_EQ(r1.trace, r2.trace);
}

TEST(ChkMeta, DfsIsDeterministic) {
  const RunResult r1 = check<NoClaimFenceRecorder>();
  const RunResult r2 = check<NoClaimFenceRecorder>();
  ASSERT_FALSE(r1.ok);
  EXPECT_EQ(r1.executions, r2.executions);
  EXPECT_EQ(r1.choices, r2.choices);
  EXPECT_EQ(r1.trace, r2.trace);
}

}  // namespace
}  // namespace oaf::chk

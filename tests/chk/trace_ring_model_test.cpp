// Model-checked invariants of the telemetry trace ring — the production
// BasicTraceRecorder over chk::CheckedPolicy. The ring's contract is that
// snapshot() may run concurrently with record() and must never return a torn
// record: every event it yields is bytewise one that some writer actually
// recorded. The per-slot seqlock (claim CAS -> release fence -> payload ->
// publish store) is exactly the protocol under test; the payload copy goes
// through Policy::torn_copy / torn_read, so the checker models stale and
// interleaved word reads the way weakly-ordered hardware would produce them.
//
// REGRESSION anchor: without the release fence after the claim CAS the
// payload words can become visible before the claim, and a snapshot that
// re-validates seq can still accept a half-overwritten record. The planted
// fence-less variant in chk_meta_test.cpp fails; the real recorder here must
// pass exhaustively.
#include <gtest/gtest.h>

#include "chk/check.h"
#include "chk/policy.h"
#include "telemetry/trace.h"

namespace oaf::telemetry {
namespace {

using oaf::chk::RunResult;
using Recorder = BasicTraceRecorder<oaf::chk::CheckedPolicy>;

// Two fully distinct template events: every word differs, so any mix of A
// and B words in a snapshotted record is detectable field-by-field.
TraceEvent event_a() {
  TraceEvent ev;
  ev.name = "alpha";
  ev.cat = "io";
  ev.phase = 'b';
  ev.track = 1;
  ev.ts_ns = 1111;
  ev.dur_ns = 11;
  ev.id = 0xAAAA;
  ev.arg_name = "qd";
  ev.arg = 17;
  return ev;
}
TraceEvent event_b() {
  TraceEvent ev;
  ev.name = "bravo";
  ev.cat = "net";
  ev.phase = 'e';
  ev.track = 2;
  ev.ts_ns = 2222;
  ev.dur_ns = 22;
  ev.id = 0xBBBB;
  ev.arg_name = "lat";
  ev.arg = 34;
  return ev;
}
bool same_event(const TraceEvent& x, const TraceEvent& y) {
  return x.name == y.name && x.cat == y.cat && x.phase == y.phase &&
         x.track == y.track && x.ts_ns == y.ts_ns && x.dur_ns == y.dur_ns &&
         x.id == y.id && x.arg_name == y.arg_name && x.arg == y.arg;
}
void assert_untorn(const TraceEvent& ev) {
  CHK_ASSERT(same_event(ev, event_a()) || same_event(ev, event_b()),
             "snapshot returned a torn trace record");
}

// Writer overwrites the ring's single (pre-filled) slot while a reader
// snapshots: the reader gets old record, new record, or nothing — never a
// mix. Exhaustive: the 9-word payload copy is the interesting interleaving
// surface and two threads keep it tractable.
struct OverwriteVsSnapshotModel {
  static constexpr u32 kThreads = 2;

  Recorder rec{1};  // capacity 1: every record overwrites the same slot

  OverwriteVsSnapshotModel() {
    rec.set_enabled(true);
    rec.record(event_a());  // slot published with A before the race starts
  }

  void thread(u32 t) {
    if (t == 0) {
      rec.record(event_b());
    } else {
      for (const TraceEvent& ev : rec.snapshot()) assert_untorn(ev);
    }
  }
  void finish() {
    // Quiescent: the winning writer's record (or the original) is intact.
    const std::vector<TraceEvent> events = rec.snapshot();
    CHK_ASSERT(events.size() == 1, "quiescent snapshot lost the record");
    assert_untorn(events[0]);
    CHK_ASSERT(rec.dropped() == 1, "overwrite not counted as dropped");
  }
};

TEST(ChkTraceRing, OverwriteVsSnapshotNeverTorn) {
  const RunResult r = oaf::chk::check<OverwriteVsSnapshotModel>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_TRUE(r.exhausted);
}

// Two writers race the same slot (head collision at wrap) while a reader
// snapshots. The slow loser must drop wait-free (collision_drops), never
// scribble over the winner. Three threads x 9-word payloads: sampled with
// seeded random schedules instead of exhaustive DFS.
struct WriterRaceModel {
  static constexpr u32 kThreads = 3;

  Recorder rec{1};

  WriterRaceModel() { rec.set_enabled(true); }

  void thread(u32 t) {
    if (t == 0) {
      rec.record(event_a());
    } else if (t == 1) {
      rec.record(event_b());
    } else {
      for (const TraceEvent& ev : rec.snapshot()) assert_untorn(ev);
    }
  }
  void finish() {
    const std::vector<TraceEvent> events = rec.snapshot();
    for (const TraceEvent& ev : events) assert_untorn(ev);
    const u64 kept = events.size();
    CHK_ASSERT(kept <= 1, "capacity-1 ring retained two records");
    CHK_ASSERT(rec.collision_drops() <= 1, "both writers collided");
    // If nobody collided, both writers published and the newest record must
    // be retained; a collision may additionally have emptied the ring.
    CHK_ASSERT(kept + rec.collision_drops() >= 1,
               "trace-ring accounting lost both records");
    CHK_ASSERT(rec.dropped() == 1, "positional drop count wrong");
  }
};

TEST(ChkTraceRing, WriterCollisionDropsWaitFree) {
  oaf::chk::Options opts;
  opts.random_executions = 4000;
  opts.seed = 20260807;
  const RunResult r = oaf::chk::check<WriterRaceModel>(opts);
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_EQ(r.executions, 4000u);
}

}  // namespace
}  // namespace oaf::telemetry

// Model-checked invariants of shm::SpscQueue — the production SPSC ring the
// completion path uses — instantiated over chk::CheckedPolicy: FIFO order,
// no item lost or duplicated, and the element handoff itself race-free (the
// queue's elements are Policy::var<T>, so the checker's race detector
// watches every payload read/write).
#include <gtest/gtest.h>

#include "chk/check.h"
#include "chk/policy.h"
#include "shm/spsc_queue.h"

namespace oaf::shm {
namespace {

using oaf::chk::RunResult;
using Queue = SpscQueue<u64, oaf::chk::CheckedPolicy>;

// One producer pushing 1,2 (bounded retries) against one consumer popping
// with bounded retries on a one-usable-slot ring: everything popped must be
// the exact prefix 1,2 in order, and pushed == popped + still-queued.
struct SpscFifoModel {
  static constexpr u32 kThreads = 2;

  Queue q{2};  // rounds to capacity 2 -> one usable slot: forces full/empty
  u32 pushed = 0;
  u64 got[4] = {};
  u32 npop = 0;

  void thread(u32 t) {
    if (t == 0) {
      for (u64 v = 1; v <= 2; ++v) {
        bool ok = false;
        for (int attempt = 0; attempt < 2 && !ok; ++attempt) ok = q.push(v);
        if (!ok) break;  // ring still full: later values were never pushed
        pushed++;
      }
    } else {
      for (int attempt = 0; attempt < 4; ++attempt) {
        u64 v = 0;
        if (q.pop(v)) got[npop++] = v;
      }
    }
  }
  void finish() {
    CHK_ASSERT(pushed >= 1, "push failed on an empty ring");
    for (u32 i = 0; i < npop; ++i) {
      CHK_ASSERT(got[i] == i + 1, "FIFO order violated or item duplicated");
    }
    CHK_ASSERT(npop <= pushed, "popped an item that was never pushed");
    // Drain what the consumer's bounded retries missed: nothing lost.
    u64 v = 0;
    u32 left = 0;
    while (q.pop(v)) {
      CHK_ASSERT(v == npop + left + 1, "residual item out of order");
      left++;
    }
    CHK_ASSERT(npop + left == pushed, "items lost in flight");
    CHK_ASSERT(q.size_approx() == 0, "size_approx nonzero after drain");
  }
};

TEST(ChkSpsc, FifoNoLossNoDuplication) {
  const RunResult r = oaf::chk::check<SpscFifoModel>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_TRUE(r.exhausted);
}

// The payload visibility edge: the consumer dereferences a popped value that
// the producer built before push(). With the queue's release-tail /
// acquire-tail pairing the chk::var read is race-free; a missing release
// would be reported as a data race (see chk_meta_test.cpp for the planted
// broken variant).
struct SpscPayloadModel {
  static constexpr u32 kThreads = 2;

  Queue q{2};
  oaf::chk::var<u64> cell{0};

  void thread(u32 t) {
    if (t == 0) {
      cell = 7;  // build the "I/O buffer" ...
      CHK_ASSERT(q.push(1), "push failed on an empty ring");  // ... publish
    } else {
      u64 v = 0;
      for (int attempt = 0; attempt < 2; ++attempt) {
        if (!q.pop(v)) continue;
        CHK_ASSERT(v == 1, "wrong token popped");
        CHK_ASSERT(cell == 7, "payload not visible after pop");
        return;
      }
    }
  }
};

TEST(ChkSpsc, PopCarriesPayloadHappensBefore) {
  const RunResult r = oaf::chk::check<SpscPayloadModel>();
  EXPECT_TRUE(r.ok) << r.report();
  EXPECT_TRUE(r.exhausted);
}

}  // namespace
}  // namespace oaf::shm

#include "shm/region.h"

#include <gtest/gtest.h>

#include <cstring>

namespace oaf::shm {
namespace {

std::string unique_name(const char* tag) {
  static int counter = 0;
  return std::string("/oaf_test_") + tag + "_" + std::to_string(getpid()) + "_" +
         std::to_string(counter++);
}

TEST(ShmRegionTest, CreateMapAndWrite) {
  const auto name = unique_name("basic");
  auto r = ShmRegion::create(name, 4096);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  auto region = std::move(r).take();
  EXPECT_TRUE(region.valid());
  EXPECT_EQ(region.size(), 4096u);
  std::memset(region.data(), 0xAB, 4096);
  EXPECT_EQ(region.bytes()[100], 0xAB);
}

TEST(ShmRegionTest, CreatedRegionIsZeroFilled) {
  const auto name = unique_name("zero");
  auto region = ShmRegion::create(name, 8192).take();
  for (u64 i = 0; i < 8192; i += 512) {
    EXPECT_EQ(region.bytes()[i], 0) << "offset " << i;
  }
}

TEST(ShmRegionTest, AttachSeesCreatorWrites) {
  const auto name = unique_name("attach");
  auto creator = ShmRegion::create(name, 4096).take();
  creator.bytes()[7] = 0x5A;

  auto attached_res = ShmRegion::attach(name);
  ASSERT_TRUE(attached_res.is_ok());
  auto attached = std::move(attached_res).take();
  EXPECT_EQ(attached.size(), 4096u);
  EXPECT_EQ(attached.bytes()[7], 0x5A);

  // Writes propagate both ways — same physical pages.
  attached.bytes()[9] = 0x77;
  EXPECT_EQ(creator.bytes()[9], 0x77);
}

TEST(ShmRegionTest, CreateDuplicateFails) {
  const auto name = unique_name("dup");
  auto first = ShmRegion::create(name, 4096).take();
  auto second = ShmRegion::create(name, 4096);
  EXPECT_FALSE(second.is_ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists);
}

TEST(ShmRegionTest, AttachMissingFails) {
  auto r = ShmRegion::attach(unique_name("missing"));
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ShmRegionTest, CreatorUnlinksOnDestruction) {
  const auto name = unique_name("unlink");
  {
    auto region = ShmRegion::create(name, 4096).take();
    EXPECT_TRUE(region.valid());
  }
  EXPECT_FALSE(ShmRegion::attach(name).is_ok());
}

TEST(ShmRegionTest, InvalidArgumentsRejected) {
  EXPECT_FALSE(ShmRegion::create("", 4096).is_ok());
  EXPECT_FALSE(ShmRegion::create("no-leading-slash", 4096).is_ok());
  EXPECT_FALSE(ShmRegion::create(unique_name("zero_size"), 0).is_ok());
  EXPECT_FALSE(ShmRegion::anonymous(0).is_ok());
}

TEST(ShmRegionTest, AnonymousRegionUsable) {
  auto r = ShmRegion::anonymous(1 << 20);
  ASSERT_TRUE(r.is_ok());
  auto region = std::move(r).take();
  EXPECT_EQ(region.size(), 1u << 20);
  region.bytes()[123] = 9;
  EXPECT_EQ(region.bytes()[123], 9);
  EXPECT_TRUE(region.name().empty());
}

TEST(ShmRegionTest, MoveTransfersOwnership) {
  const auto name = unique_name("move");
  auto a = ShmRegion::create(name, 4096).take();
  u8* addr = a.bytes();
  ShmRegion b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.bytes(), addr);
  EXPECT_EQ(b.name(), name);
}

}  // namespace
}  // namespace oaf::shm

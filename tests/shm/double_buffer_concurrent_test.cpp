// Cross-thread stress of the lock-free double buffer: a producer thread and
// a consumer thread per direction hammer a real shared mapping. Verifies the
// memory-ordering contract (consumer sees complete payloads) and that the
// two directions never interfere — the property the paper's §4.4.1 design
// depends on for mixed read/write workloads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "shm/double_buffer.h"
#include "shm/region.h"

namespace oaf::shm {
namespace {

struct Payload {
  u64 seq;
  u64 checksum;
  u8 body[240];
};

u64 body_sum(const u8* body, size_t n) {
  u64 sum = 0;
  for (size_t i = 0; i < n; ++i) sum = sum * 131 + body[i];
  return sum;
}

void produce(DoubleBufferRing& ring, Direction dir, u64 count) {
  for (u64 seq = 0; seq < count; ++seq) {
    const u32 slot = ring.slot_for(seq);
    // Spin until the slot frees (consumer may lag).
    while (!ring.acquire(dir, slot)) {
      std::this_thread::yield();
    }
    auto buf = ring.slot_data(dir, slot);
    auto* p = reinterpret_cast<Payload*>(buf.data());
    p->seq = seq;
    for (size_t i = 0; i < sizeof(p->body); ++i) {
      p->body[i] = static_cast<u8>(seq * 7 + i);
    }
    p->checksum = body_sum(p->body, sizeof(p->body));
    ASSERT_TRUE(ring.publish(dir, slot, sizeof(Payload)));
  }
}

void consume(DoubleBufferRing& ring, Direction dir, u64 count,
             std::atomic<u64>& errors) {
  for (u64 seq = 0; seq < count; ++seq) {
    const u32 slot = ring.slot_for(seq);
    Result<std::span<const u8>> view =
        make_error(StatusCode::kUnavailable);
    do {
      view = ring.consume(dir, slot);
      if (!view.is_ok()) std::this_thread::yield();
    } while (!view.is_ok());
    const auto* p = reinterpret_cast<const Payload*>(view.value().data());
    if (p->seq != seq) errors.fetch_add(1, std::memory_order_relaxed);
    if (p->checksum != body_sum(p->body, sizeof(p->body))) {
      errors.fetch_add(1, std::memory_order_relaxed);
    }
    ASSERT_TRUE(ring.release(dir, slot));
  }
}

class ConcurrentRingTest : public ::testing::TestWithParam<u32> {};

TEST_P(ConcurrentRingTest, SingleDirectionOrderedDelivery) {
  const u32 slots = GetParam();
  const u64 need = DoubleBufferRing::required_bytes(sizeof(Payload), slots);
  auto region = ShmRegion::anonymous(need).take();
  auto ring =
      DoubleBufferRing::create(region.data(), region.size(), sizeof(Payload), slots)
          .take();
  // Consumer gets its own attach (peer mapping view).
  auto peer = DoubleBufferRing::attach(region.data(), region.size()).take();

  constexpr u64 kCount = 20000;
  std::atomic<u64> errors{0};
  std::thread producer(
      [&] { produce(ring, Direction::kClientToTarget, kCount); });
  std::thread consumer(
      [&] { consume(peer, Direction::kClientToTarget, kCount, errors); });
  producer.join();
  consumer.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(ring.in_flight(Direction::kClientToTarget), 0u);
}

TEST_P(ConcurrentRingTest, BidirectionalFullDuplex) {
  const u32 slots = GetParam();
  const u64 need = DoubleBufferRing::required_bytes(sizeof(Payload), slots);
  auto region = ShmRegion::anonymous(need).take();
  auto client =
      DoubleBufferRing::create(region.data(), region.size(), sizeof(Payload), slots)
          .take();
  auto target = DoubleBufferRing::attach(region.data(), region.size()).take();

  constexpr u64 kCount = 10000;
  std::atomic<u64> errors{0};
  // Client produces C2T and consumes T2C; target does the opposite — all
  // four roles concurrently, as in a mixed read/write workload.
  std::thread t1([&] { produce(client, Direction::kClientToTarget, kCount); });
  std::thread t2([&] { consume(target, Direction::kClientToTarget, kCount, errors); });
  std::thread t3([&] { produce(target, Direction::kTargetToClient, kCount); });
  std::thread t4([&] { consume(client, Direction::kTargetToClient, kCount, errors); });
  t1.join();
  t2.join();
  t3.join();
  t4.join();
  EXPECT_EQ(errors.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(SlotCounts, ConcurrentRingTest,
                         ::testing::Values(1u, 2u, 4u, 16u, 128u));

TEST(ConcurrentRingPosixTest, CrossMappingVisibility) {
  // Same stress through two distinct POSIX mappings of one named region —
  // the exact IVSHMEM-style configuration.
  const std::string name =
      "/oaf_test_ring_" + std::to_string(getpid());
  const u64 need = DoubleBufferRing::required_bytes(sizeof(Payload), 8);
  auto creator_region = ShmRegion::create(name, need).take();
  auto attach_region = ShmRegion::attach(name).take();
  ASSERT_NE(creator_region.data(), attach_region.data());  // distinct mappings

  auto ring = DoubleBufferRing::create(creator_region.data(),
                                       creator_region.size(), sizeof(Payload), 8)
                  .take();
  auto peer =
      DoubleBufferRing::attach(attach_region.data(), attach_region.size()).take();

  constexpr u64 kCount = 20000;
  std::atomic<u64> errors{0};
  std::thread producer([&] { produce(ring, Direction::kClientToTarget, kCount); });
  std::thread consumer(
      [&] { consume(peer, Direction::kClientToTarget, kCount, errors); });
  producer.join();
  consumer.join();
  EXPECT_EQ(errors.load(), 0u);
}

}  // namespace
}  // namespace oaf::shm

// Shm-ring fencing against a misbehaving peer.
//
// The slot control words (state, len, epoch) live in shared memory, so a
// buggy or malicious co-located peer can write anything into them. These
// tests drive ShmFaultRing — the shm fault injector — to prove consume()
// answers every forgery with kPeerMisbehavior and a reclaimed slot, never
// an out-of-bounds span, and that force_release() gives the orphan sweeper
// a safe claim on slots a dead peer left mid-transfer.
#include "shm/fault_ring.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "shm/double_buffer.h"
#include "shm/region.h"

namespace oaf::shm {
namespace {

class FaultRingTest : public ::testing::Test {
 protected:
  static constexpr u64 kSlotBytes = 4096;
  static constexpr u32 kSlots = 8;

  void SetUp() override {
    const u64 need = DoubleBufferRing::required_bytes(kSlotBytes, kSlots);
    region_ = ShmRegion::anonymous(need).take();
    ring_ = DoubleBufferRing::create(region_.data(), region_.size(), kSlotBytes,
                                     kSlots)
                .take();
  }

  /// Publish `len` bytes of 0x5A into slot 0 the legitimate way.
  void publish_slot0(u64 len) {
    ASSERT_TRUE(ring_.acquire(kDir, 0));
    auto buf = ring_.slot_data(kDir, 0);
    std::memset(buf.data(), 0x5A, len);
    ASSERT_TRUE(ring_.publish(kDir, 0, len));
  }

  static constexpr Direction kDir = Direction::kClientToTarget;
  ShmRegion region_;
  DoubleBufferRing ring_;
};

TEST_F(FaultRingTest, CorruptLenIsRejectedAndSlotReclaimed) {
  publish_slot0(100);
  ShmFaultRing fault(ring_);
  fault.corrupt_len(kDir, 0, kSlotBytes + 1);  // one past the edge

  auto view = ring_.consume(kDir, 0);
  ASSERT_FALSE(view.is_ok());
  EXPECT_EQ(view.status().code(), StatusCode::kPeerMisbehavior);
  // The violation reclaims the slot so the ring stays usable post-demotion.
  EXPECT_EQ(ring_.state(kDir, 0), DoubleBufferRing::kFree);

  // The reclaimed slot supports a full honest cycle again.
  publish_slot0(64);
  auto ok = ring_.consume(kDir, 0);
  ASSERT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.value().size(), 64u);
  ASSERT_TRUE(ring_.release(kDir, 0));
}

TEST_F(FaultRingTest, AbsurdLenNeverYieldsOutOfBoundsSpan) {
  publish_slot0(1);
  ShmFaultRing fault(ring_);
  fault.corrupt_len(kDir, 0, ~0ULL);  // 2^64-1: would index far off the region

  auto view = ring_.consume(kDir, 0);
  ASSERT_FALSE(view.is_ok());
  EXPECT_EQ(view.status().code(), StatusCode::kPeerMisbehavior);
  EXPECT_EQ(ring_.state(kDir, 0), DoubleBufferRing::kFree);
}

TEST_F(FaultRingTest, ExactSlotSizeLenIsStillLegal) {
  // Boundary: len == slot_size is the largest honest payload, not a forgery.
  publish_slot0(kSlotBytes);
  auto view = ring_.consume(kDir, 0);
  ASSERT_TRUE(view.is_ok());
  EXPECT_EQ(view.value().size(), kSlotBytes);
  ASSERT_TRUE(ring_.release(kDir, 0));
}

TEST_F(FaultRingTest, StaleEpochStampIsRejected) {
  publish_slot0(100);
  ShmFaultRing fault(ring_);
  ASSERT_EQ(fault.slot_epoch(kDir, 0), ring_.ring_epoch());
  fault.stamp_epoch(kDir, 0, ring_.ring_epoch() + 7);  // no such incarnation

  auto view = ring_.consume(kDir, 0);
  ASSERT_FALSE(view.is_ok());
  EXPECT_EQ(view.status().code(), StatusCode::kPeerMisbehavior);
  EXPECT_EQ(ring_.state(kDir, 0), DoubleBufferRing::kFree);
}

TEST_F(FaultRingTest, NeverStampedEpochIsRejected) {
  // A peer that flips state to kReady without ever publishing leaves the
  // reserved epoch 0 behind — the consumer must not trust the stale len.
  ShmFaultRing fault(ring_);
  fault.corrupt_len(kDir, 3, 100);
  fault.force_state(kDir, 3, DoubleBufferRing::kReady);

  auto view = ring_.consume(kDir, 3);
  ASSERT_FALSE(view.is_ok());
  EXPECT_EQ(view.status().code(), StatusCode::kPeerMisbehavior);
  EXPECT_EQ(ring_.state(kDir, 3), DoubleBufferRing::kFree);
}

TEST_F(FaultRingTest, ReformatBumpsEpochAndFencesStaleHandle) {
  const u32 old_epoch = ring_.ring_epoch();
  DoubleBufferRing stale = std::move(ring_);

  // Reconnect: the region is re-formatted in place (same memory, new life).
  ring_ = DoubleBufferRing::create(region_.data(), region_.size(), kSlotBytes,
                                   kSlots)
              .take();
  EXPECT_EQ(ring_.ring_epoch(), old_epoch + 1);
  EXPECT_EQ(stale.attached_epoch(), old_epoch);

  // The stale handle of the dead incarnation can no longer touch slots.
  auto st = stale.acquire(kDir, 0);
  ASSERT_FALSE(st);
  EXPECT_EQ(st.code(), StatusCode::kPeerMisbehavior);

  // The new incarnation is fully functional.
  ASSERT_TRUE(ring_.acquire(kDir, 0));
  ASSERT_TRUE(ring_.publish(kDir, 0, 10));
  ASSERT_TRUE(ring_.consume(kDir, 0).is_ok());
  ASSERT_TRUE(ring_.release(kDir, 0));
}

TEST_F(FaultRingTest, PublishAfterReformatIsFenced) {
  // The stale producer acquired before the re-format and publishes after:
  // the payload must not be injected into the new incarnation.
  DoubleBufferRing stale =
      DoubleBufferRing::attach(region_.data(), region_.size()).take();
  ASSERT_TRUE(stale.acquire(kDir, 2));

  ring_ = DoubleBufferRing::create(region_.data(), region_.size(), kSlotBytes,
                                   kSlots)
              .take();
  auto st = stale.publish(kDir, 2, 100);
  ASSERT_FALSE(st);
  EXPECT_EQ(st.code(), StatusCode::kPeerMisbehavior);
  EXPECT_NE(ring_.state(kDir, 2), DoubleBufferRing::kReady);
}

TEST_F(FaultRingTest, FrozenWriterIsInvisibleToConsumeButForceReleasable) {
  ShmFaultRing fault(ring_);
  fault.freeze_writing(kDir, 5);  // peer acquired, then died
  EXPECT_EQ(ring_.state(kDir, 5), DoubleBufferRing::kWriting);
  EXPECT_EQ(ring_.in_flight(kDir), 1u);

  // Not ready: a consumer never sees a half-written slot.
  EXPECT_FALSE(ring_.consume(kDir, 5).is_ok());

  // Only the sweeper's force_release may claim it — and afterwards the slot
  // serves honest traffic again.
  ASSERT_TRUE(ring_.force_release(kDir, 5));
  EXPECT_EQ(ring_.state(kDir, 5), DoubleBufferRing::kFree);
  EXPECT_EQ(ring_.in_flight(kDir), 0u);
  ASSERT_TRUE(ring_.acquire(kDir, 5));
  ASSERT_TRUE(ring_.publish(kDir, 5, 1));
  ASSERT_TRUE(ring_.consume(kDir, 5).is_ok());
  ASSERT_TRUE(ring_.release(kDir, 5));
}

TEST_F(FaultRingTest, ForceReleaseRefusesSlotsWithALegitimateOwner) {
  // kFree and kReady have well-defined owners (nobody / the consumer):
  // force_release must not steal them.
  EXPECT_FALSE(ring_.force_release(kDir, 0));  // kFree
  publish_slot0(10);
  EXPECT_FALSE(ring_.force_release(kDir, 0));  // kReady
  ASSERT_TRUE(ring_.discard(kDir, 0));
}

TEST_F(FaultRingTest, DiscardDrainsParkedPayload) {
  publish_slot0(128);
  ASSERT_TRUE(ring_.discard(kDir, 0));
  EXPECT_EQ(ring_.state(kDir, 0), DoubleBufferRing::kFree);
  // Discard of a non-ready slot is an error, not a state change.
  EXPECT_FALSE(ring_.discard(kDir, 0));
}

TEST_F(FaultRingTest, GeometryOverflowIsRejected) {
  // required_bytes must refuse products that wrap u64 — a forged header
  // with such geometry would otherwise pass the region-size check.
  EXPECT_EQ(DoubleBufferRing::required_bytes(~0ULL / 2, 1000), 0u);
  EXPECT_EQ(DoubleBufferRing::required_bytes(1ULL << 60, 1U << 10), 0u);
  EXPECT_FALSE(
      DoubleBufferRing::create(region_.data(), region_.size(), ~0ULL / 2, 1000)
          .is_ok());
}

TEST_F(FaultRingTest, AttachRejectsForgedGeometry) {
  // Forge the header's slot_size in place: total_bytes no longer matches
  // the recomputed need, so attach must refuse before touching slot memory.
  auto* header = reinterpret_cast<u64*>(region_.data());
  header[2] = ~0ULL / 2;  // slot_size field (magic, version+count, slot_size)
  auto res = DoubleBufferRing::attach(region_.data(), region_.size());
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), StatusCode::kDataLoss);
}

TEST_F(FaultRingTest, ConcurrentConsumerSurvivesPhasedCorruption) {
  // A producer publishes honest payloads while a consumer drains them; every
  // 3rd payload is corrupted *between* publish and consume (phased — the
  // injector never races the owner of a slot, which keeps TSan honest).
  // Property: the consumer sees only in-bounds spans or kPeerMisbehavior,
  // and every slot always returns to kFree.
  constexpr int kRounds = 300;
  ShmFaultRing fault(ring_);
  int rejected = 0;
  int accepted = 0;
  for (int i = 0; i < kRounds; ++i) {
    const u32 slot = static_cast<u32>(i) % kSlots;
    ASSERT_TRUE(ring_.acquire(kDir, slot));
    ASSERT_TRUE(ring_.publish(kDir, slot, 256));
    if (i % 3 == 0) {
      fault.corrupt_len(kDir, slot, kSlotBytes + 1 + static_cast<u64>(i));
    }
    auto view = ring_.consume(kDir, slot);
    if (view.is_ok()) {
      ASSERT_LE(view.value().size(), kSlotBytes);
      accepted++;
      ASSERT_TRUE(ring_.release(kDir, slot));
    } else {
      EXPECT_EQ(view.status().code(), StatusCode::kPeerMisbehavior);
      rejected++;
    }
    ASSERT_EQ(ring_.state(kDir, slot), DoubleBufferRing::kFree);
  }
  EXPECT_EQ(accepted + rejected, kRounds);
  EXPECT_EQ(rejected, kRounds / 3);
}

TEST_F(FaultRingTest, TwoThreadHandoffWithStaleEpochRejection) {
  // Real two-thread handoff through a second attached handle: all
  // cross-thread communication rides the slot state words, so this doubles
  // as a TSan exercise of the acquire/release fences the fencing relies on.
  DoubleBufferRing peer =
      DoubleBufferRing::attach(region_.data(), region_.size()).take();
  constexpr int kPerSlot = 50;
  std::thread producer([&] {
    for (int i = 0; i < kPerSlot; ++i) {
      while (!peer.acquire(kDir, 0)) {
      }
      auto buf = peer.slot_data(kDir, 0);
      buf[0] = static_cast<u8>(i);
      ASSERT_TRUE(peer.publish(kDir, 0, 1));
    }
  });
  int drained = 0;
  while (drained < kPerSlot) {
    auto view = ring_.consume(kDir, 0);
    if (!view.is_ok()) continue;
    EXPECT_EQ(view.value().size(), 1u);
    EXPECT_EQ(view.value()[0], static_cast<u8>(drained));
    drained++;
    ASSERT_TRUE(ring_.release(kDir, 0));
  }
  producer.join();
  EXPECT_EQ(drained, kPerSlot);
}

}  // namespace
}  // namespace oaf::shm

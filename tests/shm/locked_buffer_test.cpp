#include "shm/locked_buffer.h"

#include <gtest/gtest.h>

#include <thread>

#include "shm/region.h"

namespace oaf::shm {
namespace {

TEST(LockedBufferTest, PutTakeRoundtrip) {
  auto region =
      ShmRegion::anonymous(LockedSharedBuffer::required_bytes(4096)).take();
  auto buf = LockedSharedBuffer::create(region.data(), region.size(), 4096).take();

  std::vector<u8> data(100, 0x3C);
  ASSERT_TRUE(buf.put(data));
  EXPECT_TRUE(buf.has_payload());

  std::vector<u8> out(4096);
  auto got = buf.take(out);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), 100u);
  EXPECT_EQ(out[0], 0x3C);
  EXPECT_FALSE(buf.has_payload());
}

TEST(LockedBufferTest, TakeEmptyFails) {
  auto region =
      ShmRegion::anonymous(LockedSharedBuffer::required_bytes(1024)).take();
  auto buf = LockedSharedBuffer::create(region.data(), region.size(), 1024).take();
  std::vector<u8> out(1024);
  EXPECT_FALSE(buf.take(out).is_ok());
}

TEST(LockedBufferTest, OversizePayloadRejected) {
  auto region =
      ShmRegion::anonymous(LockedSharedBuffer::required_bytes(64)).take();
  auto buf = LockedSharedBuffer::create(region.data(), region.size(), 64).take();
  std::vector<u8> big(65);
  EXPECT_FALSE(buf.put(big));
}

TEST(LockedBufferTest, SmallOutputBufferRejected) {
  auto region =
      ShmRegion::anonymous(LockedSharedBuffer::required_bytes(1024)).take();
  auto buf = LockedSharedBuffer::create(region.data(), region.size(), 1024).take();
  std::vector<u8> data(100);
  ASSERT_TRUE(buf.put(data));
  std::vector<u8> tiny(50);
  EXPECT_FALSE(buf.take(tiny).is_ok());
  // Payload still staged after the failed take.
  EXPECT_TRUE(buf.has_payload());
}

TEST(LockedBufferTest, CreateValidation) {
  auto region = ShmRegion::anonymous(4096).take();
  EXPECT_FALSE(
      LockedSharedBuffer::create(nullptr, 4096, 1024).is_ok());
  EXPECT_FALSE(LockedSharedBuffer::create(region.data(), 100, 1024).is_ok());
  EXPECT_FALSE(LockedSharedBuffer::create(region.data(), 4096, 0).is_ok());
}

TEST(LockedBufferTest, ConcurrentProducerConsumerIntegrity) {
  // The naive design serializes: producer spins while the consumer drains.
  // Verify sequence integrity under real threads (what the paper's
  // SHM-baseline actually guaranteed, at the cost of concurrency).
  auto region =
      ShmRegion::anonymous(LockedSharedBuffer::required_bytes(256)).take();
  auto producer_view =
      LockedSharedBuffer::create(region.data(), region.size(), 256).take();
  auto consumer_view = producer_view;  // same control block via copy of handles

  constexpr u64 kCount = 5000;
  std::atomic<u64> errors{0};
  std::thread producer([&] {
    for (u64 i = 0; i < kCount; ++i) {
      u8 msg[8];
      for (int b = 0; b < 8; ++b) msg[b] = static_cast<u8>(i >> (8 * b));
      ASSERT_TRUE(producer_view.put(std::span<const u8>(msg, 8)));
    }
  });
  std::thread consumer([&] {
    for (u64 i = 0; i < kCount; ++i) {
      std::vector<u8> out(256);
      Result<u64> got = make_error(StatusCode::kUnavailable);
      do {
        got = consumer_view.take(out);
        if (!got.is_ok()) std::this_thread::yield();
      } while (!got.is_ok());
      u64 val = 0;
      for (int b = 0; b < 8; ++b) val |= static_cast<u64>(out[b]) << (8 * b);
      if (val != i) errors.fetch_add(1);
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(errors.load(), 0u);
}

}  // namespace
}  // namespace oaf::shm

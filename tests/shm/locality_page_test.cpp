#include "shm/locality_page.h"

#include <gtest/gtest.h>

#include <thread>

#include "shm/region.h"

namespace oaf::shm {
namespace {

TEST(LocalityPageTest, FreshPageHasGenerationZero) {
  auto region = ShmRegion::anonymous(LocalityPage::kBytes).take();
  LocalityPage page(region.data(), /*init=*/true);
  EXPECT_EQ(page.generation(), 0u);
  EXPECT_EQ(page.region_name(), "");
}

TEST(LocalityPageTest, AnnouncePublishesTokenAndName) {
  auto region = ShmRegion::anonymous(LocalityPage::kBytes).take();
  LocalityPage helper(region.data(), /*init=*/true);
  LocalityPage poller(region.data());

  helper.announce(0xABCD, "conn-42");
  EXPECT_EQ(poller.generation(), 1u);
  EXPECT_EQ(poller.node_token(), 0xABCDu);
  EXPECT_EQ(poller.region_name(), "conn-42");
}

TEST(LocalityPageTest, GenerationIncrementsPerHotplug) {
  auto region = ShmRegion::anonymous(LocalityPage::kBytes).take();
  LocalityPage page(region.data(), /*init=*/true);
  for (u64 i = 1; i <= 5; ++i) {
    page.announce(i, "r" + std::to_string(i));
    EXPECT_EQ(page.generation(), i);
  }
  EXPECT_EQ(page.region_name(), "r5");
}

TEST(LocalityPageTest, LongNamesTruncateSafely) {
  auto region = ShmRegion::anonymous(LocalityPage::kBytes).take();
  LocalityPage page(region.data(), /*init=*/true);
  const std::string longname(500, 'x');
  page.announce(1, longname);
  const auto got = page.region_name();
  EXPECT_EQ(got.size(), LocalityPage::kNameCapacity - 1);
  EXPECT_EQ(got, std::string(LocalityPage::kNameCapacity - 1, 'x'));
}

TEST(LocalityPageTest, PollerThreadObservesAnnouncement) {
  // The paper's CM polls the flag periodically; emulate with a real thread.
  auto region = ShmRegion::anonymous(LocalityPage::kBytes).take();
  LocalityPage helper(region.data(), /*init=*/true);

  std::atomic<bool> seen{false};
  std::thread poller([&] {
    LocalityPage page(region.data());
    while (page.generation() == 0) std::this_thread::yield();
    seen = page.region_name() == "hotplugged";
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  helper.announce(7, "hotplugged");
  poller.join();
  EXPECT_TRUE(seen.load());
}

}  // namespace
}  // namespace oaf::shm

#include "shm/spsc_queue.h"

#include <gtest/gtest.h>

#include <thread>

namespace oaf::shm {
namespace {

TEST(SpscQueueTest, PushPopSingleThread) {
  SpscQueue<u64> q(8);
  EXPECT_TRUE(q.empty());
  for (u64 i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size_approx(), 5u);
  u64 v = 0;
  for (u64 i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop(v));
}

TEST(SpscQueueTest, FillsToCapacity) {
  SpscQueue<u32> q(8);  // usable = capacity - 1 = 7
  u32 pushed = 0;
  while (q.push(pushed)) pushed++;
  EXPECT_EQ(pushed, q.capacity());
  u32 v;
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(q.push(999));  // slot freed
}

TEST(SpscQueueTest, CapacityRoundsUpToPow2) {
  SpscQueue<u32> q(100);
  EXPECT_EQ(q.capacity(), 127u);  // 128 - 1 usable
}

TEST(SpscQueueTest, WrapAroundManyTimes) {
  SpscQueue<u64> q(4);
  u64 v = 0;
  for (u64 i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.push(i));
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, i);
  }
}

TEST(SpscQueueTest, StructRecords) {
  struct Rec {
    u32 slot;
    u64 len;
  };
  SpscQueue<Rec> q(16);
  ASSERT_TRUE(q.push({3, 4096}));
  Rec r{};
  ASSERT_TRUE(q.pop(r));
  EXPECT_EQ(r.slot, 3u);
  EXPECT_EQ(r.len, 4096u);
}

TEST(SpscQueueTest, TwoThreadStress) {
  SpscQueue<u64> q(256);
  constexpr u64 kCount = 2'000'000;
  std::atomic<u64> errors{0};
  std::thread producer([&] {
    for (u64 i = 0; i < kCount; ++i) {
      while (!q.push(i)) std::this_thread::yield();
    }
  });
  std::thread consumer([&] {
    u64 v = 0;
    for (u64 i = 0; i < kCount; ++i) {
      while (!q.pop(v)) std::this_thread::yield();
      if (v != i) errors.fetch_add(1, std::memory_order_relaxed);
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace oaf::shm

#include "shm/double_buffer.h"

#include <gtest/gtest.h>

#include <cstring>

#include "shm/region.h"

namespace oaf::shm {
namespace {

class DoubleBufferTest : public ::testing::Test {
 protected:
  static constexpr u64 kSlotBytes = 4096;
  static constexpr u32 kSlots = 8;

  void SetUp() override {
    const u64 need = DoubleBufferRing::required_bytes(kSlotBytes, kSlots);
    region_ = ShmRegion::anonymous(need).take();
    ring_ = DoubleBufferRing::create(region_.data(), region_.size(), kSlotBytes,
                                     kSlots)
                .take();
  }

  ShmRegion region_;
  DoubleBufferRing ring_;
};

TEST_F(DoubleBufferTest, GeometryExposed) {
  EXPECT_EQ(ring_.slot_size(), kSlotBytes);
  EXPECT_EQ(ring_.slot_count(), kSlots);
  EXPECT_TRUE(ring_.valid());
}

TEST_F(DoubleBufferTest, RoundRobinSlotSelection) {
  for (u64 seq = 0; seq < 100; ++seq) {
    EXPECT_EQ(ring_.slot_for(seq), seq % kSlots);
  }
}

TEST_F(DoubleBufferTest, ProducerConsumerLifecycle) {
  const auto dir = Direction::kClientToTarget;
  ASSERT_TRUE(ring_.acquire(dir, 0));
  EXPECT_EQ(ring_.state(dir, 0), DoubleBufferRing::kWriting);

  auto buf = ring_.slot_data(dir, 0);
  ASSERT_EQ(buf.size(), kSlotBytes);
  std::memset(buf.data(), 0x42, 100);
  ASSERT_TRUE(ring_.publish(dir, 0, 100));
  EXPECT_TRUE(ring_.ready(dir, 0));

  auto view = ring_.consume(dir, 0);
  ASSERT_TRUE(view.is_ok());
  EXPECT_EQ(view.value().size(), 100u);
  EXPECT_EQ(view.value()[0], 0x42);
  EXPECT_EQ(ring_.state(dir, 0), DoubleBufferRing::kDraining);

  ASSERT_TRUE(ring_.release(dir, 0));
  EXPECT_EQ(ring_.state(dir, 0), DoubleBufferRing::kFree);
}

TEST_F(DoubleBufferTest, DirectionsAreIndependent) {
  // Same slot index in both directions must not alias: this is the "double
  // buffer" property that lets reads and writes proceed concurrently.
  ASSERT_TRUE(ring_.acquire(Direction::kClientToTarget, 3));
  ASSERT_TRUE(ring_.acquire(Direction::kTargetToClient, 3));
  auto c2t = ring_.slot_data(Direction::kClientToTarget, 3);
  auto t2c = ring_.slot_data(Direction::kTargetToClient, 3);
  EXPECT_NE(c2t.data(), t2c.data());
  std::memset(c2t.data(), 0x11, kSlotBytes);
  std::memset(t2c.data(), 0x22, kSlotBytes);
  EXPECT_EQ(c2t[0], 0x11);
  EXPECT_EQ(t2c[0], 0x22);
  ASSERT_TRUE(ring_.publish(Direction::kClientToTarget, 3, 10));
  ASSERT_TRUE(ring_.publish(Direction::kTargetToClient, 3, 20));
  EXPECT_EQ(ring_.consume(Direction::kClientToTarget, 3).value().size(), 10u);
  EXPECT_EQ(ring_.consume(Direction::kTargetToClient, 3).value().size(), 20u);
}

TEST_F(DoubleBufferTest, SlotsDoNotOverlap) {
  const auto dir = Direction::kClientToTarget;
  for (u32 s = 0; s < kSlots; ++s) ASSERT_TRUE(ring_.acquire(dir, s));
  for (u32 s = 0; s < kSlots; ++s) {
    auto buf = ring_.slot_data(dir, s);
    std::memset(buf.data(), static_cast<int>(s + 1), kSlotBytes);
  }
  for (u32 s = 0; s < kSlots; ++s) {
    auto buf = ring_.slot_data(dir, s);
    EXPECT_EQ(buf[0], s + 1);
    EXPECT_EQ(buf[kSlotBytes - 1], s + 1);
  }
}

TEST_F(DoubleBufferTest, DoubleAcquireFails) {
  const auto dir = Direction::kClientToTarget;
  ASSERT_TRUE(ring_.acquire(dir, 1));
  auto second = ring_.acquire(dir, 1);
  EXPECT_FALSE(second);
  EXPECT_EQ(second.code(), StatusCode::kResourceExhausted);
}

TEST_F(DoubleBufferTest, ConsumeBeforePublishFails) {
  const auto dir = Direction::kClientToTarget;
  EXPECT_FALSE(ring_.consume(dir, 0).is_ok());
  ASSERT_TRUE(ring_.acquire(dir, 0));
  EXPECT_FALSE(ring_.consume(dir, 0).is_ok());  // kWriting, not kReady
}

TEST_F(DoubleBufferTest, PublishWithoutAcquireFails) {
  EXPECT_FALSE(ring_.publish(Direction::kClientToTarget, 0, 10));
}

TEST_F(DoubleBufferTest, ReleaseWithoutConsumeFails) {
  const auto dir = Direction::kClientToTarget;
  ASSERT_TRUE(ring_.acquire(dir, 0));
  ASSERT_TRUE(ring_.publish(dir, 0, 10));
  EXPECT_FALSE(ring_.release(dir, 0));  // still kReady
}

TEST_F(DoubleBufferTest, PublishLengthBounded) {
  const auto dir = Direction::kClientToTarget;
  ASSERT_TRUE(ring_.acquire(dir, 0));
  EXPECT_FALSE(ring_.publish(dir, 0, kSlotBytes + 1));
  EXPECT_TRUE(ring_.publish(dir, 0, kSlotBytes));
}

TEST_F(DoubleBufferTest, OutOfRangeSlotRejected) {
  const auto dir = Direction::kClientToTarget;
  EXPECT_FALSE(ring_.acquire(dir, kSlots));
  EXPECT_FALSE(ring_.consume(dir, kSlots).is_ok());
  EXPECT_FALSE(ring_.release(dir, kSlots));
  EXPECT_TRUE(ring_.slot_data(dir, kSlots).empty());
}

TEST_F(DoubleBufferTest, InFlightCounting) {
  const auto dir = Direction::kClientToTarget;
  EXPECT_EQ(ring_.in_flight(dir), 0u);
  ASSERT_TRUE(ring_.acquire(dir, 0));
  ASSERT_TRUE(ring_.acquire(dir, 1));
  EXPECT_EQ(ring_.in_flight(dir), 2u);
  ASSERT_TRUE(ring_.publish(dir, 0, 1));
  (void)ring_.consume(dir, 0);
  ASSERT_TRUE(ring_.release(dir, 0));
  EXPECT_EQ(ring_.in_flight(dir), 1u);
}

TEST_F(DoubleBufferTest, AttachSeesSameRing) {
  auto attached = DoubleBufferRing::attach(region_.data(), region_.size());
  ASSERT_TRUE(attached.is_ok());
  auto& peer = attached.value();
  EXPECT_EQ(peer.slot_size(), kSlotBytes);
  EXPECT_EQ(peer.slot_count(), kSlots);

  // Producer via original, consumer via attached view.
  const auto dir = Direction::kClientToTarget;
  ASSERT_TRUE(ring_.acquire(dir, 2));
  auto buf = ring_.slot_data(dir, 2);
  std::memcpy(buf.data(), "hello ring", 10);
  ASSERT_TRUE(ring_.publish(dir, 2, 10));

  ASSERT_TRUE(peer.ready(dir, 2));
  auto view = peer.consume(dir, 2);
  ASSERT_TRUE(view.is_ok());
  EXPECT_EQ(std::memcmp(view.value().data(), "hello ring", 10), 0);
  ASSERT_TRUE(peer.release(dir, 2));
  EXPECT_EQ(ring_.state(dir, 2), DoubleBufferRing::kFree);
}

TEST_F(DoubleBufferTest, AttachRejectsGarbage) {
  auto junk = ShmRegion::anonymous(1 << 16).take();
  std::memset(junk.data(), 0x7F, 1 << 16);
  EXPECT_FALSE(DoubleBufferRing::attach(junk.data(), junk.size()).is_ok());
}

TEST(DoubleBufferGeometryTest, CreateRejectsBadInputs) {
  auto region = ShmRegion::anonymous(1 << 16).take();
  EXPECT_FALSE(
      DoubleBufferRing::create(region.data(), region.size(), 0, 8).is_ok());
  EXPECT_FALSE(
      DoubleBufferRing::create(region.data(), region.size(), 4096, 0).is_ok());
  EXPECT_FALSE(
      DoubleBufferRing::create(region.data(), 64, 4096, 8).is_ok());  // too small
  EXPECT_FALSE(DoubleBufferRing::create(nullptr, 1 << 16, 4096, 8).is_ok());
  EXPECT_FALSE(DoubleBufferRing::create(region.bytes() + 1, region.size() - 1,
                                        4096, 8)
                   .is_ok());  // misaligned
}

TEST(DoubleBufferGeometryTest, RequiredBytesCoversBothHalves) {
  // Header + 2 ctl arrays + 2 data halves.
  const u64 need = DoubleBufferRing::required_bytes(4096, 8);
  EXPECT_GE(need, 2u * 8 * 4096);
  EXPECT_LT(need, 2u * 8 * 4096 + 64 * 32 + 4096);
}

class RingGeometrySweep
    : public ::testing::TestWithParam<std::pair<u64, u32>> {};

TEST_P(RingGeometrySweep, FullCycleAtEveryGeometry) {
  const auto [slot_bytes, slots] = GetParam();
  auto region =
      ShmRegion::anonymous(DoubleBufferRing::required_bytes(slot_bytes, slots))
          .take();
  auto ring =
      DoubleBufferRing::create(region.data(), region.size(), slot_bytes, slots)
          .take();
  const auto dir = Direction::kTargetToClient;
  // Two full laps over every slot.
  for (u64 seq = 0; seq < 2ull * slots; ++seq) {
    const u32 slot = ring.slot_for(seq);
    ASSERT_TRUE(ring.acquire(dir, slot)) << "seq " << seq;
    auto buf = ring.slot_data(dir, slot);
    buf[0] = static_cast<u8>(seq);
    ASSERT_TRUE(ring.publish(dir, slot, 1));
    auto view = ring.consume(dir, slot);
    ASSERT_TRUE(view.is_ok());
    EXPECT_EQ(view.value()[0], static_cast<u8>(seq));
    ASSERT_TRUE(ring.release(dir, slot));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RingGeometrySweep,
    ::testing::Values(std::pair<u64, u32>{512, 1}, std::pair<u64, u32>{512, 2},
                      std::pair<u64, u32>{4096, 16},
                      std::pair<u64, u32>{128 * 1024, 4},
                      std::pair<u64, u32>{512 * 1024, 128},
                      std::pair<u64, u32>{1, 3}));

}  // namespace
}  // namespace oaf::shm

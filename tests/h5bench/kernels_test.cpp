#include "h5bench/kernels.h"

#include <gtest/gtest.h>

#include "sim/scheduler.h"

namespace oaf::h5bench {
namespace {

BenchConfig tiny(u32 datasets, u64 particles, u64 chunk_elems) {
  BenchConfig cfg;
  cfg.num_datasets = datasets;
  cfg.particles_per_dataset = particles;
  cfg.chunk_elems = chunk_elems;
  cfg.elem_size = 4;
  return cfg;
}

struct Fixture {
  explicit Fixture(u64 capacity = 64 << 20)
      : backend(capacity), file(backend, vol) {
    bool ok = false;
    file.create([&](Status st) { ok = st.is_ok(); });
    EXPECT_TRUE(ok);
  }
  sim::Scheduler sched;
  h5::MemoryBackend backend;
  h5::NativeVol vol;
  h5::H5File file;
};

TEST(H5BenchKernelsTest, WriteThenReadVerifies) {
  Fixture f;
  const BenchConfig cfg = tiny(2, 10000, 1024);

  Result<KernelStats> write_result = make_error(StatusCode::kUnavailable);
  run_write_kernel(f.sched, f.file, cfg, [&](Result<KernelStats> r) {
    write_result = std::move(r);
  });
  f.sched.run();
  ASSERT_TRUE(write_result.is_ok()) << write_result.status().to_string();
  EXPECT_EQ(write_result.value().bytes, cfg.total_bytes());

  Result<KernelStats> read_result = make_error(StatusCode::kUnavailable);
  run_read_kernel(f.sched, f.file, cfg, /*verify=*/true,
                  [&](Result<KernelStats> r) { read_result = std::move(r); });
  f.sched.run();
  ASSERT_TRUE(read_result.is_ok()) << read_result.status().to_string();
  EXPECT_EQ(read_result.value().bytes, cfg.total_bytes());
}

TEST(H5BenchKernelsTest, VerifyCatchesCorruption) {
  Fixture f;
  const BenchConfig cfg = tiny(1, 4096, 512);
  run_write_kernel(f.sched, f.file, cfg,
                   [](Result<KernelStats> r) { ASSERT_TRUE(r.is_ok()); });
  f.sched.run();

  // Corrupt one byte of the dataset through the backend directly.
  const auto& ds = f.file.dataset(0);
  std::vector<u8> evil(1, 0xFF);
  f.backend.write(ds.data_offset + 100, evil, [](Status) {});

  Result<KernelStats> read_result = Result<KernelStats>(KernelStats{});
  run_read_kernel(f.sched, f.file, cfg, /*verify=*/true,
                  [&](Result<KernelStats> r) { read_result = std::move(r); });
  f.sched.run();
  EXPECT_FALSE(read_result.is_ok());
  EXPECT_EQ(read_result.status().code(), StatusCode::kDataLoss);
}

TEST(H5BenchKernelsTest, Config1And2Shapes) {
  const BenchConfig c1 = BenchConfig::config1();
  EXPECT_EQ(c1.num_datasets, 1u);
  EXPECT_EQ(c1.particles_per_dataset, 16ull * 1024 * 1024);
  EXPECT_EQ(c1.total_bytes(), 64ull << 20);

  const BenchConfig c2 = BenchConfig::config2();
  EXPECT_EQ(c2.num_datasets, 8u);
  EXPECT_EQ(c2.particles_per_dataset, 8ull * 1024 * 1024);
  EXPECT_EQ(c2.total_bytes(), 256ull << 20);
  EXPECT_LT(c2.chunk_elems, c1.chunk_elems);  // interleaved small transfers
}

TEST(H5BenchKernelsTest, ChunkingCoversOddSizes) {
  Fixture f;
  // particles not a multiple of chunk_elems: last chunk is short.
  const BenchConfig cfg = tiny(3, 1000, 384);
  Result<KernelStats> wr = make_error(StatusCode::kUnavailable);
  run_write_kernel(f.sched, f.file, cfg,
                   [&](Result<KernelStats> r) { wr = std::move(r); });
  f.sched.run();
  ASSERT_TRUE(wr.is_ok());
  EXPECT_EQ(wr.value().bytes, 3u * 1000 * 4);

  Result<KernelStats> rd = make_error(StatusCode::kUnavailable);
  run_read_kernel(f.sched, f.file, cfg, true,
                  [&](Result<KernelStats> r) { rd = std::move(r); });
  f.sched.run();
  ASSERT_TRUE(rd.is_ok());
}

TEST(H5BenchKernelsTest, ReadKernelFailsWithoutDatasets) {
  Fixture f;
  Result<KernelStats> rd = Result<KernelStats>(KernelStats{});
  run_read_kernel(f.sched, f.file, tiny(1, 100, 10), false,
                  [&](Result<KernelStats> r) { rd = std::move(r); });
  f.sched.run();
  EXPECT_FALSE(rd.is_ok());
}

TEST(H5BenchKernelsTest, ParticleBytesDeterministicAndDistinct) {
  EXPECT_EQ(particle_byte(1, 0, 42), particle_byte(1, 0, 42));
  int same = 0;
  for (u64 i = 0; i < 256; ++i) {
    if (particle_byte(1, 0, i) == particle_byte(1, 1, i)) same++;
    if (particle_byte(1, 0, i) == particle_byte(2, 0, i)) same++;
  }
  EXPECT_LT(same, 40);  // different datasets/seeds produce different bytes
}

TEST(H5BenchKernelsTest, TimingIncludesCloseWhenConfigured) {
  // With a MemoryBackend time never advances, so instead check that close
  // is reflected in file state: after the write kernel with time_close the
  // metadata is persisted and the file reopens.
  Fixture f;
  BenchConfig cfg = tiny(1, 1024, 256);
  cfg.time_close = true;
  run_write_kernel(f.sched, f.file, cfg,
                   [](Result<KernelStats> r) { ASSERT_TRUE(r.is_ok()); });
  f.sched.run();

  h5::NativeVol vol2;
  h5::H5File reopened(f.backend, vol2);
  bool opened = false;
  reopened.open([&](Status st) { opened = st.is_ok(); });
  f.sched.run();
  EXPECT_TRUE(opened);
  EXPECT_EQ(reopened.dataset_count(), 1u);
}

}  // namespace
}  // namespace oaf::h5bench

#include "net/socket_channel.h"

#include <gtest/gtest.h>

#include <atomic>

#include "sim/real_executor.h"

namespace oaf::net {
namespace {

pdu::Pdu make_capsule(u16 cid, u64 payload_bytes) {
  pdu::Pdu p;
  pdu::CapsuleCmd c;
  c.cmd.opcode = pdu::NvmeOpcode::kWrite;
  c.cmd.cid = cid;
  c.in_capsule_data = payload_bytes > 0;
  c.data_len = payload_bytes;
  p.header = c;
  p.payload.resize(payload_bytes);
  for (u64 i = 0; i < payload_bytes; ++i) p.payload[i] = static_cast<u8>(i ^ cid);
  return p;
}

TEST(SocketChannelTest, RoundtripOverRealSockets) {
  sim::RealExecutor ea;
  sim::RealExecutor eb;
  auto pair_res = make_socket_channel_pair(ea, eb);
  ASSERT_TRUE(pair_res.is_ok());
  auto [a, b] = std::move(pair_res).take();

  std::atomic<int> got{0};
  std::atomic<bool> payload_ok{false};
  b->set_handler([&](pdu::Pdu p) {
    const auto* c = p.as<pdu::CapsuleCmd>();
    if (c != nullptr && c->cmd.cid == 42 && p.payload.size() == 4096) {
      bool ok = true;
      for (u64 i = 0; i < p.payload.size(); ++i) {
        if (p.payload[i] != static_cast<u8>(i ^ 42)) ok = false;
      }
      payload_ok = ok;
    }
    got++;
  });
  a->send(make_capsule(42, 4096));
  while (got.load() < 1) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(payload_ok.load());
}

TEST(SocketChannelTest, ManyMessagesInOrder) {
  sim::RealExecutor ea;
  sim::RealExecutor eb;
  auto [a, b] = make_socket_channel_pair(ea, eb).take();

  constexpr int kCount = 500;
  std::atomic<int> received{0};
  std::atomic<int> order_errors{0};
  b->set_handler([&](pdu::Pdu p) {
    const int expect = received.load();
    if (p.as<pdu::CapsuleCmd>()->cmd.cid != expect) order_errors++;
    received++;
  });
  for (int i = 0; i < kCount; ++i) a->send(make_capsule(static_cast<u16>(i), 128));
  while (received.load() < kCount) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(order_errors.load(), 0);
}

TEST(SocketChannelTest, LargePayloadFrames) {
  sim::RealExecutor ea;
  sim::RealExecutor eb;
  auto [a, b] = make_socket_channel_pair(ea, eb).take();
  std::atomic<bool> got{false};
  std::atomic<u64> size{0};
  b->set_handler([&](pdu::Pdu p) {
    size = p.payload.size();
    got = true;
  });
  a->send(make_capsule(1, 2 * 1024 * 1024));  // 2 MiB frame
  while (!got.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(size.load(), 2u * 1024 * 1024);
}

TEST(SocketChannelTest, BidirectionalConcurrentTraffic) {
  sim::RealExecutor ea;
  sim::RealExecutor eb;
  auto [a, b] = make_socket_channel_pair(ea, eb).take();
  constexpr int kCount = 200;
  std::atomic<int> a_got{0};
  std::atomic<int> b_got{0};
  a->set_handler([&](pdu::Pdu) { a_got++; });
  b->set_handler([&](pdu::Pdu) { b_got++; });
  std::thread ta([&] {
    for (int i = 0; i < kCount; ++i) a->send(make_capsule(1, 256));
  });
  std::thread tb([&] {
    for (int i = 0; i < kCount; ++i) b->send(make_capsule(2, 256));
  });
  ta.join();
  tb.join();
  while (a_got.load() < kCount || b_got.load() < kCount) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(a_got.load(), kCount);
  EXPECT_EQ(b_got.load(), kCount);
}

TEST(SocketChannelTest, CloseUnblocksPeer) {
  sim::RealExecutor ea;
  sim::RealExecutor eb;
  auto [a, b] = make_socket_channel_pair(ea, eb).take();
  b->set_handler([](pdu::Pdu) {});
  EXPECT_TRUE(a->is_open());
  a->close();
  EXPECT_FALSE(a->is_open());
  // Sending after close is a no-op, not a crash.
  a->send(make_capsule(1, 64));
  SUCCEED();
}

}  // namespace
}  // namespace oaf::net

#include "net/pipe_channel.h"

#include <gtest/gtest.h>

#include "sim/scheduler.h"

namespace oaf::net {
namespace {

pdu::Pdu make_r2t(u16 cid) {
  pdu::Pdu p;
  pdu::R2T r;
  r.cid = cid;
  p.header = r;
  return p;
}

TEST(PipeChannelTest, DeliversInOrder) {
  sim::Scheduler sched;
  auto [a, b] = make_pipe_channel_pair(sched, sched);
  std::vector<u16> got;
  b->set_handler([&](pdu::Pdu p) { got.push_back(p.as<pdu::R2T>()->cid); });
  for (u16 i = 0; i < 10; ++i) a->send(make_r2t(i));
  sched.run();
  ASSERT_EQ(got.size(), 10u);
  for (u16 i = 0; i < 10; ++i) EXPECT_EQ(got[i], i);
}

TEST(PipeChannelTest, BothDirections) {
  sim::Scheduler sched;
  auto [a, b] = make_pipe_channel_pair(sched, sched);
  int a_got = 0;
  int b_got = 0;
  a->set_handler([&](pdu::Pdu) { a_got++; });
  b->set_handler([&](pdu::Pdu) { b_got++; });
  a->send(make_r2t(1));
  b->send(make_r2t(2));
  sched.run();
  EXPECT_EQ(a_got, 1);
  EXPECT_EQ(b_got, 1);
}

TEST(PipeChannelTest, PayloadSurvivesCodecRoundtrip) {
  sim::Scheduler sched;
  auto [a, b] = make_pipe_channel_pair(sched, sched);
  std::vector<u8> payload(10000);
  for (size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<u8>(i);
  std::vector<u8> received;
  b->set_handler([&](pdu::Pdu p) { received = p.payload; });
  pdu::Pdu out;
  pdu::C2HData c;
  c.length = payload.size();
  out.header = c;
  out.payload = payload;
  a->send(std::move(out));
  sched.run();
  EXPECT_EQ(received, payload);
}

TEST(PipeChannelTest, CloseStopsDelivery) {
  sim::Scheduler sched;
  auto [a, b] = make_pipe_channel_pair(sched, sched);
  int got = 0;
  b->set_handler([&](pdu::Pdu) { got++; });
  a->send(make_r2t(1));
  a->close();
  a->send(make_r2t(2));
  sched.run();
  EXPECT_EQ(got, 0);  // close() flips the shared flag before delivery runs
  EXPECT_FALSE(a->is_open());
  EXPECT_FALSE(b->is_open());
}

TEST(PipeChannelTest, CountsBytesAndPdus) {
  sim::Scheduler sched;
  auto [a, b] = make_pipe_channel_pair(sched, sched);
  b->set_handler([](pdu::Pdu) {});
  a->send(make_r2t(1));
  a->send(make_r2t(2));
  sched.run();
  EXPECT_EQ(a->pdus_sent(), 2u);
  EXPECT_GT(a->bytes_sent(), 0u);
  EXPECT_EQ(b->pdus_sent(), 0u);
}

TEST(PipeChannelTest, NoHandlerDropsSilently) {
  sim::Scheduler sched;
  auto [a, b] = make_pipe_channel_pair(sched, sched);
  a->send(make_r2t(1));
  sched.run();  // no crash, message dropped
  SUCCEED();
}

TEST(PipeChannelTest, DestroyedEndpointDropsInFlight) {
  sim::Scheduler sched;
  auto [a, b] = make_pipe_channel_pair(sched, sched);
  int got = 0;
  b->set_handler([&](pdu::Pdu) { got++; });
  a->send(make_r2t(1));
  b.reset();   // destroy receiver while message is queued
  sched.run(); // must not crash or touch freed memory
  EXPECT_EQ(got, 0);
}

TEST(PipeChannelTest, HeaderDigestOptionEnforced) {
  sim::Scheduler sched;
  pdu::CodecOptions opts;
  opts.header_digest = true;
  auto [a, b] = make_pipe_channel_pair(sched, sched, opts);
  int got = 0;
  b->set_handler([&](pdu::Pdu) { got++; });
  a->send(make_r2t(9));
  sched.run();
  EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace oaf::net

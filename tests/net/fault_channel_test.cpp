// FaultChannel unit tests: the reusable fault-injection wrapper must apply
// its seeded policies deterministically — the same seed always produces the
// same loss pattern — so resilience tests replay bit-identically.
#include "net/fault_channel.h"

#include <gtest/gtest.h>

#include "net/pipe_channel.h"
#include "sim/scheduler.h"

namespace oaf::net {
namespace {

pdu::Pdu make_c2h(u16 cid, std::vector<u8> payload = {}) {
  pdu::Pdu p;
  pdu::C2HData c;
  c.cid = cid;
  c.length = payload.size();
  p.header = c;
  p.payload = std::move(payload);
  return p;
}

struct Rig {
  explicit Rig(FaultPolicy policy = {}) {
    auto [a, b] = make_pipe_channel_pair(sched, sched);
    faulty = std::make_unique<FaultChannel>(std::move(a), policy);
    peer = std::move(b);
    peer->set_handler([this](pdu::Pdu p) { received.push_back(std::move(p)); });
  }

  sim::Scheduler sched;
  std::unique_ptr<FaultChannel> faulty;
  std::unique_ptr<MsgChannel> peer;
  std::vector<pdu::Pdu> received;
};

TEST(FaultChannelTest, NoPolicyPassesEverythingThrough) {
  Rig rig;
  for (u16 i = 0; i < 50; ++i) rig.faulty->send(make_c2h(i));
  rig.sched.run();
  ASSERT_EQ(rig.received.size(), 50u);
  for (u16 i = 0; i < 50; ++i) {
    EXPECT_EQ(rig.received[i].as<pdu::C2HData>()->cid, i);
  }
  EXPECT_EQ(rig.faulty->dropped(), 0u);
}

TEST(FaultChannelTest, DropIsDeterministicPerSeed) {
  auto run_once = [](u64 seed) {
    FaultPolicy p;
    p.seed = seed;
    p.drop_prob = 0.3;
    Rig rig(p);
    for (u16 i = 0; i < 200; ++i) rig.faulty->send(make_c2h(i));
    rig.sched.run();
    std::vector<u16> cids;
    for (const auto& pdu : rig.received) {
      cids.push_back(pdu.as<pdu::C2HData>()->cid);
    }
    return std::make_pair(cids, rig.faulty->dropped());
  };
  const auto [cids_a, drops_a] = run_once(7);
  const auto [cids_b, drops_b] = run_once(7);
  const auto [cids_c, drops_c] = run_once(8);
  EXPECT_EQ(cids_a, cids_b);
  EXPECT_EQ(drops_a, drops_b);
  EXPECT_NE(cids_a, cids_c);  // different seed, different loss pattern
  EXPECT_GT(drops_a, 0u);
  EXPECT_LT(drops_a, 200u);
}

TEST(FaultChannelTest, CorruptionFlipsExactlyOnePayloadByte) {
  FaultPolicy p;
  p.corrupt_prob = 1.0;
  Rig rig(p);
  std::vector<u8> payload(256, 0xAA);
  rig.faulty->send(make_c2h(1, payload));
  rig.sched.run();
  ASSERT_EQ(rig.received.size(), 1u);
  EXPECT_EQ(rig.faulty->corrupted(), 1u);
  int diffs = 0;
  for (size_t i = 0; i < payload.size(); ++i) {
    diffs += rig.received[0].payload[i] != payload[i];
  }
  EXPECT_EQ(diffs, 1);
}

TEST(FaultChannelTest, CorruptionSkipsPayloadlessPdus) {
  FaultPolicy p;
  p.corrupt_prob = 1.0;
  Rig rig(p);
  rig.faulty->send(make_c2h(1));  // header-only
  rig.sched.run();
  ASSERT_EQ(rig.received.size(), 1u);
  EXPECT_EQ(rig.faulty->corrupted(), 0u);
}

TEST(FaultChannelTest, DuplicateDeliversTwice) {
  FaultPolicy p;
  p.duplicate_prob = 1.0;
  Rig rig(p);
  rig.faulty->send(make_c2h(9));
  rig.sched.run();
  ASSERT_EQ(rig.received.size(), 2u);
  EXPECT_EQ(rig.received[0].as<pdu::C2HData>()->cid, 9);
  EXPECT_EQ(rig.received[1].as<pdu::C2HData>()->cid, 9);
  EXPECT_EQ(rig.faulty->duplicated(), 1u);
}

TEST(FaultChannelTest, DelayDefersDeliveryOnTheVirtualClock) {
  FaultPolicy p;
  p.delay_ns = 1'000'000;
  Rig rig(p);
  TimeNs delivered_at = -1;
  rig.peer->set_handler(
      [&](pdu::Pdu) { delivered_at = rig.sched.now(); });
  rig.faulty->send(make_c2h(1));
  rig.sched.run();
  EXPECT_GE(delivered_at, 1'000'000);
  EXPECT_EQ(rig.faulty->delayed(), 1u);
}

TEST(FaultChannelTest, InjectDelayStallsExactlyOnePdu) {
  Rig rig;
  std::vector<std::pair<u16, TimeNs>> delivered;  // (cid, arrival time)
  rig.peer->set_handler([&](pdu::Pdu p) {
    delivered.emplace_back(p.as<pdu::C2HData>()->cid, rig.sched.now());
  });

  rig.faulty->inject_delay(5'000'000);
  EXPECT_TRUE(rig.faulty->delay_pending());
  rig.faulty->send(make_c2h(1));  // the limping PDU
  EXPECT_FALSE(rig.faulty->delay_pending());  // one-shot: disarmed by use
  rig.faulty->send(make_c2h(2));  // neighbour stays fast
  rig.sched.run();

  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0].first, 2);  // the fast neighbour overtakes
  EXPECT_LT(delivered[0].second, 5'000'000);
  EXPECT_EQ(delivered[1].first, 1);  // the stalled PDU limps in late
  EXPECT_GE(delivered[1].second, 5'000'000);
  EXPECT_EQ(rig.faulty->delayed(), 1u);
}

TEST(FaultChannelTest, InjectDelayStacksOnPolicyDelay) {
  FaultPolicy p;
  p.delay_ns = 1'000'000;
  Rig rig(p);
  TimeNs delivered_at = -1;
  rig.peer->set_handler([&](pdu::Pdu) { delivered_at = rig.sched.now(); });
  rig.faulty->inject_delay(3'000'000);
  rig.faulty->send(make_c2h(1));
  rig.sched.run();
  EXPECT_GE(delivered_at, 4'000'000);  // policy + injected stall
}

TEST(FaultChannelTest, PartitionDropsUntilHealed) {
  Rig rig;
  rig.faulty->partition();
  rig.faulty->send(make_c2h(1));
  rig.sched.run();
  EXPECT_TRUE(rig.received.empty());
  EXPECT_EQ(rig.faulty->dropped(), 1u);

  rig.faulty->heal();
  rig.faulty->send(make_c2h(2));
  rig.sched.run();
  ASSERT_EQ(rig.received.size(), 1u);
  EXPECT_EQ(rig.received[0].as<pdu::C2HData>()->cid, 2);
}

TEST(FaultChannelTest, OutboundPartitionStillDeliversInbound) {
  sim::Scheduler sched;
  auto [a, b] = wrap_fault_pair(make_pipe_channel_pair(sched, sched));
  int a_got = 0;
  int b_got = 0;
  a->set_handler([&](pdu::Pdu) { a_got++; });
  b->set_handler([&](pdu::Pdu) { b_got++; });

  a->partition(Direction::kOutbound);
  a->send(make_c2h(1));  // vanishes
  b->send(make_c2h(2));  // still arrives at a
  sched.run();
  EXPECT_EQ(b_got, 0);
  EXPECT_EQ(a_got, 1);
  EXPECT_EQ(a->dropped(), 1u);
  EXPECT_EQ(a->inbound_dropped(), 0u);
  EXPECT_TRUE(a->partitioned());

  a->heal();
  a->send(make_c2h(3));
  sched.run();
  EXPECT_EQ(b_got, 1);
}

TEST(FaultChannelTest, InboundPartitionSwallowsDeliveries) {
  sim::Scheduler sched;
  auto [a, b] = wrap_fault_pair(make_pipe_channel_pair(sched, sched));
  int a_got = 0;
  int b_got = 0;
  a->set_handler([&](pdu::Pdu) { a_got++; });
  b->set_handler([&](pdu::Pdu) { b_got++; });

  a->partition(Direction::kInbound);
  a->send(make_c2h(1));  // outbound unaffected
  b->send(make_c2h(2));  // swallowed at a's doorstep
  sched.run();
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(a_got, 0);
  EXPECT_EQ(a->inbound_dropped(), 1u);
  EXPECT_EQ(a->dropped(), 0u);

  a->heal();
  b->send(make_c2h(3));
  sched.run();
  EXPECT_EQ(a_got, 1);
}

TEST(FaultChannelTest, PartitionDirectionsAccumulateToBoth) {
  Rig rig;
  rig.faulty->partition(Direction::kOutbound);
  rig.faulty->partition(Direction::kInbound);
  rig.faulty->send(make_c2h(1));
  rig.sched.run();
  EXPECT_TRUE(rig.received.empty());
  EXPECT_TRUE(rig.faulty->partitioned());
}

TEST(FaultChannelTest, KillAtClosesOnExactlyTheNthSend) {
  Rig rig;
  bool kill_seen = false;
  rig.faulty->kill_at(3);
  rig.faulty->set_on_kill([&] { kill_seen = true; });
  rig.faulty->send(make_c2h(1));
  rig.faulty->send(make_c2h(2));
  rig.sched.run();
  EXPECT_EQ(rig.received.size(), 2u);
  EXPECT_FALSE(rig.faulty->killed());
  EXPECT_TRUE(rig.faulty->is_open());

  rig.faulty->send(make_c2h(3));  // the cable is cut here
  rig.faulty->send(make_c2h(4));  // already dead
  rig.sched.run();
  EXPECT_EQ(rig.received.size(), 2u);
  EXPECT_TRUE(rig.faulty->killed());
  EXPECT_TRUE(kill_seen);
  EXPECT_FALSE(rig.faulty->is_open());
}

TEST(FaultChannelTest, KillAtCountsSwallowedSendsToo) {
  // The trigger is positional in the send stream, not the delivery stream:
  // a PDU the hook drops still advances the countdown, so the kill point is
  // deterministic whatever other faults are active.
  Rig rig;
  rig.faulty->set_fault([](pdu::Pdu&) { return false; });
  rig.faulty->kill_at(2);
  rig.faulty->send(make_c2h(1));  // dropped by hook, countdown 2 -> 1
  rig.faulty->send(make_c2h(2));  // kill fires before the hook runs
  rig.sched.run();
  EXPECT_TRUE(rig.faulty->killed());
  EXPECT_EQ(rig.faulty->dropped(), 1u);
}

TEST(FaultChannelTest, FaultHookRunsBeforeStochasticPolicy) {
  FaultPolicy p;
  p.drop_prob = 1.0;  // would drop everything...
  Rig rig(p);
  int hook_calls = 0;
  rig.faulty->set_fault([&](pdu::Pdu&) {
    hook_calls++;
    return false;  // ...but the hook drops first
  });
  rig.faulty->send(make_c2h(1));
  rig.sched.run();
  EXPECT_EQ(hook_calls, 1);
  EXPECT_EQ(rig.faulty->dropped(), 1u);
}

TEST(FaultChannelTest, InjectBypassesPolicyEntirely) {
  FaultPolicy p;
  p.drop_prob = 1.0;
  Rig rig(p);
  rig.faulty->send(make_c2h(1));   // dropped by policy
  rig.faulty->inject(make_c2h(2));  // forged past the policy
  rig.sched.run();
  ASSERT_EQ(rig.received.size(), 1u);
  EXPECT_EQ(rig.received[0].as<pdu::C2HData>()->cid, 2);
}

TEST(FaultChannelTest, WrapFaultPairSplitsSeeds) {
  // Both directions draw independent streams: with the same policy the two
  // endpoints must not mirror each other's drop decisions on every PDU.
  sim::Scheduler sched;
  FaultPolicy p;
  p.seed = 3;
  p.drop_prob = 0.5;
  auto [a, b] = wrap_fault_pair(make_pipe_channel_pair(sched, sched), p);
  int a_got = 0;
  int b_got = 0;
  a->set_handler([&](pdu::Pdu) { a_got++; });
  b->set_handler([&](pdu::Pdu) { b_got++; });
  for (u16 i = 0; i < 100; ++i) {
    a->send(make_c2h(i));
    b->send(make_c2h(i));
  }
  sched.run();
  EXPECT_GT(a_got, 0);
  EXPECT_GT(b_got, 0);
  EXPECT_NE(a->dropped(), 0u);
  EXPECT_NE(b->dropped(), 0u);
  // Independent streams: extremely unlikely to drop identical counts at
  // identical positions; counts differing is the cheap proxy we assert.
  EXPECT_NE(a->dropped(), b->dropped());
}

}  // namespace
}  // namespace oaf::net

#include "net/copier.h"

#include <gtest/gtest.h>

#include "sim/scheduler.h"

namespace oaf::net {
namespace {

TEST(InlineCopierTest, CopiesImmediately) {
  InlineCopier c;
  std::vector<u8> src(100, 0x42);
  std::vector<u8> dst(100, 0);
  bool done = false;
  c.copy(src, dst, [&] { done = true; });
  EXPECT_TRUE(done);
  EXPECT_EQ(dst, src);
}

TEST(InlineCopierTest, ChargeIsFree) {
  InlineCopier c;
  bool done = false;
  c.charge(1 << 30, [&] { done = true; });
  EXPECT_TRUE(done);
}

TEST(SimCopierTest, CopyMovesDataAndChargesTime) {
  sim::Scheduler sched;
  ShmFabricParams params;
  params.memcpy_bytes_per_sec = 1e9;       // 1 GB/s stream
  params.node_mem_bytes_per_sec = 1e10;
  SimMemoryBus bus(sched, params);
  SimCopier c(bus);

  std::vector<u8> src(1'000'000, 0x5A);
  std::vector<u8> dst(1'000'000, 0);
  TimeNs done_at = -1;
  c.copy(src, dst, [&] { done_at = sched.now(); });
  // Data moves immediately (functional correctness)...
  EXPECT_EQ(dst, src);
  EXPECT_EQ(done_at, -1);
  sched.run();
  // ...but completion costs ~1 ms of virtual time (stream-rate bound).
  EXPECT_GE(done_at, 1'000'000);
  EXPECT_LT(done_at, 1'200'000);
}

TEST(SimCopierTest, NodeBusLimitsAggregate) {
  sim::Scheduler sched;
  ShmFabricParams params;
  params.memcpy_bytes_per_sec = 1e10;   // streams are fast
  params.node_mem_bytes_per_sec = 1e9;  // the node bus is the bottleneck
  SimMemoryBus bus(sched, params);
  SimCopier c1(bus);
  SimCopier c2(bus);

  std::vector<u8> buf(1'000'000);
  std::vector<u8> out1(1'000'000);
  std::vector<u8> out2(1'000'000);
  TimeNs t1 = -1;
  TimeNs t2 = -1;
  c1.copy(buf, out1, [&] { t1 = sched.now(); });
  c2.copy(buf, out2, [&] { t2 = sched.now(); });
  sched.run();
  // 2 MB through a 1 GB/s bus: last finishes at ~2 ms.
  EXPECT_GE(std::max(t1, t2), 2'000'000);
  EXPECT_EQ(bus.bytes_copied(), 2'000'000u);
}

TEST(SimCopierTest, ChargeWithoutData) {
  sim::Scheduler sched;
  ShmFabricParams params;
  params.memcpy_bytes_per_sec = 1e9;
  params.node_mem_bytes_per_sec = 1e9;
  SimMemoryBus bus(sched, params);
  SimCopier c(bus);
  TimeNs done_at = -1;
  c.charge(500'000, [&] { done_at = sched.now(); });
  sched.run();
  EXPECT_GE(done_at, 500'000);  // at least the stream time
}

}  // namespace
}  // namespace oaf::net

#include "net/sim_channel.h"

#include <gtest/gtest.h>

#include "pdu/codec.h"

namespace oaf::net {
namespace {

pdu::Pdu data_pdu(u64 payload_bytes) {
  pdu::Pdu p;
  pdu::C2HData c;
  c.length = payload_bytes;
  p.header = c;
  p.payload.resize(payload_bytes, 0xEE);
  return p;
}

pdu::Pdu control_pdu() {
  pdu::Pdu p;
  p.header = pdu::R2T{};
  return p;
}

TEST(SimTcpChannelTest, DeliveryTimeHasAllComponents) {
  sim::Scheduler sched;
  TcpFabricParams params;
  params.link_gbps = 10.0;
  params.propagation_ns = 20'000;
  params.interrupt_delay_ns = 30'000;
  params.per_pdu_overhead_ns = 3'000;
  params.stack_bytes_per_sec = 2.8e9;
  SimTcpLink link(sched, params);
  auto [client, target] = link.connect();

  TimeNs delivered = -1;
  target->set_handler([&](pdu::Pdu) { delivered = sched.now(); });
  auto p = data_pdu(125'000);  // 100 us serialization at 10 Gbps
  const u64 wire = pdu::wire_size(p);
  client->send(std::move(p));
  sched.run();

  // tx stack + wire + propagation + interrupt + rx stack.
  const DurNs stack = 3'000 + transfer_time_ns(wire, 2.8e9);
  const DurNs expect = stack + wire_time_ns(wire, 10.0) + 20'000 + 30'000 + stack;
  EXPECT_NEAR(static_cast<double>(delivered), static_cast<double>(expect),
              static_cast<double>(expect) * 0.01);
}

TEST(SimTcpChannelTest, LinkSharedAcrossConnections) {
  sim::Scheduler sched;
  TcpFabricParams params;
  params.link_gbps = 10.0;
  params.propagation_ns = 0;
  params.interrupt_delay_ns = 0;
  params.per_pdu_overhead_ns = 0;
  params.stack_bytes_per_sec = 1e13;  // make the wire the only bottleneck
  SimTcpLink link(sched, params);

  auto conn1 = link.connect();
  auto conn2 = link.connect();
  std::vector<TimeNs> deliveries;
  conn1.second->set_handler([&](pdu::Pdu) { deliveries.push_back(sched.now()); });
  conn2.second->set_handler([&](pdu::Pdu) { deliveries.push_back(sched.now()); });

  // Two 1.25 MB messages at 10 Gbps: 1 ms each, serialized on the shared
  // wire -> second finishes at ~2 ms even though connections are distinct.
  conn1.first->send(data_pdu(1'250'000));
  conn2.first->send(data_pdu(1'250'000));
  sched.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_NEAR(static_cast<double>(deliveries[1]), 2e6, 2e4);
}

TEST(SimTcpChannelTest, DirectionsDoNotContend) {
  sim::Scheduler sched;
  TcpFabricParams params;
  params.link_gbps = 10.0;
  params.propagation_ns = 0;
  params.interrupt_delay_ns = 0;
  params.per_pdu_overhead_ns = 0;
  params.stack_bytes_per_sec = 1e13;
  SimTcpLink link(sched, params);
  auto [client, target] = link.connect();
  std::vector<TimeNs> deliveries;
  client->set_handler([&](pdu::Pdu) { deliveries.push_back(sched.now()); });
  target->set_handler([&](pdu::Pdu) { deliveries.push_back(sched.now()); });
  client->send(data_pdu(1'250'000));
  target->send(data_pdu(1'250'000));
  sched.run();
  ASSERT_EQ(deliveries.size(), 2u);
  // Full duplex: both at ~1 ms.
  EXPECT_NEAR(static_cast<double>(deliveries[0]), 1e6, 2e4);
  EXPECT_NEAR(static_cast<double>(deliveries[1]), 1e6, 2e4);
}

TEST(SimTcpChannelTest, BusyPollHitBeatsInterrupt) {
  sim::Scheduler sched;
  TcpFabricParams params;
  params.link_gbps = 100.0;
  params.propagation_ns = 1'000;
  params.interrupt_delay_ns = 30'000;
  params.poll_pickup_ns = 2'000;
  params.per_pdu_overhead_ns = 0;
  params.stack_bytes_per_sec = 1e13;
  SimTcpLink link(sched, params);

  // Interrupt mode: every delivery pays interrupt latency.
  auto conn_int = link.connect();
  std::vector<TimeNs> int_deliveries;
  conn_int.second->set_handler(
      [&](pdu::Pdu) { int_deliveries.push_back(sched.now()); });
  conn_int.first->send(control_pdu());
  conn_int.first->send(control_pdu());
  sched.run();

  // Polled mode with a budget larger than the inter-arrival gap: the second
  // message is picked up by the still-spinning poll loop.
  auto conn_poll = link.connect();
  auto* tunable = dynamic_cast<BusyPollTunable*>(conn_poll.second.get());
  ASSERT_NE(tunable, nullptr);
  tunable->set_rx_poll_budget(100'000);
  std::vector<TimeNs> poll_deliveries;
  conn_poll.second->set_handler(
      [&](pdu::Pdu) { poll_deliveries.push_back(sched.now()); });
  const TimeNs base = sched.now();
  conn_poll.first->send(control_pdu());
  conn_poll.first->send(control_pdu());
  sched.run();

  ASSERT_EQ(int_deliveries.size(), 2u);
  ASSERT_EQ(poll_deliveries.size(), 2u);
  // First polled message misses (no prior arrival): interrupt path plus a
  // reschedule penalty — strictly worse than pure interrupts, part of the
  // paper's "short polls hurt writes" effect (the other part is the wasted
  // spin + interrupt CPU charged to the receiving core).
  const DurNs poll_first_extra = poll_deliveries[0] - base;
  EXPECT_GT(poll_first_extra, int_deliveries[0]);
  // Second message arrives within the budget: the spinning poll picks it
  // up (hit), avoiding the interrupt *latency* path.
  auto* counters = dynamic_cast<BusyPollTunable*>(conn_poll.second.get());
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->rx_poll_misses(), 1u);
  EXPECT_EQ(counters->rx_poll_hits(), 1u);
  EXPECT_GT(counters->rx_mean_gap_ns(), 0);
  EXPECT_LT(poll_deliveries[0], poll_deliveries[1]);  // FIFO preserved
}

TEST(SimTcpChannelTest, UtilizationTracksTraffic) {
  sim::Scheduler sched;
  TcpFabricParams params;
  params.link_gbps = 10.0;
  SimTcpLink link(sched, params);
  auto [client, target] = link.connect();
  target->set_handler([](pdu::Pdu) {});
  client->send(data_pdu(1'250'000));
  sched.run();
  EXPECT_GT(link.wire_bytes(), 1'250'000u);
  EXPECT_GT(link.utilization_c2t(), 0.0);
  EXPECT_EQ(link.utilization_t2c(), 0.0);
}

TEST(SimRdmaChannelTest, LowerLatencyThanTcp) {
  sim::Scheduler sched;
  RdmaFabricParams rparams;
  SimRdmaLink rlink(sched, rparams);
  auto [rc, rt] = rlink.connect();
  TimeNs rdma_time = -1;
  rt->set_handler([&](pdu::Pdu) { rdma_time = sched.now(); });
  rc->send(control_pdu());
  sched.run();
  // Control message on RDMA lands in a handful of microseconds.
  EXPECT_LT(rdma_time, 10'000);
}

TEST(SimRdmaChannelTest, RegistrationMissesOnlyOnFirstUse) {
  sim::Scheduler sched;
  RdmaFabricParams params;
  params.reg_cache_slots = 4;
  SimRdmaLink link(sched, params);
  auto [client, target] = link.connect();
  int got = 0;
  target->set_handler([&](pdu::Pdu) { got++; });
  // 16 data messages over a 4-slot buffer pool: only 4 registrations.
  for (int i = 0; i < 16; ++i) client->send(data_pdu(4096));
  sched.run();
  EXPECT_EQ(got, 16);
  EXPECT_EQ(link.registration_misses(), 4u);
}

TEST(SimRdmaChannelTest, ControlMessagesNeverRegister) {
  sim::Scheduler sched;
  RdmaFabricParams params;
  SimRdmaLink link(sched, params);
  auto [client, target] = link.connect();
  target->set_handler([](pdu::Pdu) {});
  for (int i = 0; i < 100; ++i) client->send(control_pdu());
  sched.run();
  EXPECT_EQ(link.registration_misses(), 0u);
}

TEST(InstantChannelTest, NextEventDelivery) {
  sim::Scheduler sched;
  auto [a, b] = make_instant_channel_pair(sched);
  TimeNs at = -1;
  b->set_handler([&](pdu::Pdu) { at = sched.now(); });
  a->send(control_pdu());
  sched.run();
  EXPECT_EQ(at, 0);
}

}  // namespace
}  // namespace oaf::net

#include "net/tcp_channel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "sim/real_executor.h"

namespace oaf::net {
namespace {

pdu::Pdu capsule(u16 cid, u64 payload) {
  pdu::Pdu p;
  pdu::CapsuleCmd c;
  c.cmd.cid = cid;
  c.data_len = payload;
  c.in_capsule_data = payload > 0;
  p.header = c;
  p.payload.resize(payload, static_cast<u8>(cid));
  return p;
}

TEST(TcpChannelTest, ListenConnectRoundtrip) {
  sim::RealExecutor server_exec;
  sim::RealExecutor client_exec;

  auto listener = TcpListener::listen(0).take();
  ASSERT_GT(listener.port(), 0);

  std::unique_ptr<MsgChannel> server_ch;
  std::thread acceptor([&] {
    server_ch = listener.accept(server_exec).take();
  });
  auto client_ch = tcp_connect("127.0.0.1", listener.port(), client_exec).take();
  acceptor.join();
  ASSERT_NE(server_ch, nullptr);

  std::atomic<int> got{0};
  std::atomic<bool> payload_ok{false};
  server_ch->set_handler([&](pdu::Pdu p) {
    const auto* c = p.as<pdu::CapsuleCmd>();
    payload_ok = c != nullptr && c->cmd.cid == 5 && p.payload.size() == 4096 &&
                 p.payload[0] == 5;
    got++;
  });
  client_ch->send(capsule(5, 4096));
  while (got.load() == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(payload_ok.load());

  // And the reverse direction.
  std::atomic<int> back{0};
  client_ch->set_handler([&](pdu::Pdu) { back++; });
  server_ch->send(capsule(9, 0));
  while (back.load() == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(back.load(), 1);
}

TEST(TcpChannelTest, ManyFramesOrdered) {
  sim::RealExecutor server_exec;
  sim::RealExecutor client_exec;
  auto listener = TcpListener::listen(0).take();
  std::unique_ptr<MsgChannel> server_ch;
  std::thread acceptor([&] { server_ch = listener.accept(server_exec).take(); });
  auto client_ch = tcp_connect("127.0.0.1", listener.port(), client_exec).take();
  acceptor.join();

  constexpr int kCount = 300;
  std::atomic<int> received{0};
  std::atomic<int> order_errors{0};
  server_ch->set_handler([&](pdu::Pdu p) {
    if (p.as<pdu::CapsuleCmd>()->cmd.cid != received.load() % 65536) {
      order_errors++;
    }
    received++;
  });
  for (int i = 0; i < kCount; ++i) {
    client_ch->send(capsule(static_cast<u16>(i), 512));
  }
  while (received.load() < kCount) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(order_errors.load(), 0);
}

TEST(TcpChannelTest, ConnectToClosedPortFails) {
  sim::RealExecutor exec;
  // Grab an ephemeral port and release it so nothing listens there.
  u16 dead_port = 0;
  {
    auto l = TcpListener::listen(0).take();
    dead_port = l.port();
  }
  auto res = tcp_connect("127.0.0.1", dead_port, exec);
  EXPECT_FALSE(res.is_ok());
}

TEST(TcpChannelTest, BadAddressRejected) {
  sim::RealExecutor exec;
  auto res = tcp_connect("not-an-ip", 1234, exec);
  ASSERT_FALSE(res.is_ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST(TcpChannelTest, PeerCloseDetected) {
  sim::RealExecutor server_exec;
  sim::RealExecutor client_exec;
  auto listener = TcpListener::listen(0).take();
  std::unique_ptr<MsgChannel> server_ch;
  std::thread acceptor([&] { server_ch = listener.accept(server_exec).take(); });
  auto client_ch = tcp_connect("127.0.0.1", listener.port(), client_exec).take();
  acceptor.join();
  server_ch->set_handler([](pdu::Pdu) {});

  client_ch->close();
  // The server's reader thread notices the FIN and flips is_open.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server_ch->is_open() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(server_ch->is_open());
}

}  // namespace
}  // namespace oaf::net

#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace oaf::sim {
namespace {

TEST(SchedulerTest, StartsAtZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerTest, EventsRunInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(300, [&] { order.push_back(3); });
  s.schedule_at(100, [&] { order.push_back(1); });
  s.schedule_at(200, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 300);
}

TEST(SchedulerTest, SameTimeFifoOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(50, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, PostRunsAtCurrentTime) {
  Scheduler s;
  TimeNs seen = -1;
  s.schedule_at(500, [&] {
    s.post([&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, 500);
}

TEST(SchedulerTest, ScheduleAfterAddsDelay) {
  Scheduler s;
  TimeNs seen = -1;
  s.schedule_at(100, [&] {
    s.schedule_after(50, [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, 150);
}

TEST(SchedulerTest, NegativeDelayClampsToNow) {
  Scheduler s;
  TimeNs seen = -1;
  s.schedule_at(100, [&] {
    s.schedule_after(-20, [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, 100);
}

TEST(SchedulerTest, PastTimeClampsToNow) {
  Scheduler s;
  TimeNs seen = -1;
  s.schedule_at(100, [&] {
    s.schedule_at(10, [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, 100);
}

TEST(SchedulerTest, RunUntilStopsAtDeadline) {
  Scheduler s;
  int ran = 0;
  s.schedule_at(100, [&] { ran++; });
  s.schedule_at(200, [&] { ran++; });
  s.schedule_at(300, [&] { ran++; });
  s.run_until(250);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(s.now(), 250);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(ran, 3);
}

TEST(SchedulerTest, RunUntilAdvancesClockWhenIdle) {
  Scheduler s;
  s.run_until(12345);
  EXPECT_EQ(s.now(), 12345);
}

TEST(SchedulerTest, CascadedEventsCount) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 100) s.schedule_after(10, recur);
  };
  s.schedule_after(0, recur);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), 990);
  EXPECT_EQ(s.executed(), 100u);
}

TEST(SchedulerTest, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.post([] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

}  // namespace
}  // namespace oaf::sim

#include "sim/resource.h"

#include <gtest/gtest.h>

namespace oaf::sim {
namespace {

TEST(ThrottleTest, SerializationTime) {
  Scheduler s;
  Throttle t(s, 1e9);  // 1 GB/s
  TimeNs done = 0;
  t.transmit(1'000'000, 0, [&] { done = s.now(); });  // 1 MB -> 1 ms
  s.run();
  EXPECT_EQ(done, 1'000'000);
}

TEST(ThrottleTest, BackToBackQueueing) {
  Scheduler s;
  Throttle t(s, 1e9);
  std::vector<TimeNs> done;
  for (int i = 0; i < 3; ++i) {
    t.transmit(1000, 0, [&] { done.push_back(s.now()); });
  }
  s.run();
  EXPECT_EQ(done, (std::vector<TimeNs>{1000, 2000, 3000}));
}

TEST(ThrottleTest, TailLatencyDoesNotOccupyWire) {
  Scheduler s;
  Throttle t(s, 1e9);
  std::vector<TimeNs> done;
  // Both messages serialize back to back; each adds 500 ns receive-side
  // latency after leaving the wire.
  t.transmit(1000, 500, [&] { done.push_back(s.now()); });
  t.transmit(1000, 500, [&] { done.push_back(s.now()); });
  s.run();
  EXPECT_EQ(done, (std::vector<TimeNs>{1500, 2500}));
}

TEST(ThrottleTest, IdleGapResetsWatermark) {
  Scheduler s;
  Throttle t(s, 1e9);
  TimeNs done = 0;
  t.transmit(1000, 0, [] {});
  s.schedule_at(10'000, [&] {
    t.transmit(1000, 0, [&] { done = s.now(); });
  });
  s.run();
  EXPECT_EQ(done, 11'000);  // starts fresh at t=10000, not queued behind old
}

TEST(ThrottleTest, ByteAndBusyAccounting) {
  Scheduler s;
  Throttle t(s, 2e9);
  t.transmit(2000, 0, [] {});
  t.transmit(2000, 0, [] {});
  s.run();
  EXPECT_EQ(t.bytes_sent(), 4000u);
  EXPECT_EQ(t.busy_time(), 2000);  // 4000 B at 2 GB/s
}

TEST(ThrottleTest, RateMatchesLongRun) {
  Scheduler s;
  Throttle t(s, 1.25e9);  // 10 Gbps
  int delivered = 0;
  constexpr int kMsgs = 1000;
  constexpr u64 kBytes = 125'000;  // 100 us each at 10 Gbps
  for (int i = 0; i < kMsgs; ++i) {
    t.transmit(kBytes, 0, [&] { delivered++; });
  }
  s.run();
  EXPECT_EQ(delivered, kMsgs);
  EXPECT_EQ(s.now(), 100'000ll * kMsgs);
}

}  // namespace
}  // namespace oaf::sim

#include "sim/resource.h"

#include <gtest/gtest.h>

namespace oaf::sim {
namespace {

TEST(AsyncMutexTest, ImmediateGrantWhenFree) {
  Scheduler s;
  AsyncMutex m(s);
  bool granted = false;
  m.acquire([&] { granted = true; });
  s.run();
  EXPECT_TRUE(granted);
  EXPECT_TRUE(m.held());
  m.release();
  EXPECT_FALSE(m.held());
}

TEST(AsyncMutexTest, WaitersQueueFifo) {
  Scheduler s;
  AsyncMutex m(s);
  std::vector<int> order;
  m.acquire([&] { order.push_back(0); });
  m.acquire([&] { order.push_back(1); });
  m.acquire([&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0}));
  EXPECT_EQ(m.waiters(), 2u);
  m.release();
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  m.release();
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  m.release();
  EXPECT_FALSE(m.held());
}

TEST(AsyncMutexTest, CriticalSectionsSerialize) {
  Scheduler s;
  AsyncMutex m(s);
  std::vector<TimeNs> section_start;
  for (int i = 0; i < 3; ++i) {
    m.acquire([&, i] {
      section_start.push_back(s.now());
      s.schedule_after(100, [&] { m.release(); });
    });
  }
  s.run();
  ASSERT_EQ(section_start.size(), 3u);
  EXPECT_EQ(section_start[0], 0);
  EXPECT_EQ(section_start[1], 100);
  EXPECT_EQ(section_start[2], 200);
  EXPECT_EQ(m.contentions(), 2u);
}

TEST(AsyncMutexTest, OwnershipTransfersOnRelease) {
  Scheduler s;
  AsyncMutex m(s);
  m.acquire([] {});
  bool second = false;
  m.acquire([&] { second = true; });
  s.run();
  m.release();  // transfers to waiter; still held
  EXPECT_TRUE(m.held());
  s.run();
  EXPECT_TRUE(second);
  m.release();
  EXPECT_FALSE(m.held());
}

}  // namespace
}  // namespace oaf::sim

#include "sim/resource.h"

#include <gtest/gtest.h>

namespace oaf::sim {
namespace {

TEST(ResourceTest, SingleServerSerializes) {
  Scheduler s;
  Resource r(s, 1);
  std::vector<TimeNs> done;
  for (int i = 0; i < 3; ++i) {
    r.submit(100, [&] { done.push_back(s.now()); });
  }
  s.run();
  EXPECT_EQ(done, (std::vector<TimeNs>{100, 200, 300}));
}

TEST(ResourceTest, ParallelServersOverlap) {
  Scheduler s;
  Resource r(s, 3);
  std::vector<TimeNs> done;
  for (int i = 0; i < 3; ++i) {
    r.submit(100, [&] { done.push_back(s.now()); });
  }
  s.run();
  EXPECT_EQ(done, (std::vector<TimeNs>{100, 100, 100}));
}

TEST(ResourceTest, QueueDrainsInFifoOrder) {
  Scheduler s;
  Resource r(s, 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    r.submit(10, [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ResourceTest, ThroughputMatchesServers) {
  // m servers with service time T complete m jobs per T.
  Scheduler s;
  Resource r(s, 4);
  int completed = 0;
  for (int i = 0; i < 100; ++i) {
    r.submit(1000, [&] { completed++; });
  }
  s.run();
  EXPECT_EQ(completed, 100);
  // 100 jobs / 4 servers * 1000 ns = 25000 ns makespan.
  EXPECT_EQ(s.now(), 25000);
}

TEST(ResourceTest, StatsTrackQueueAndBusy) {
  Scheduler s;
  Resource r(s, 1);
  for (int i = 0; i < 10; ++i) r.submit(50, [] {});
  EXPECT_EQ(r.jobs_submitted(), 10u);
  EXPECT_EQ(r.queue_length(), 9u);  // one started immediately
  s.run();
  EXPECT_EQ(r.jobs_completed(), 10u);
  EXPECT_EQ(r.queue_length(), 0u);
  EXPECT_EQ(r.busy_time(), 500);
  EXPECT_EQ(r.max_queue_length(), 9u);
}

TEST(ResourceTest, LateSubmissionAfterIdle) {
  Scheduler s;
  Resource r(s, 1);
  TimeNs second_done = 0;
  r.submit(100, [] {});
  s.schedule_at(1000, [&] {
    r.submit(100, [&] { second_done = s.now(); });
  });
  s.run();
  EXPECT_EQ(second_done, 1100);
}

TEST(ResourceTest, FreeServersAccounting) {
  Scheduler s;
  Resource r(s, 2);
  EXPECT_EQ(r.free_servers(), 2);
  r.submit(100, [] {});
  EXPECT_EQ(r.free_servers(), 1);
  r.submit(100, [] {});
  EXPECT_EQ(r.free_servers(), 0);
  s.run();
  EXPECT_EQ(r.free_servers(), 2);
}

}  // namespace
}  // namespace oaf::sim

#include "sim/real_executor.h"

#include <gtest/gtest.h>

#include <atomic>

namespace oaf::sim {
namespace {

TEST(RealExecutorTest, PostRunsOnExecutorThread) {
  RealExecutor ex;
  std::atomic<bool> ran{false};
  std::atomic<std::thread::id> tid{};
  ex.post([&] {
    tid = std::this_thread::get_id();
    ran = true;
  });
  ex.drain();
  EXPECT_TRUE(ran.load());
  EXPECT_NE(tid.load(), std::this_thread::get_id());
}

TEST(RealExecutorTest, PostsRunInOrder) {
  RealExecutor ex;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    ex.post([&order, i] { order.push_back(i); });
  }
  ex.drain();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(RealExecutorTest, TimerFiresAfterDelay) {
  RealExecutor ex;
  std::atomic<bool> fired{false};
  const TimeNs start = ex.now();
  std::atomic<TimeNs> fire_time{0};
  ex.schedule_after(2'000'000, [&] {  // 2 ms
    fire_time = ex.now();
    fired = true;
  });
  // drain() waits for due timers; poll until fired.
  while (!fired.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(fire_time.load() - start, 2'000'000);
}

TEST(RealExecutorTest, NowAdvances) {
  RealExecutor ex;
  const TimeNs a = ex.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(ex.now(), a);
}

TEST(RealExecutorTest, CrossThreadPostsSafe) {
  RealExecutor ex;
  std::atomic<int> count{0};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&ex, &count] {
      for (int i = 0; i < 250; ++i) {
        ex.post([&count] { count.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : threads) t.join();
  ex.drain();
  EXPECT_EQ(count.load(), 1000);
}

}  // namespace
}  // namespace oaf::sim

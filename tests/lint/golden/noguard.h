// Planted fixture: missing #pragma once and a parent-relative include.
#pragma once
#include "../common/types.h"

inline int fixture_answer() { return 42; }

// Planted fixture: a literal span begin with no matching end anywhere.
struct Tracer {
  void begin(unsigned track, const char* cat, const char* name, long id,
             long t0);
  void end(unsigned track, const char* cat, const char* name, long id,
           long t1);
};
Tracer& tracer();

void emit(unsigned track) {
  tracer().begin(track, "fixture", "op", 1, 2);
  tracer().end(track, "fixture", "op", 0, 0);
}

// Planted fixture: every metric name below violates the unit-suffix rule.
struct R {
  int* counter(const char*);
  int* histogram(const char*);
  int* gauge(const char*);
};

void register_all(R& r) {
  r.counter("fixture_ios_total");           // missing _total
  r.histogram("fixture_latency_ns");     // missing _ns / _bytes
  r.gauge("fixture_depth_total");     // gauges must not end _total
}

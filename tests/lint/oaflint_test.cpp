// oaflint end-to-end: the real binary over the real tree and over a
// fixture tree with planted violations (DESIGN.md §14).
//
// Three contracts:
//   * the shipped src/ is clean (exit 0) — the same gate CI enforces;
//   * every planted violation class is diagnosed with file:line (exit 1);
//   * --fix repairs exactly the mechanical rules (metric unit suffixes,
//     missing #pragma once, unpaired literal span begins), byte-identical
//     to the checked-in golden files, and leaves the rest flagged.
//
// The binary and tree locations arrive as compile definitions from CMake
// (OAFLINT_BIN, OAFLINT_FIXTURE, OAFLINT_REPO_ROOT).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout only (diagnostics land there)
};

RunResult run_oaflint(const std::string& args) {
  const fs::path out = fs::temp_directory_path() / "oaflint_test_out.txt";
  const std::string cmd = std::string(OAFLINT_BIN) + " " + args + " > " +
                          out.string() + " 2> /dev/null";
  const int rc = std::system(cmd.c_str());
  RunResult r;
  r.exit_code = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  std::ifstream in(out);
  std::ostringstream ss;
  ss << in.rdbuf();
  r.output = ss.str();
  return r;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Recursive copy of the fixture into a scratch dir the test may mutate.
fs::path scratch_fixture() {
  const fs::path dst =
      fs::temp_directory_path() /
      ("oaflint_fix_" + std::to_string(::getpid()));
  fs::remove_all(dst);
  fs::copy(OAFLINT_FIXTURE, dst, fs::copy_options::recursive);
  return dst;
}

TEST(OafLint, RealTreeIsClean) {
  const RunResult r =
      run_oaflint("--root " + std::string(OAFLINT_REPO_ROOT));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output, "") << "clean run must emit no diagnostics";
}

TEST(OafLint, FixtureViolationsAllDiagnosed) {
  const RunResult r =
      run_oaflint("--root " + std::string(OAFLINT_FIXTURE));
  EXPECT_EQ(r.exit_code, 1);
  // One representative per rule, each with a file:line anchor.
  EXPECT_NE(r.output.find("pdu.h:9: pdu-contract: PduType::kBogusOp has no "
                          "kWireBogusOpBytes"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("pdu-contract: PduType::kBogusOp has no "
                          "round-trip coverage"),
            std::string::npos);
  EXPECT_NE(
      r.output.find("spans.cpp:11: tel-span-pairing: span begin (\"fixture\","
                    " \"op\") has no matching end()"),
      std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find(
                "metrics_def.cpp:9: metric-unit-suffix: counter "
                "\"fixture_ios\" must end in _total"),
            std::string::npos);
  EXPECT_NE(r.output.find("histogram \"fixture_latency\" must carry a unit"),
            std::string::npos);
  EXPECT_NE(r.output.find("gauge \"fixture_depth_total\" must not end"),
            std::string::npos);
  EXPECT_NE(r.output.find("initiator.cpp:6: hot-path-hygiene: naked `new`"),
            std::string::npos);
  EXPECT_NE(r.output.find("initiator.cpp:7: hot-path-hygiene: "
                          "std::function"),
            std::string::npos);
  EXPECT_NE(r.output.find("initiator.cpp:15: hot-path-hygiene: raw `malloc`"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("initiator.cpp:16: hot-path-hygiene: raw `calloc`"),
            std::string::npos);
  EXPECT_NE(r.output.find("initiator.cpp:17: hot-path-hygiene: raw `realloc`"),
            std::string::npos);
  // std::free is deliberately NOT a violation (see check_hot_path).
  EXPECT_EQ(r.output.find("raw `free`"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("noguard.h:1: header-hygiene: header is missing "
                          "#pragma once"),
            std::string::npos);
  EXPECT_NE(r.output.find("header-hygiene: relative #include"),
            std::string::npos);
}

TEST(OafLint, ReportFileMirrorsDiagnostics) {
  const fs::path report =
      fs::temp_directory_path() / "oaflint_test_report.txt";
  fs::remove(report);
  const RunResult r = run_oaflint("--root " + std::string(OAFLINT_FIXTURE) +
                                  " --report " + report.string());
  EXPECT_EQ(r.exit_code, 1);
  const std::string body = slurp(report);
  EXPECT_NE(body.find("violations: 13"), std::string::npos) << body;
  EXPECT_NE(body.find("tel-span-pairing"), std::string::npos);
}

TEST(OafLint, FixRepairsMechanicalRulesToGolden) {
  const fs::path dir = scratch_fixture();
  const RunResult r = run_oaflint("--root " + dir.string() + " --fix");
  // Non-mechanical violations (pdu-contract, hot-path, gauge suffix,
  // relative include) must survive the fix pass.
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("hot-path-hygiene"), std::string::npos);
  EXPECT_NE(r.output.find("pdu-contract"), std::string::npos);
  // Mechanical ones are gone...
  EXPECT_EQ(r.output.find("must end in _total"), std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("missing #pragma once"), std::string::npos);
  EXPECT_EQ(r.output.find("tel-span-pairing"), std::string::npos);
  // ...and the rewritten files match the checked-in goldens byte for byte.
  const fs::path golden = fs::path(OAFLINT_REPO_ROOT) / "tests/lint/golden";
  EXPECT_EQ(slurp(dir / "src/telemetry/metrics_def.cpp"),
            slurp(golden / "metrics_def.cpp"));
  EXPECT_EQ(slurp(dir / "src/telemetry/spans.cpp"),
            slurp(golden / "spans.cpp"));
  EXPECT_EQ(slurp(dir / "src/common/noguard.h"),
            slurp(golden / "noguard.h"));
  // A second fix pass is a no-op: same diagnostics, files untouched.
  const std::string before = slurp(dir / "src/telemetry/spans.cpp");
  const RunResult again = run_oaflint("--root " + dir.string() + " --fix");
  EXPECT_EQ(again.exit_code, 1);
  EXPECT_EQ(slurp(dir / "src/telemetry/spans.cpp"), before);
  fs::remove_all(dir);
}

TEST(OafLint, UsageErrorsExitTwo) {
  EXPECT_EQ(run_oaflint("--no-such-flag").exit_code, 2);
  EXPECT_EQ(run_oaflint("--root /nonexistent_dir_for_oaflint").exit_code, 2);
}

}  // namespace

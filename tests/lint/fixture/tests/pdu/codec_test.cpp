// Planted fixture codec test: round-trips ICReq only.
// TEST(Codec, ICReqRoundTrip) { ... }

// Minimal include target for the noguard fixture.
#pragma once

// Planted fixture hot-path file: naked new and std::function are banned on
// the data path (the rule keys on this path name).
#include <functional>

void hot_path() {
  auto* leak = new int(7);
  std::function<void()> erased = [] {};
  erased();
  delete leak;
}

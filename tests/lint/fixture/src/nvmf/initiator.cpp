// Planted fixture hot-path file: naked new and std::function are banned on
// the data path (the rule keys on this path name).
#include <functional>

void hot_path() {
  auto* leak = new int(7);
  std::function<void()> erased = [] {};
  erased();
  delete leak;
}

#include <cstdlib>

void raw_allocators() {
  void* a = std::malloc(64);
  void* b = std::calloc(4, 16);
  a = std::realloc(a, 128);
  std::free(a);  // free alone is NOT flagged: only acquisition is banned
  std::free(b);
}

// Planted fixture wire contract: covers ICReq only.
#pragma once

namespace oaf::pdu {

inline constexpr unsigned long kWireICReqBytes = 4;

}  // namespace oaf::pdu

// Planted fixture: kBogusOp has neither a wire-contract entry nor codec
// round-trip coverage — oaflint must flag both.
#pragma once

namespace oaf::pdu {

enum class PduType : unsigned char {
  kICReq = 0x00,
  kBogusOp = 0x7f,
};

}  // namespace oaf::pdu

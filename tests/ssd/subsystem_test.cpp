#include "ssd/namespace.h"

#include <gtest/gtest.h>

#include "sim/scheduler.h"
#include "ssd/real_device.h"

namespace oaf::ssd {
namespace {

TEST(SubsystemTest, AddAndFindNamespaces) {
  sim::Scheduler sched;
  RealDevice d1(sched, 512, 100);
  RealDevice d2(sched, 4096, 50);
  Subsystem subsys("nqn.2026-07.io.oaf:testsubsys");
  ASSERT_TRUE(subsys.add_namespace(1, &d1));
  ASSERT_TRUE(subsys.add_namespace(2, &d2));
  EXPECT_EQ(subsys.find(1), &d1);
  EXPECT_EQ(subsys.find(2), &d2);
  EXPECT_EQ(subsys.find(3), nullptr);
  EXPECT_EQ(subsys.namespace_count(), 2u);
  EXPECT_EQ(subsys.nqn(), "nqn.2026-07.io.oaf:testsubsys");
}

TEST(SubsystemTest, RejectsInvalidNamespaces) {
  sim::Scheduler sched;
  RealDevice dev(sched, 512, 100);
  Subsystem subsys("nqn");
  EXPECT_FALSE(subsys.add_namespace(0, &dev));      // nsid 0 reserved
  EXPECT_FALSE(subsys.add_namespace(1, nullptr));   // null device
  ASSERT_TRUE(subsys.add_namespace(1, &dev));
  EXPECT_FALSE(subsys.add_namespace(1, &dev));      // duplicate
}

TEST(SubsystemTest, ListReportsGeometry) {
  sim::Scheduler sched;
  RealDevice d1(sched, 512, 1000);
  RealDevice d2(sched, 4096, 500);
  Subsystem subsys("nqn");
  ASSERT_TRUE(subsys.add_namespace(1, &d1));
  ASSERT_TRUE(subsys.add_namespace(2, &d2));
  const auto list = subsys.list();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].nsid, 1u);
  EXPECT_EQ(list[0].block_size, 512u);
  EXPECT_EQ(list[0].num_blocks, 1000u);
  EXPECT_EQ(list[0].capacity_bytes(), 512'000u);
  EXPECT_EQ(list[1].nsid, 2u);
  EXPECT_EQ(list[1].capacity_bytes(), 4096u * 500);
}

}  // namespace
}  // namespace oaf::ssd

#include <gtest/gtest.h>

#include "sim/scheduler.h"
#include "ssd/real_device.h"
#include "ssd/sim_device.h"

namespace oaf::ssd {
namespace {

pdu::NvmeCmd io_cmd(pdu::NvmeOpcode op, u64 slba, u64 bytes) {
  pdu::NvmeCmd cmd;
  cmd.opcode = op;
  cmd.cid = 1;
  cmd.nsid = 1;
  cmd.slba = slba;
  cmd.nlb = static_cast<u32>(bytes / 512 - 1);
  return cmd;
}

TEST(RealDeviceTest, WriteThenReadRoundtrip) {
  sim::Scheduler sched;
  RealDevice dev(sched, 512, 10000);
  std::vector<u8> data(4096, 0xA1);
  bool write_ok = false;
  dev.submit_write(io_cmd(pdu::NvmeOpcode::kWrite, 8, 4096), data,
                   [&](pdu::NvmeCpl cpl, DurNs) { write_ok = cpl.ok(); });
  sched.run();
  EXPECT_TRUE(write_ok);

  std::vector<u8> out(4096);
  bool read_ok = false;
  dev.submit_read(io_cmd(pdu::NvmeOpcode::kRead, 8, 4096), out,
                  [&](pdu::NvmeCpl cpl, DurNs) { read_ok = cpl.ok(); });
  sched.run();
  EXPECT_TRUE(read_ok);
  EXPECT_EQ(out, data);
}

TEST(RealDeviceTest, CompletionIsAsynchronous) {
  sim::Scheduler sched;
  RealDevice dev(sched, 512, 100);
  std::vector<u8> data(512);
  bool done = false;
  dev.submit_write(io_cmd(pdu::NvmeOpcode::kWrite, 0, 512), data,
                   [&](pdu::NvmeCpl, DurNs) { done = true; });
  EXPECT_FALSE(done);  // posted, not inline
  sched.run();
  EXPECT_TRUE(done);
}

TEST(RealDeviceTest, OutOfRangeLba) {
  sim::Scheduler sched;
  RealDevice dev(sched, 512, 100);
  std::vector<u8> data(512);
  pdu::NvmeStatus status = pdu::NvmeStatus::kSuccess;
  dev.submit_write(io_cmd(pdu::NvmeOpcode::kWrite, 100, 512), data,
                   [&](pdu::NvmeCpl cpl, DurNs) { status = cpl.status; });
  sched.run();
  EXPECT_EQ(status, pdu::NvmeStatus::kLbaOutOfRange);
}

TEST(RealDeviceTest, BufferSizeMismatchRejected) {
  sim::Scheduler sched;
  RealDevice dev(sched, 512, 100);
  std::vector<u8> data(1024);  // cmd says 512
  pdu::NvmeStatus status = pdu::NvmeStatus::kSuccess;
  dev.submit_write(io_cmd(pdu::NvmeOpcode::kWrite, 0, 512), data,
                   [&](pdu::NvmeCpl cpl, DurNs) { status = cpl.status; });
  sched.run();
  EXPECT_EQ(status, pdu::NvmeStatus::kInvalidField);
}

TEST(RealDeviceTest, FlushAndIdentifySucceed) {
  sim::Scheduler sched;
  RealDevice dev(sched, 512, 100);
  int ok = 0;
  pdu::NvmeCmd flush;
  flush.opcode = pdu::NvmeOpcode::kFlush;
  dev.submit_other(flush, [&](pdu::NvmeCpl cpl, DurNs) { ok += cpl.ok(); });
  pdu::NvmeCmd ident;
  ident.opcode = pdu::NvmeOpcode::kIdentify;
  dev.submit_other(ident, [&](pdu::NvmeCpl cpl, DurNs) { ok += cpl.ok(); });
  sched.run();
  EXPECT_EQ(ok, 2);
}

TEST(SimDeviceTest, ServiceTimeModel) {
  sim::Scheduler sched;
  SimDeviceParams params;
  params.read_base_ns = 100'000;
  params.read_bytes_per_sec = 1e9;
  params.jitter_frac = 0.0;
  params.parallelism = 1;
  params.max_read_bytes_per_sec = 1e12;
  SimDevice dev(sched, params);

  // Populate.
  std::vector<u8> data(131072, 0x11);
  dev.submit_write(io_cmd(pdu::NvmeOpcode::kWrite, 0, 131072), data,
                   [](pdu::NvmeCpl, DurNs) {});
  sched.run();

  std::vector<u8> out(131072);
  DurNs io_time = 0;
  dev.submit_read(io_cmd(pdu::NvmeOpcode::kRead, 0, 131072), out,
                  [&](pdu::NvmeCpl cpl, DurNs t) {
                    EXPECT_TRUE(cpl.ok());
                    io_time = t;
                  });
  sched.run();
  // 100 us base + 128 KiB at 1 GB/s = ~131 us -> ~231 us total.
  EXPECT_NEAR(static_cast<double>(io_time), 231'072.0, 5'000.0);
  EXPECT_EQ(out, data);
}

TEST(SimDeviceTest, ParallelismBoundsThroughput) {
  sim::Scheduler sched;
  SimDeviceParams params;
  params.read_base_ns = 100'000;
  params.read_bytes_per_sec = 1e12;  // base-dominated
  params.jitter_frac = 0.0;
  params.parallelism = 4;
  params.max_read_bytes_per_sec = 1e12;
  SimDevice dev(sched, params);

  std::vector<std::vector<u8>> bufs(16, std::vector<u8>(512));
  int done = 0;
  for (int i = 0; i < 16; ++i) {
    dev.submit_read(io_cmd(pdu::NvmeOpcode::kRead, static_cast<u64>(i), 512),
                    bufs[static_cast<size_t>(i)],
                    [&](pdu::NvmeCpl, DurNs) { done++; });
  }
  sched.run();
  EXPECT_EQ(done, 16);
  // 16 commands / 4 channels * 100 us = 400 us (+ small serialization).
  EXPECT_NEAR(static_cast<double>(sched.now()), 400'000.0, 10'000.0);
}

TEST(SimDeviceTest, BandwidthCapEnforced) {
  sim::Scheduler sched;
  SimDeviceParams params;
  params.read_base_ns = 1'000;
  params.read_bytes_per_sec = 1e12;
  params.max_read_bytes_per_sec = 1e9;  // 1 GB/s cap
  params.parallelism = 64;
  params.jitter_frac = 0.0;
  SimDevice dev(sched, params);

  constexpr int kIos = 32;
  constexpr u64 kBytes = 1 << 20;
  std::vector<std::vector<u8>> bufs(kIos, std::vector<u8>(kBytes));
  int done = 0;
  for (int i = 0; i < kIos; ++i) {
    dev.submit_read(
        io_cmd(pdu::NvmeOpcode::kRead, static_cast<u64>(i) * (kBytes / 512), kBytes),
        bufs[static_cast<size_t>(i)], [&](pdu::NvmeCpl, DurNs) { done++; });
  }
  sched.run();
  EXPECT_EQ(done, kIos);
  // 32 MiB at 1 GB/s >= ~33.5 ms.
  EXPECT_GE(sched.now(), 33'000'000);
}

TEST(SimDeviceTest, WritesFasterThanReads) {
  sim::Scheduler sched;
  SimDeviceParams params;  // defaults: write base < read base
  params.jitter_frac = 0.0;
  SimDevice dev(sched, params);
  std::vector<u8> buf(4096);

  DurNs write_time = 0;
  dev.submit_write(io_cmd(pdu::NvmeOpcode::kWrite, 0, 4096), buf,
                   [&](pdu::NvmeCpl, DurNs t) { write_time = t; });
  sched.run();
  DurNs read_time = 0;
  dev.submit_read(io_cmd(pdu::NvmeOpcode::kRead, 0, 4096), buf,
                  [&](pdu::NvmeCpl, DurNs t) { read_time = t; });
  sched.run();
  EXPECT_LT(write_time, read_time);
}

TEST(SimDeviceTest, DataIntegrityThroughModel) {
  sim::Scheduler sched;
  SimDeviceParams params;
  SimDevice dev(sched, params);
  std::vector<u8> data(65536);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 13);
  dev.submit_write(io_cmd(pdu::NvmeOpcode::kWrite, 1000, 65536), data,
                   [](pdu::NvmeCpl cpl, DurNs) { EXPECT_TRUE(cpl.ok()); });
  sched.run();
  std::vector<u8> out(65536);
  dev.submit_read(io_cmd(pdu::NvmeOpcode::kRead, 1000, 65536), out,
                  [](pdu::NvmeCpl cpl, DurNs) { EXPECT_TRUE(cpl.ok()); });
  sched.run();
  EXPECT_EQ(out, data);
}

TEST(SimDeviceTest, JitterIsDeterministicPerSeed) {
  auto run_once = [](u64 seed) {
    sim::Scheduler sched;
    SimDeviceParams params;
    params.rng_seed = seed;
    params.jitter_frac = 0.2;
    SimDevice dev(sched, params);
    std::vector<u8> buf(4096);
    DurNs t = 0;
    dev.submit_read(io_cmd(pdu::NvmeOpcode::kRead, 0, 4096), buf,
                    [&](pdu::NvmeCpl, DurNs io) { t = io; });
    sched.run();
    return t;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

}  // namespace
}  // namespace oaf::ssd

#include "ssd/block_store.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace oaf::ssd {
namespace {

TEST(BlockStoreTest, UnwrittenBlocksReadZero) {
  BlockStore store(512, 1000);
  std::vector<u8> out(512, 0xFF);
  ASSERT_TRUE(store.read(10, out));
  for (u8 b : out) EXPECT_EQ(b, 0);
  EXPECT_EQ(store.extents_allocated(), 0u);
}

TEST(BlockStoreTest, WriteReadRoundtrip) {
  BlockStore store(512, 1000);
  std::vector<u8> data(512 * 4);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 3);
  ASSERT_TRUE(store.write(100, data));
  std::vector<u8> out(data.size());
  ASSERT_TRUE(store.read(100, out));
  EXPECT_EQ(out, data);
}

TEST(BlockStoreTest, OverwriteReplaces) {
  BlockStore store(512, 100);
  std::vector<u8> a(512, 1);
  std::vector<u8> b(512, 2);
  ASSERT_TRUE(store.write(5, a));
  ASSERT_TRUE(store.write(5, b));
  std::vector<u8> out(512);
  ASSERT_TRUE(store.read(5, out));
  EXPECT_EQ(out[0], 2);
}

TEST(BlockStoreTest, RangeValidation) {
  BlockStore store(512, 100);
  std::vector<u8> buf(512);
  EXPECT_FALSE(store.write(100, buf));                 // slba == num_blocks
  EXPECT_FALSE(store.write(99, std::vector<u8>(1024)));  // runs past the end
  EXPECT_TRUE(store.write(99, buf));                   // last block OK
  std::vector<u8> odd(100);
  EXPECT_FALSE(store.write(0, odd));  // not a block multiple
  EXPECT_FALSE(store.read(0, odd));
}

TEST(BlockStoreTest, CrossExtentWrites) {
  // Extent is 256 KiB = 512 blocks; write a range straddling the boundary.
  BlockStore store(512, 10000);
  std::vector<u8> data(512 * 600);
  Rng rng(3);
  for (auto& b : data) b = static_cast<u8>(rng.next_u64());
  ASSERT_TRUE(store.write(200, data));
  std::vector<u8> out(data.size());
  ASSERT_TRUE(store.read(200, out));
  EXPECT_EQ(out, data);
  EXPECT_GE(store.extents_allocated(), 2u);
}

TEST(BlockStoreTest, SparseAllocation) {
  BlockStore store(512, 1u << 24);  // 8 GiB namespace
  std::vector<u8> buf(512, 7);
  ASSERT_TRUE(store.write(0, buf));
  ASSERT_TRUE(store.write((1u << 24) - 1, buf));
  EXPECT_EQ(store.extents_allocated(), 2u);  // only the touched extents
  EXPECT_EQ(store.capacity_bytes(), 512ull << 24);
}

TEST(BlockStoreTest, RandomizedReadBackProperty) {
  // Property: after any sequence of writes, reading returns the last write
  // for each block (or zeros if never written). Shadow model with a map.
  BlockStore store(512, 4096);
  std::unordered_map<u64, std::vector<u8>> shadow;
  Rng rng(77);
  for (int iter = 0; iter < 500; ++iter) {
    const u64 slba = rng.next_below(4000);
    const u64 blocks = 1 + rng.next_below(8);
    std::vector<u8> data(512 * blocks);
    for (auto& b : data) b = static_cast<u8>(rng.next_u64());
    ASSERT_TRUE(store.write(slba, data));
    for (u64 b = 0; b < blocks; ++b) {
      shadow[slba + b] = std::vector<u8>(data.begin() + static_cast<long>(b * 512),
                                         data.begin() + static_cast<long>((b + 1) * 512));
    }
  }
  for (const auto& [lba, expect] : shadow) {
    std::vector<u8> out(512);
    ASSERT_TRUE(store.read(lba, out));
    EXPECT_EQ(out, expect) << "lba " << lba;
  }
}

}  // namespace
}  // namespace oaf::ssd

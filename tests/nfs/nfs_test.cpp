#include "nfs/nfs.h"

#include <gtest/gtest.h>

#include "bench/calibration.h"

namespace oaf::nfs {
namespace {

NfsParams fast_params() {
  NfsParams p;
  p.rpc_overhead_ns = 100'000;
  p.link_bytes_per_sec = 1e9;
  p.server_disk_bytes_per_sec = 1e9;
  p.server_disk_latency_ns = 50'000;
  p.dirty_limit_bytes = 1 << 20;
  p.page_cache_bytes_per_sec = 8e9;
  return p;
}

TEST(NfsTest, WriteReadRoundtrip) {
  sim::Scheduler sched;
  NfsClient client(sched, fast_params());
  std::vector<u8> data(100'000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 7);

  bool wrote = false;
  client.write("f", 0, data, [&](Status st) { wrote = st.is_ok(); });
  sched.run();
  ASSERT_TRUE(wrote);
  EXPECT_EQ(client.server_file_size("f"), data.size());

  std::vector<u8> out(data.size());
  bool read = false;
  client.read("f", 0, out, [&](Status st) { read = st.is_ok(); });
  sched.run();
  ASSERT_TRUE(read);
  EXPECT_EQ(out, data);
}

TEST(NfsTest, AsyncWriteCompletesAtCacheSpeed) {
  sim::Scheduler sched;
  NfsParams p = fast_params();
  p.dirty_limit_bytes = 10 << 20;
  NfsClient client(sched, p);
  std::vector<u8> data(1 << 20);

  TimeNs completed_at = -1;
  client.write("f", 0, data, [&](Status) { completed_at = sched.now(); });
  sched.run_until(sched.now() + 1'000'000);
  // 1 MiB at 8 GB/s page cache = 131 us; far below the >1.3 ms wire time.
  EXPECT_GE(completed_at, 0);
  EXPECT_LT(completed_at, 300'000);
}

TEST(NfsTest, SyncWritePaysRpcCost) {
  sim::Scheduler sched;
  NfsParams p = fast_params();
  p.async_mount = false;
  NfsClient client(sched, p);
  std::vector<u8> data(1 << 20);
  TimeNs completed_at = -1;
  client.write("f", 0, data, [&](Status) { completed_at = sched.now(); });
  sched.run();
  // Pipelined RPCs: wire time plus amortized per-RPC overhead — orders of
  // magnitude beyond the page-cache path.
  EXPECT_GT(completed_at, 1'500'000);
}

TEST(NfsTest, DirtyLimitThrottlesWriter) {
  sim::Scheduler sched;
  NfsParams p = fast_params();
  p.dirty_limit_bytes = 256 * 1024;
  NfsClient client(sched, p);
  std::vector<u8> big(2 << 20);  // 8x the dirty limit
  TimeNs completed_at = -1;
  client.write("f", 0, big, [&](Status) { completed_at = sched.now(); });
  sched.run();
  // Must wait for most of the data to reach the server.
  EXPECT_GT(completed_at, 2'000'000);
  EXPECT_LE(client.dirty_bytes(), p.dirty_limit_bytes);
}

TEST(NfsTest, CommitWaitsForFlush) {
  sim::Scheduler sched;
  NfsClient client(sched, fast_params());
  std::vector<u8> data(512 * 1024);
  client.write("f", 0, data, [](Status) {});
  TimeNs committed_at = -1;
  client.commit([&](Status st) {
    EXPECT_TRUE(st.is_ok());
    committed_at = sched.now();
  });
  sched.run();
  EXPECT_EQ(client.dirty_bytes(), 0u);
  // Commit time covers the full RPC stream of 512 KiB.
  EXPECT_GT(committed_at, 500'000);
}

TEST(NfsTest, SequentialReadsBenefitFromReadahead) {
  sim::Scheduler sched;
  NfsParams p = fast_params();
  p.readahead_chunks = 8;
  NfsClient client(sched, p);
  std::vector<u8> data(4 << 20);
  client.write("f", 0, data, [](Status) {});
  bool committed = false;
  client.commit([&](Status) { committed = true; });
  sched.run();
  ASSERT_TRUE(committed);

  // First read pays the RPC; the following ones inside the window are
  // page-cache hits.
  std::vector<u8> buf(64 * 1024);
  TimeNs t0 = sched.now();
  TimeNs first = 0;
  client.read("f", 0, buf, [&](Status) { first = sched.now() - t0; });
  sched.run();
  TimeNs t1 = sched.now();
  TimeNs second = 0;
  client.read("f", 64 * 1024, buf, [&](Status) { second = sched.now() - t1; });
  sched.run();
  EXPECT_LT(second, first / 3);
}

TEST(NfsTest, ShortReadRejected) {
  sim::Scheduler sched;
  NfsClient client(sched, fast_params());
  std::vector<u8> buf(100);
  Status result;
  client.read("ghost", 0, buf, [&](Status st) { result = st; });
  sched.run();
  EXPECT_FALSE(result.is_ok());
}

TEST(NfsTest, OverlappingWritesLastWins) {
  sim::Scheduler sched;
  NfsClient client(sched, fast_params());
  std::vector<u8> a(1000, 1);
  std::vector<u8> b(500, 2);
  client.write("f", 0, a, [](Status) {});
  client.write("f", 250, b, [](Status) {});
  sched.run();
  auto view = client.server_file("f");
  ASSERT_EQ(view.size(), 1000u);
  EXPECT_EQ(view[100], 1);
  EXPECT_EQ(view[400], 2);
  EXPECT_EQ(view[800], 1);
}

TEST(NfsTest, CalibratedPresetStreamsSlowerThanMemory) {
  // Sanity on the Fig 16 regime: committed NFS write bandwidth over the
  // 25 G preset lands in the low hundreds of MiB/s.
  sim::Scheduler sched;
  NfsClient client(sched, oaf::bench::nfs_25g());
  std::vector<u8> data(64 << 20);
  const TimeNs t0 = sched.now();
  client.write("f", 0, data, [](Status) {});
  TimeNs done = -1;
  client.commit([&](Status) { done = sched.now(); });
  sched.run();
  const double mib_s = mib_per_sec(data.size(), done - t0);
  EXPECT_GT(mib_s, 80.0);
  EXPECT_LT(mib_s, 400.0);
}

}  // namespace
}  // namespace oaf::nfs

#include "bench/workload.h"

#include <gtest/gtest.h>

namespace oaf::bench {
namespace {

TEST(WorkloadSpecTest, BuildersCompose) {
  const WorkloadSpec spec =
      WorkloadSpec::rand_mix(512 * kKiB, 0.95).with_qd(64);
  EXPECT_EQ(spec.io_bytes, 512u * kKiB);
  EXPECT_FALSE(spec.sequential);
  EXPECT_DOUBLE_EQ(spec.read_fraction, 0.95);
  EXPECT_EQ(spec.queue_depth, 64u);

  const WorkloadSpec wr = WorkloadSpec::seq_write(4 * kKiB);
  EXPECT_TRUE(wr.sequential);
  EXPECT_DOUBLE_EQ(wr.read_fraction, 0.0);
}

TEST(OffsetStreamTest, SequentialWrapsWithinWorkingSet) {
  WorkloadSpec spec;
  spec.io_bytes = 128 * kKiB;
  spec.sequential = true;
  spec.working_set_bytes = 512 * kKiB;  // 4 slots
  OffsetStream stream(spec);
  std::vector<u64> offsets;
  for (int i = 0; i < 8; ++i) offsets.push_back(stream.next_offset());
  const std::vector<u64> expect = {0,       131072, 262144, 393216,
                                   0,       131072, 262144, 393216};
  EXPECT_EQ(offsets, expect);
}

TEST(OffsetStreamTest, RandomOffsetsAlignedAndBounded) {
  WorkloadSpec spec;
  spec.io_bytes = 4 * kKiB;
  spec.sequential = false;
  spec.working_set_bytes = 64 * kMiB;
  OffsetStream stream(spec);
  for (int i = 0; i < 10000; ++i) {
    const u64 off = stream.next_offset();
    EXPECT_EQ(off % spec.io_bytes, 0u);
    EXPECT_LT(off + spec.io_bytes, spec.working_set_bytes + spec.io_bytes);
  }
}

TEST(OffsetStreamTest, ReadFractionConverges) {
  WorkloadSpec spec;
  spec.read_fraction = 0.7;
  OffsetStream stream(spec);
  int reads = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) reads += stream.next_is_read();
  EXPECT_NEAR(static_cast<double>(reads) / kN, 0.7, 0.01);
}

TEST(OffsetStreamTest, SeedSaltDecorrelatesStreams) {
  WorkloadSpec spec;
  spec.sequential = false;
  spec.working_set_bytes = 1 * kGiB;
  OffsetStream a(spec, 0);
  OffsetStream b(spec, 1);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_offset() == b.next_offset()) same++;
  }
  EXPECT_LT(same, 5);
}

TEST(OffsetStreamTest, TinyWorkingSetStillValid) {
  WorkloadSpec spec;
  spec.io_bytes = 1 * kMiB;
  spec.working_set_bytes = 512 * kKiB;  // smaller than one I/O
  OffsetStream stream(spec);
  EXPECT_EQ(stream.next_offset(), 0u);  // clamps to one slot
  EXPECT_EQ(stream.next_offset(), 0u);
}

}  // namespace
}  // namespace oaf::bench

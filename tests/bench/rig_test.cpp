// Rig-level ordering checks: the calibrated models must reproduce the
// paper's qualitative results (who wins, roughly by how much) before the
// figure benches print them. These are the repo's "shape regression" tests.
#include "bench/rig.h"

#include <gtest/gtest.h>

namespace oaf::bench {
namespace {

WorkloadSpec spec_128k_read() {
  WorkloadSpec spec;
  spec.io_bytes = 128 * kKiB;
  spec.duration = 150 * 1000 * 1000;
  spec.warmup = 20 * 1000 * 1000;
  spec.queue_depth = 64;
  spec.working_set_bytes = 256 << 20;
  return spec;
}

double aggregate_bw(Transport t, int streams, const WorkloadSpec& spec,
                    RigOptions opts = RigOptions{}) {
  sim::Scheduler sched;
  std::vector<StreamSpec> specs;
  for (int i = 0; i < streams; ++i) {
    WorkloadSpec s = spec;
    s.seed = spec.seed + static_cast<u64>(i);
    specs.push_back({t, s});
  }
  Rig rig(sched, opts, specs);
  return Rig::aggregate_mib_s(rig.run());
}

TEST(RigShapeTest, AfBeatsTcp10GByLargeFactor) {
  RigOptions opts;
  opts.tcp = tcp_10g();
  const auto spec = spec_128k_read();
  const double af = aggregate_bw(Transport::kAfShm, 4, spec, opts);
  const double tcp = aggregate_bw(Transport::kTcpStock, 4, spec, opts);
  // Paper: 7.1x peak read bandwidth (we accept a generous band).
  EXPECT_GT(af / tcp, 4.5) << "af=" << af << " tcp=" << tcp;
  EXPECT_LT(af / tcp, 11.0) << "af=" << af << " tcp=" << tcp;
}

TEST(RigShapeTest, AfBeatsRdmaOnFourStreamReads) {
  const auto spec = spec_128k_read();
  const double af = aggregate_bw(Transport::kAfShm, 4, spec);
  const double rdma = aggregate_bw(Transport::kRdma, 4, spec);
  // Paper: 1.78x for 128 KiB reads from four SSDs.
  EXPECT_GT(af / rdma, 1.2) << "af=" << af << " rdma=" << rdma;
  EXPECT_LT(af / rdma, 2.6) << "af=" << af << " rdma=" << rdma;
}

TEST(RigShapeTest, RdmaBeatsEveryTcpGeneration) {
  const auto spec = spec_128k_read();
  const double rdma = aggregate_bw(Transport::kRdma, 4, spec);
  for (const auto& tcp_params : {tcp_10g(), tcp_25g(), tcp_100g()}) {
    RigOptions opts;
    opts.tcp = tcp_params;
    const double tcp = aggregate_bw(Transport::kTcpStock, 4, spec, opts);
    EXPECT_GT(rdma, tcp) << "link " << tcp_params.link_gbps << "G";
  }
}

TEST(RigShapeTest, TcpGenerationsOrderedButCompressed) {
  const auto spec = spec_128k_read();
  RigOptions o10;
  o10.tcp = tcp_10g();
  RigOptions o25;
  o25.tcp = tcp_25g();
  RigOptions o100;
  o100.tcp = tcp_100g();
  const double bw10 = aggregate_bw(Transport::kTcpStock, 4, spec, o10);
  const double bw25 = aggregate_bw(Transport::kTcpStock, 4, spec, o25);
  const double bw100 = aggregate_bw(Transport::kTcpStock, 4, spec, o100);
  // Paper Fig 2/11: faster wires help, but far from proportionally —
  // 10x the link rate buys ~3x the bandwidth (stack-bound).
  EXPECT_GT(bw25, bw10 * 1.2);
  EXPECT_GT(bw100, bw25 * 1.05);
  EXPECT_LT(bw100, bw10 * 5.0);
}

TEST(RigShapeTest, WritesSlowerThanReadsOnTcp) {
  RigOptions opts;
  opts.tcp = tcp_100g();
  const auto rd = spec_128k_read();
  const auto wr = spec_128k_read().with_mix(0.0, true);
  const double read_bw = aggregate_bw(Transport::kTcpStock, 4, rd, opts);
  const double write_bw = aggregate_bw(Transport::kTcpStock, 4, wr, opts);
  EXPECT_GT(read_bw, write_bw);  // target-side staging copy penalty
}

TEST(RigShapeTest, AblationOrderingMatchesFig8) {
  // SHM-baseline < SHM-flow-ctl <= SHM-0-copy for 512 KiB sequential reads,
  // and the baseline already beats TCP-25G (paper: 1.83x).
  WorkloadSpec spec;
  spec.io_bytes = 512 * kKiB;
  spec.duration = 150 * 1000 * 1000;
  spec.warmup = 20 * 1000 * 1000;
  spec.queue_depth = 64;
  spec.working_set_bytes = 512 << 20;

  RigOptions opts;
  opts.tcp = tcp_25g();
  const double tcp = aggregate_bw(Transport::kTcpStock, 1, spec, opts);
  const double baseline =
      aggregate_bw(Transport::kAfShmBaselineLocked, 1, spec, opts);
  const double lockfree = aggregate_bw(Transport::kAfShmLockFree, 1, spec, opts);
  const double flowctl = aggregate_bw(Transport::kAfShmFlowCtl, 1, spec, opts);
  const double zerocopy = aggregate_bw(Transport::kAfShm, 1, spec, opts);

  EXPECT_GT(baseline, tcp * 1.2) << "baseline=" << baseline << " tcp=" << tcp;
  EXPECT_GE(lockfree, baseline * 0.9);
  EXPECT_GT(flowctl, lockfree * 1.05);
  EXPECT_GE(zerocopy, flowctl * 0.95);
}

TEST(RigShapeTest, TailLatencyAfBelowTcpAndRdma) {
  // Fig 13 regime: short mixed 70:30 run at 128 KiB, moderate queue depth
  // (at saturation depths queueing delay swamps every fabric's tail).
  WorkloadSpec spec;
  spec.io_bytes = 128 * kKiB;
  spec.read_fraction = 0.7;
  spec.sequential = true;
  spec.duration = 120 * 1000 * 1000;
  spec.warmup = 0;  // short-running app: connection warmup is in scope
  spec.queue_depth = 16;

  auto p9999 = [&](Transport t) {
    sim::Scheduler sched;
    std::vector<StreamSpec> specs(4, StreamSpec{t, spec});
    for (size_t i = 0; i < specs.size(); ++i) specs[i].workload.seed = 1 + i;
    Rig rig(sched, RigOptions{}, specs);
    auto stats = rig.run();
    Histogram merged;
    for (auto& st : stats) merged.merge(st.latency);
    return merged.p9999();
  };
  const i64 af = p9999(Transport::kAfShm);
  const i64 tcp = p9999(Transport::kTcpStock);
  const i64 rdma = p9999(Transport::kRdma);
  EXPECT_LT(af, tcp);
  EXPECT_LT(af, rdma);  // registration spikes dominate short RDMA runs
}

TEST(RigShapeTest, AfTcpOnlyModeBeatsStockTcp) {
  // The §4.5 TCP optimizations alone (busy polling + chunk tuning) must
  // help when no shm channel exists.
  RigOptions opts;
  opts.tcp = tcp_25g();
  WorkloadSpec spec = spec_128k_read().with_io(512 * kKiB);
  const double stock = aggregate_bw(Transport::kTcpStock, 1, spec, opts);
  const double af_tcp = aggregate_bw(Transport::kAfTcpOnly, 1, spec, opts);
  EXPECT_GT(af_tcp, stock) << "af_tcp=" << af_tcp << " stock=" << stock;
}

TEST(RigShapeTest, RocePhysicalFasterThanRdmaVmAtLowQd) {
  // RoCE ran on physical nodes with a real SSD: lower fixed latency.
  WorkloadSpec spec;
  spec.io_bytes = 4 * kKiB;
  spec.duration = 80 * 1000 * 1000;
  spec.warmup = 10 * 1000 * 1000;
  spec.queue_depth = 1;
  auto mean_lat = [&](Transport t) {
    sim::Scheduler sched;
    Rig rig(sched, RigOptions{}, {StreamSpec{t, spec}});
    return rig.run()[0].avg_latency_us();
  };
  EXPECT_LT(mean_lat(Transport::kRoce), mean_lat(Transport::kRdma));
}

}  // namespace
}  // namespace oaf::bench

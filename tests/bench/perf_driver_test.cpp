#include "bench/perf_driver.h"

#include <gtest/gtest.h>

#include "bench/rig.h"

namespace oaf::bench {
namespace {

WorkloadSpec quick_spec() {
  WorkloadSpec spec;
  spec.duration = 100 * 1000 * 1000;  // 100 ms virtual
  spec.warmup = 10 * 1000 * 1000;
  spec.queue_depth = 16;
  spec.working_set_bytes = 64 << 20;
  return spec;
}

TEST(PerfDriverTest, SeqReadProducesStats) {
  sim::Scheduler sched;
  Rig rig(sched, RigOptions{},
          {StreamSpec{Transport::kAfShm, quick_spec().with_io(128 * 1024)}});
  auto stats = rig.run();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_GT(stats[0].ios_completed, 100u);
  EXPECT_GT(stats[0].bandwidth_mib_s(), 0.0);
  EXPECT_GT(stats[0].latency.p50(), 0);
  EXPECT_GE(stats[0].latency.p9999(), stats[0].latency.p50());
}

TEST(PerfDriverTest, BreakdownComponentsSum) {
  sim::Scheduler sched;
  Rig rig(sched, RigOptions{},
          {StreamSpec{Transport::kTcpStock,
                      quick_spec().with_io(128 * 1024).with_mix(0.0, true)}});
  auto stats = rig.run();
  const LatencyParts mean = stats[0].breakdown.mean();
  EXPECT_GT(mean.io, 0);
  EXPECT_GT(mean.comm, 0);
  EXPECT_GT(mean.other, 0);  // write fill time lands in "other"
  // Mean of components ~ mean end-to-end latency.
  EXPECT_NEAR(static_cast<double>(mean.total()), stats[0].latency.mean(),
              stats[0].latency.mean() * 0.2);
}

TEST(PerfDriverTest, MixedWorkloadRespectsReadFraction) {
  sim::Scheduler sched;
  WorkloadSpec spec = quick_spec().with_io(16 * 1024).with_mix(0.7, false);
  Rig rig(sched, RigOptions{}, {StreamSpec{Transport::kAfShm, spec}});
  auto stats = rig.run();
  // Read/write mix only affects internals; here we just confirm healthy
  // completion volume and sane accounting under a mixed random load.
  EXPECT_GT(stats[0].ios_completed, 200u);
  EXPECT_EQ(stats[0].bytes_moved, stats[0].ios_completed * 16 * 1024);
}

TEST(PerfDriverTest, QueueDepthRaisesThroughputUntilSaturation) {
  auto bw_at = [](u32 qd) {
    sim::Scheduler sched;
    WorkloadSpec spec = quick_spec().with_io(128 * 1024).with_qd(qd);
    Rig rig(sched, RigOptions{}, {StreamSpec{Transport::kAfShm, spec}});
    return Rig::aggregate_mib_s(rig.run());
  };
  const double bw1 = bw_at(1);
  const double bw8 = bw_at(8);
  const double bw64 = bw_at(64);
  EXPECT_GT(bw8, bw1 * 2.5);   // concurrency scales
  EXPECT_GE(bw64, bw8 * 0.9);  // and never collapses at depth
}

TEST(PerfDriverTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Scheduler sched;
    Rig rig(sched, RigOptions{},
            {StreamSpec{Transport::kAfShm, quick_spec().with_io(64 * 1024)}});
    return rig.run()[0].ios_completed;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace oaf::bench

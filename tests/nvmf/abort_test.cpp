// Command-lifetime escalation ladder: per-I/O deadlines, NVMe Abort, shm
// demotion, and the hand-off to the reconnect machine.
//
// The headline property: one stuck command no longer tears down the whole
// association. The deadline wheel notices it, an Abort cancels it at the
// target, and every other in-flight I/O completes on the same connection
// with zero reconnects. When aborts themselves fail, the ladder demotes the
// shm path and finally hands off to PR-1 recovery — each rung observable
// through ResilienceCounters.
#include <gtest/gtest.h>

#include <functional>

#include "af/locality.h"
#include "bench/perf_driver.h"
#include "net/fault_channel.h"
#include "net/pipe_channel.h"
#include "nvmf/deadline_wheel.h"
#include "nvmf/initiator.h"
#include "nvmf/target_service.h"
#include "shm/fault_ring.h"
#include "sim/scheduler.h"
#include "ssd/sim_device.h"

namespace oaf::nvmf {
namespace {

// ---------------------------------------------------------------------------
// DeadlineWheel unit tests
// ---------------------------------------------------------------------------

TEST(DeadlineWheelTest, FiresAtOrAfterDeadlineWithinOneTick) {
  sim::Scheduler sched;
  DeadlineWheel wheel(sched, 250'000);
  int fires = 0;
  u16 fired_cid = 0;
  u64 fired_gen = 0;
  TimeNs fired_at = -1;
  wheel.set_callback([&](u16 cid, u64 gen) {
    fires++;
    fired_cid = cid;
    fired_gen = gen;
    fired_at = sched.now();
  });
  wheel.arm(3, 42, 1'000'000);
  // run() terminating at all proves the tick disarms itself once drained.
  sched.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(fired_cid, 3);
  EXPECT_EQ(fired_gen, 42u);
  EXPECT_GE(fired_at, 1'000'000);          // never early
  EXPECT_LE(fired_at, 1'250'000);          // at most one tick late
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(DeadlineWheelTest, CancelPreventsExpiry) {
  sim::Scheduler sched;
  DeadlineWheel wheel(sched, 250'000);
  int fires = 0;
  wheel.set_callback([&](u16, u64) { fires++; });
  wheel.arm(1, 7, 1'000'000);
  wheel.cancel(1);
  EXPECT_EQ(wheel.armed(), 0u);
  sched.run();
  EXPECT_EQ(fires, 0);
}

TEST(DeadlineWheelTest, RearmSupersedesEarlierDeadline) {
  sim::Scheduler sched;
  DeadlineWheel wheel(sched, 125'000);
  int fires = 0;
  u64 fired_gen = 0;
  TimeNs fired_at = -1;
  wheel.set_callback([&](u16, u64 gen) {
    fires++;
    fired_gen = gen;
    fired_at = sched.now();
  });
  wheel.arm(1, 1, 500'000);
  wheel.arm(1, 2, 2'000'000);  // same cid, new attempt: the only live entry
  sched.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(fired_gen, 2u);
  EXPECT_GE(fired_at, 2'000'000);
}

// ---------------------------------------------------------------------------
// Escalation-ladder integration
// ---------------------------------------------------------------------------

/// Reads wedge for 10 ms of virtual time — far past every deadline in these
/// tests — while writes stay well under them. One slow read is the canonical
/// "single stuck command" without disturbing neighbouring I/O.
ssd::SimDeviceParams slow_read_params() {
  ssd::SimDeviceParams p;
  p.num_blocks = 1 << 18;
  p.read_base_ns = 10'000'000;
  p.write_base_ns = 10'000;
  p.read_bytes_per_sec = 1e12;
  p.write_bytes_per_sec = 1e12;
  p.max_read_bytes_per_sec = 1e12;
  p.max_write_bytes_per_sec = 1e12;
  p.jitter_frac = 0;
  return p;
}

struct AbortHarness {
  explicit AbortHarness(TargetServiceOptions sopts = {af::AfConfig::oaf()})
      : broker(1), device(sched, slow_read_params()), subsystem("nqn.abort") {
    (void)subsystem.add_namespace(1, &device);
    service = std::make_unique<NvmfTargetService>(sched, copier, broker,
                                                  subsystem, sopts);
  }

  std::unique_ptr<net::MsgChannel> dial(const std::string& conn_name) {
    auto [c, t] =
        net::wrap_fault_pair(net::make_pipe_channel_pair(sched, sched), policy);
    client_ch = c.get();
    target_ch = t.get();
    service->accept(std::move(t), conn_name);
    return std::move(c);
  }

  std::unique_ptr<NvmfInitiator> make_initiator(InitiatorOptions iopts) {
    auto init = std::make_unique<NvmfInitiator>(
        sched,
        [this, name = iopts.connection_name] { return dial(name); },
        copier, broker, iopts);
    init->connect([](Status) {});
    return init;
  }

  sim::Scheduler sched;
  net::InlineCopier copier;
  net::FaultPolicy policy;
  af::ShmBroker broker;
  ssd::SimDevice device;
  ssd::Subsystem subsystem;
  std::unique_ptr<NvmfTargetService> service;
  net::FaultChannel* client_ch = nullptr;
  net::FaultChannel* target_ch = nullptr;
};

InitiatorOptions ladder_opts(u32 abort_budget, DurNs timeout = 1'000'000) {
  InitiatorOptions iopts{af::AfConfig::oaf(), 8, "abort", timeout, {}};
  iopts.escalation.abort_budget = abort_budget;
  return iopts;
}

TEST(AbortTest, StuckCommandIsAbortedWithoutTeardown) {
  AbortHarness h;
  auto init = h.make_initiator(ladder_opts(/*abort_budget=*/2));
  h.sched.run_until(500'000);
  ASSERT_TRUE(init->connected());
  ASSERT_TRUE(init->shm_active());

  // One read wedges in the device; four writes share the association.
  std::vector<u8> rbuf(4096);
  pdu::NvmeStatus read_status = pdu::NvmeStatus::kSuccess;
  init->read(1, 0, rbuf,
             [&](NvmfInitiator::IoResult r) { read_status = r.cpl.status; });
  std::vector<u8> wbuf(4096, 0x42);
  int writes_ok = 0;
  for (int i = 0; i < 4; ++i) {
    init->write(1, 8 + static_cast<u64>(i) * 8, wbuf,
                [&](NvmfInitiator::IoResult r) { writes_ok += r.ok(); });
  }
  h.sched.run();

  // The stuck read was surgically removed; everything else survived.
  EXPECT_EQ(read_status, pdu::NvmeStatus::kAbortedByRequest);
  EXPECT_EQ(writes_ok, 4);
  EXPECT_FALSE(init->dead());
  EXPECT_EQ(init->timeouts(), 1u);
  EXPECT_EQ(init->resilience().reconnects, 0u);
  EXPECT_EQ(init->resilience().deadlines_expired, 1u);
  EXPECT_EQ(init->resilience().aborts_sent, 1u);
  EXPECT_EQ(init->resilience().aborts_succeeded, 1u);
  EXPECT_EQ(init->resilience().aborts_failed, 0u);
  EXPECT_EQ(init->resilience().commands_aborted, 1u);
  ASSERT_NE(h.service->find("abort"), nullptr);
  EXPECT_EQ(h.service->find("abort")->aborts_handled(), 1u);
  EXPECT_EQ(h.service->find("abort")->commands_aborted(), 1u);

  // The association keeps serving I/O on the same connection afterwards.
  int more_ok = 0;
  for (int i = 0; i < 3; ++i) {
    init->write(1, 64 + static_cast<u64>(i) * 8, wbuf,
                [&](NvmfInitiator::IoResult r) { more_ok += r.ok(); });
  }
  h.sched.run();
  EXPECT_EQ(more_ok, 3);
  EXPECT_EQ(init->resilience().reconnects, 0u);
}

TEST(AbortTest, LostCompletionIsReplayedInPlace) {
  AbortHarness h;
  auto init = h.make_initiator(ladder_opts(/*abort_budget=*/2));
  h.sched.run_until(500'000);
  ASSERT_TRUE(init->connected());

  // Drop exactly the victim's completion: the target has no record of the
  // command when the Abort arrives (result 1) and the host replays in place.
  int dropped = 0;
  h.target_ch->set_fault([&](pdu::Pdu& p) {
    if (p.type() == pdu::PduType::kCapsuleResp && dropped == 0) {
      dropped++;
      return false;
    }
    return true;
  });
  std::vector<u8> wbuf(4096, 0x17);
  bool ok = false;
  init->write(1, 0, wbuf, [&](NvmfInitiator::IoResult r) { ok = r.ok(); });
  h.sched.run();

  EXPECT_TRUE(ok);  // replayed and completed, all on the same association
  EXPECT_EQ(dropped, 1);
  EXPECT_EQ(init->resilience().aborts_sent, 1u);
  EXPECT_EQ(init->resilience().aborts_succeeded, 1u);
  EXPECT_EQ(init->resilience().commands_retried, 1u);
  EXPECT_EQ(init->resilience().commands_aborted, 0u);
  EXPECT_EQ(init->resilience().reconnects, 0u);
  EXPECT_FALSE(init->dead());
}

TEST(AbortTest, FailedAbortsDemoteShmThenSecondAbortLands) {
  AbortHarness h;
  InitiatorOptions iopts = ladder_opts(/*abort_budget=*/2);
  iopts.escalation.demote_after_failed_aborts = 1;
  auto init = h.make_initiator(iopts);
  h.sched.run_until(500'000);
  ASSERT_TRUE(init->connected());
  ASSERT_TRUE(init->shm_active());

  // The first Abort vanishes on the wire. Its timeout is the signal the
  // ladder treats as "control path struggling while shm is active" and the
  // data path demotes before the retry.
  int aborts_dropped = 0;
  h.client_ch->set_fault([&](pdu::Pdu& p) {
    if (auto* c = p.as<pdu::CapsuleCmd>();
        c != nullptr && c->cmd.opcode == pdu::NvmeOpcode::kAbort &&
        aborts_dropped == 0) {
      aborts_dropped++;
      return false;
    }
    return true;
  });
  std::vector<u8> rbuf(4096);
  pdu::NvmeStatus read_status = pdu::NvmeStatus::kSuccess;
  init->read(1, 0, rbuf,
             [&](NvmfInitiator::IoResult r) { read_status = r.cpl.status; });
  h.sched.run();

  EXPECT_EQ(read_status, pdu::NvmeStatus::kAbortedByRequest);
  EXPECT_FALSE(init->shm_active());  // rung two fired
  EXPECT_EQ(init->resilience().shm_demotions, 1u);
  EXPECT_EQ(init->resilience().aborts_sent, 2u);
  EXPECT_EQ(init->resilience().aborts_failed, 1u);
  EXPECT_EQ(init->resilience().aborts_succeeded, 1u);
  EXPECT_EQ(init->resilience().reconnects, 0u);
  EXPECT_FALSE(init->dead());

  // Demoted but alive: subsequent I/O rides inline TCP on the same
  // association.
  std::vector<u8> wbuf(4096, 0x33);
  bool ok = false;
  init->write(1, 8, wbuf, [&](NvmfInitiator::IoResult r) { ok = r.ok(); });
  h.sched.run();
  EXPECT_TRUE(ok);
}

TEST(AbortTest, AbortBudgetExhaustedHandsOffToReconnect) {
  AbortHarness h;
  InitiatorOptions iopts = ladder_opts(/*abort_budget=*/2);
  iopts.escalation.demote_after_failed_aborts = 1;
  iopts.reconnect.max_attempts = 3;
  iopts.reconnect.initial_backoff_ns = 1'000'000;
  iopts.reconnect.handshake_timeout_ns = 10'000'000;
  iopts.reconnect.max_command_retries = 0;  // the stuck read fails, once
  auto init = h.make_initiator(iopts);
  h.sched.run_until(500'000);
  ASSERT_TRUE(init->connected());

  // Every Abort vanishes: rung one fails twice, rung two demotes, rung
  // three declares the control path dead and hands off to recovery.
  h.client_ch->set_fault([](pdu::Pdu& p) {
    auto* c = p.as<pdu::CapsuleCmd>();
    return c == nullptr || c->cmd.opcode != pdu::NvmeOpcode::kAbort;
  });
  std::vector<u8> rbuf(4096);
  int completions = 0;
  bool read_ok = true;
  init->read(1, 0, rbuf, [&](NvmfInitiator::IoResult r) {
    completions++;
    read_ok = r.ok();
  });
  h.sched.run();

  EXPECT_EQ(completions, 1);  // exactly one callback, despite the ladder
  EXPECT_FALSE(read_ok);
  EXPECT_EQ(init->resilience().aborts_sent, 2u);
  EXPECT_EQ(init->resilience().aborts_failed, 2u);
  EXPECT_EQ(init->resilience().shm_demotions, 1u);
  EXPECT_EQ(init->resilience().reconnects, 1u);
  EXPECT_TRUE(init->connected());
  EXPECT_FALSE(init->dead());

  // The replacement association serves I/O again.
  std::vector<u8> wbuf(4096, 0x55);
  bool ok = false;
  init->write(1, 8, wbuf, [&](NvmfInitiator::IoResult r) { ok = r.ok(); });
  h.sched.run();
  EXPECT_TRUE(ok);
}

// Regression: an abort *storm* must drain. When the real RTT exceeds both
// the command deadline and the abort deadline (an overloaded link — the
// shape a too-tight --cmd-timeout-ms produces on the real tools), every
// command times out, every abort locally times out before its response
// lands, and abort responses arrive for already-erased abort cids. A perf
// driver wedged forever in exactly this scenario: the drain below must
// reach zero with every submission accounted for.
TEST(AbortTest, AbortStormUnderRttInflationDrains) {
  AbortHarness h;
  h.policy.delay_ns = 1'500'000;        // one-way 1.5-2ms: RTT >> deadlines
  h.policy.delay_jitter_ns = 500'000;
  h.policy.seed = 7;
  auto init = h.make_initiator(ladder_opts(/*abort_budget=*/1000));
  h.sched.run_until(20'000'000);
  ASSERT_TRUE(init->connected());

  // perf-style closed loop: keep 8 I/Os outstanding, reissue on completion
  // until t_stop, then drain. Mix reads (device-stuck at 10ms) and writes
  // (fast at the device but RTT-stuck on the wire).
  const TimeNs t_stop = h.sched.now() + 50'000'000;
  std::vector<u8> wbuf(4096, 0x5a);
  std::vector<u8> rbuf(4096);
  int submitted = 0;
  int completed = 0;
  std::function<void()> issue = [&] {
    if (h.sched.now() >= t_stop || init->dead()) return;
    const int n = submitted++;
    auto on_done = [&](NvmfInitiator::IoResult) {
      completed++;
      issue();
    };
    if (n % 4 == 0) {
      init->read(1, static_cast<u64>(n % 64) * 8, rbuf, on_done);
    } else {
      init->write(1, static_cast<u64>(n % 64) * 8, wbuf, on_done);
    }
  };
  for (int i = 0; i < 8; ++i) issue();
  // 2s of virtual time is ~40x the issue window: a storm that has not
  // drained by now never will.
  h.sched.run_until(h.sched.now() + 2'000'000'000);

  EXPECT_EQ(completed, submitted);
  EXPECT_GT(init->resilience().aborts_sent, 0u);
  EXPECT_FALSE(init->dead());
}

// Same storm, driven by the real PerfDriver: zero-copy submissions, big
// chunked I/O, mid-storm demotion. This is a sim replica of
// `oaf_perf --cmd-timeout-ms 1 --abort-budget 1000` against a live target,
// which originally wedged forever waiting for completions that never came.
TEST(AbortTest, PerfDriverSurvivesAbortStorm) {
  AbortHarness h;
  h.policy.delay_ns = 1'500'000;
  h.policy.delay_jitter_ns = 500'000;
  h.policy.seed = 11;
  InitiatorOptions iopts = ladder_opts(/*abort_budget=*/1000);
  iopts.queue_depth = 16;
  auto init = h.make_initiator(iopts);
  h.sched.run_until(20'000'000);
  ASSERT_TRUE(init->connected());

  bench::WorkloadSpec spec;
  spec.io_bytes = 256 * 1024;
  spec.queue_depth = 16;
  spec.read_fraction = 0.5;
  spec.sequential = false;
  spec.duration = 50'000'000;  // 50 ms of issuing
  spec.warmup = 5'000'000;
  spec.working_set_bytes = 16 << 20;
  bench::PerfDriver driver(h.sched, *init, spec);
  bool done = false;
  driver.run([&](RunStats) { done = true; });
  // Give the drain 100x the issue window; a wedge never resolves itself.
  h.sched.run_until(h.sched.now() + 5'000'000'000);

  EXPECT_TRUE(done);
  EXPECT_GT(init->resilience().aborts_sent, 0u);
  EXPECT_FALSE(init->dead());
}

TEST(AbortTest, CorruptedSlotLenDemotesBothEndsWithoutTeardown) {
  AbortHarness h;
  InitiatorOptions iopts{af::AfConfig::oaf(), 8, "abort", 0, {}};
  auto init = h.make_initiator(iopts);
  h.sched.run_until(500'000);
  ASSERT_TRUE(init->connected());
  ASSERT_TRUE(init->shm_active());

  // Forge the published slot's len *after* publish and *before* the capsule
  // reaches the target. Riding the capsule that carries the slot reference
  // phases the corruption exactly like a peer racing its own notification —
  // no concurrent mutation of an owned slot.
  af::AfEndpoint& ep = init->endpoint();
  bool corrupted = false;
  h.client_ch->set_fault([&](pdu::Pdu& p) {
    if (auto* c = p.as<pdu::CapsuleCmd>();
        c != nullptr && c->placement == pdu::DataPlacement::kShmSlot &&
        !corrupted) {
      corrupted = true;
      shm::ShmFaultRing fault(ep.ring());
      fault.corrupt_len(shm::Direction::kClientToTarget, c->shm_slot,
                        ep.slot_bytes() + 1);
    }
    return true;
  });
  std::vector<u8> wbuf(4096, 0x66);
  pdu::NvmeStatus st = pdu::NvmeStatus::kSuccess;
  init->write(1, 0, wbuf,
              [&](NvmfInitiator::IoResult r) { st = r.cpl.status; });
  h.sched.run();

  // The fencing caught the forgery: per-command error, both ends demoted,
  // association intact — never an out-of-bounds read, never a teardown.
  ASSERT_TRUE(corrupted);
  EXPECT_EQ(st, pdu::NvmeStatus::kDataTransferError);
  ASSERT_NE(h.service->find("abort"), nullptr);
  EXPECT_EQ(h.service->find("abort")->peer_misbehavior(), 1u);
  EXPECT_EQ(h.service->find("abort")->shm_demotions(), 1u);
  EXPECT_EQ(init->resilience().shm_demotions, 1u);  // ShmDemote PDU heard
  EXPECT_FALSE(init->shm_active());
  EXPECT_FALSE(init->dead());
  EXPECT_EQ(init->resilience().reconnects, 0u);

  // Post-demotion traffic rides inline TCP on the same association.
  bool ok = false;
  init->write(1, 8, wbuf, [&](NvmfInitiator::IoResult r) { ok = r.ok(); });
  h.sched.run();
  EXPECT_TRUE(ok);
}

TEST(AbortTest, OrphanSlotSweepReclaimsSlotOfExpiredOwner) {
  AbortHarness h;
  InitiatorOptions iopts{af::AfConfig::oaf(), 8, "abort", 0, {}};
  iopts.reconnect.kato_ns = 2'000'000;  // the target's stuck window
  auto init = h.make_initiator(iopts);
  h.sched.run_until(500'000);
  ASSERT_TRUE(init->connected());
  ASSERT_TRUE(init->supports_zero_copy());

  // The application borrows a zero-copy buffer (slot goes kWriting) and then
  // dies without ever submitting — the classic orphan.
  auto ticket = init->zero_copy_write_begin(4096);
  ASSERT_TRUE(ticket.is_ok());

  // First sweep only records the stuck state's age; nothing is reclaimed
  // before the owner's KATO has elapsed.
  EXPECT_EQ(h.service->sweep_orphan_slots(), 0u);
  h.sched.schedule_after(3'000'000, [] {});  // silence past the KATO
  h.sched.run_until(3'600'000);
  EXPECT_EQ(h.service->sweep_orphan_slots(), 1u);
  EXPECT_EQ(h.service->orphan_slots_reclaimed(), 1u);

  // Idempotent: the reclaimed slot is kFree, not stuck.
  EXPECT_EQ(h.service->sweep_orphan_slots(), 0u);
}

TEST(AbortTest, SweepLeavesHealthyTrafficAlone) {
  TargetServiceOptions sopts{af::AfConfig::oaf()};
  sopts.orphan_slot_timeout_ns = 2'000'000;  // fallback window, no KATO
  AbortHarness h(sopts);
  InitiatorOptions iopts{af::AfConfig::oaf(), 8, "abort", 0, {}};
  auto init = h.make_initiator(iopts);
  h.sched.run_until(500'000);
  ASSERT_TRUE(init->connected());

  // Steady writes with sweeps interleaved: an active ring never has a slot
  // stuck past the window, so the sweeper must reclaim nothing.
  std::vector<u8> wbuf(4096, 0x7A);
  int ok = 0;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 4; ++i) {
      init->write(1, static_cast<u64>(round * 4 + i) * 8, wbuf,
                  [&](NvmfInitiator::IoResult r) { ok += r.ok(); });
    }
    h.sched.run();
    EXPECT_EQ(h.service->sweep_orphan_slots(), 0u);
    h.sched.schedule_after(2'500'000, [] {});
    h.sched.run();
  }
  EXPECT_EQ(ok, 16);
  EXPECT_EQ(h.service->orphan_slots_reclaimed(), 0u);
}

}  // namespace
}  // namespace oaf::nvmf

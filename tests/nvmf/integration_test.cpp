// End-to-end NVMe-oF protocol tests on the functional plane: a real
// initiator and target connected by in-memory channels over one
// deterministic scheduler, with a RealDevice-backed namespace. These cover
// the full adaptive-fabric matrix: shm vs TCP-only, staged vs zero-copy,
// in-capsule vs conservative flow control.
#include <gtest/gtest.h>

#include "af/locality.h"
#include "common/rng.h"
#include "net/pipe_channel.h"
#include "nvmf/initiator.h"
#include "nvmf/target.h"
#include "sim/scheduler.h"
#include "ssd/real_device.h"

namespace oaf::nvmf {
namespace {

struct Harness {
  // The broker is the per-host helper process: co-located endpoints share
  // one; a remote client has its own broker with a different host token.
  explicit Harness(af::AfConfig cfg, bool co_located = true, u32 queue_depth = 32)
      : target_broker(1),
        remote_broker(2),
        client_broker(co_located ? target_broker : remote_broker),
        device(sched, 512, 1 << 20),
        subsystem("nqn.2026-07.io.oaf:test") {
    (void)subsystem.add_namespace(1, &device);
    auto pair = net::make_pipe_channel_pair(sched, sched);
    client_ch = std::move(pair.first);
    target_ch = std::move(pair.second);

    TargetOptions topts;
    topts.af = cfg;
    topts.connection_name = "itest";
    target = std::make_unique<NvmfTargetConnection>(
        sched, *target_ch, copier, target_broker, subsystem, topts);

    InitiatorOptions iopts;
    iopts.af = cfg;
    iopts.queue_depth = queue_depth;
    iopts.connection_name = "itest";
    initiator = std::make_unique<NvmfInitiator>(sched, *client_ch, copier,
                                                client_broker, iopts);

    bool connected = false;
    initiator->connect([&](Status st) { connected = st.is_ok(); });
    sched.run();
    EXPECT_TRUE(connected);
  }

  sim::Scheduler sched;
  net::InlineCopier copier;
  af::ShmBroker target_broker;
  af::ShmBroker remote_broker;
  af::ShmBroker& client_broker;
  ssd::RealDevice device;
  ssd::Subsystem subsystem;
  std::unique_ptr<net::MsgChannel> client_ch;
  std::unique_ptr<net::MsgChannel> target_ch;
  std::unique_ptr<NvmfTargetConnection> target;
  std::unique_ptr<NvmfInitiator> initiator;
};

std::vector<u8> pattern(u64 n, u8 seed) {
  std::vector<u8> v(n);
  for (u64 i = 0; i < n; ++i) v[i] = static_cast<u8>(seed + i * 7);
  return v;
}

class IoSizeSweep
    : public ::testing::TestWithParam<std::tuple<bool, u64>> {};

TEST_P(IoSizeSweep, WriteReadRoundtrip) {
  const auto [use_shm, io_bytes] = GetParam();
  af::AfConfig cfg = use_shm ? af::AfConfig::oaf() : af::AfConfig::stock_tcp();
  cfg.zero_copy = false;  // staged paths here; zero-copy covered separately
  Harness h(cfg);
  EXPECT_EQ(h.initiator->shm_active(), use_shm);

  const auto data = pattern(io_bytes, 3);
  bool write_ok = false;
  h.initiator->write(1, 100, data, [&](NvmfInitiator::IoResult r) {
    write_ok = r.ok();
  });
  h.sched.run();
  ASSERT_TRUE(write_ok);

  std::vector<u8> out(io_bytes);
  bool read_ok = false;
  h.initiator->read(1, 100, out, [&](NvmfInitiator::IoResult r) {
    read_ok = r.ok();
  });
  h.sched.run();
  ASSERT_TRUE(read_ok);
  EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(
    ShmAndTcp, IoSizeSweep,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values<u64>(512, 4096, 8192, 16 * 1024,
                                              128 * 1024, 512 * 1024)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "shm" : "tcp") + "_" +
             std::to_string(std::get<1>(info.param)) + "B";
    });

TEST(NvmfIntegrationTest, RemoteClientFallsBackToTcp) {
  Harness h(af::AfConfig::oaf(), /*co_located=*/false);
  EXPECT_FALSE(h.initiator->shm_active());
  EXPECT_FALSE(h.initiator->supports_zero_copy());

  const auto data = pattern(128 * 1024, 9);
  std::vector<u8> out(data.size());
  int ok = 0;
  h.initiator->write(1, 0, data, [&](auto r) { ok += r.ok(); });
  h.sched.run();
  h.initiator->read(1, 0, out, [&](auto r) { ok += r.ok(); });
  h.sched.run();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(out, data);
}

TEST(NvmfIntegrationTest, ZeroCopyWrite) {
  Harness h(af::AfConfig::oaf());
  ASSERT_TRUE(h.initiator->supports_zero_copy());

  auto ticket = h.initiator->zero_copy_write_begin(64 * 1024);
  ASSERT_TRUE(ticket.is_ok()) << ticket.status().to_string();
  const auto data = pattern(64 * 1024, 21);
  std::copy(data.begin(), data.end(), ticket.value().buffer.begin());

  bool ok = false;
  h.initiator->zero_copy_write(ticket.value(), 1, 500, 64 * 1024,
                               [&](auto r) { ok = r.ok(); });
  h.sched.run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(h.initiator->endpoint().zero_copy_publishes(), 1u);
  EXPECT_EQ(h.initiator->endpoint().staged_copies(), 0u);

  std::vector<u8> out(64 * 1024);
  bool read_ok = false;
  h.initiator->read(1, 500, out, [&](auto r) { read_ok = r.ok(); });
  h.sched.run();
  ASSERT_TRUE(read_ok);
  EXPECT_EQ(out, data);
}

TEST(NvmfIntegrationTest, ZeroCopyRead) {
  Harness h(af::AfConfig::oaf());
  const auto data = pattern(32 * 1024, 5);
  bool wrote = false;
  h.initiator->write(1, 64, data, [&](auto r) { wrote = r.ok(); });
  h.sched.run();
  ASSERT_TRUE(wrote);

  bool checked = false;
  h.initiator->zero_copy_read(
      1, 64, 32 * 1024,
      [&](Result<NvmfInitiator::ReadView> view, NvmfInitiator::IoResult r) {
        ASSERT_TRUE(view.is_ok()) << view.status().to_string();
        EXPECT_TRUE(r.ok());
        ASSERT_EQ(view.value().data.size(), 32u * 1024);
        EXPECT_TRUE(std::equal(data.begin(), data.end(),
                               view.value().data.begin()));
        view.value().release();
        checked = true;
      });
  h.sched.run();
  EXPECT_TRUE(checked);
  // Slot reclaimed: a follow-up I/O on the same cid space works.
  bool again = false;
  std::vector<u8> out(1024);
  h.initiator->read(1, 64, out, [&](auto r) { again = r.ok(); });
  h.sched.run();
  EXPECT_TRUE(again);
}

TEST(NvmfIntegrationTest, FlushAndIdentify) {
  Harness h(af::AfConfig::oaf());
  bool flushed = false;
  h.initiator->flush(1, [&](auto r) { flushed = r.ok(); });
  h.sched.run();
  EXPECT_TRUE(flushed);

  bool identified = false;
  h.initiator->identify(1, [&](Result<std::pair<u32, u64>> r) {
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    EXPECT_EQ(r.value().first, 512u);
    EXPECT_EQ(r.value().second, 1u << 20);
    identified = true;
  });
  h.sched.run();
  EXPECT_TRUE(identified);
}

TEST(NvmfIntegrationTest, InvalidNamespaceRejected) {
  Harness h(af::AfConfig::oaf());
  std::vector<u8> out(512);
  pdu::NvmeStatus status = pdu::NvmeStatus::kSuccess;
  h.initiator->read(99, 0, out, [&](auto r) { status = r.cpl.status; });
  h.sched.run();
  EXPECT_EQ(status, pdu::NvmeStatus::kInvalidNamespace);
}

TEST(NvmfIntegrationTest, OutOfRangeLbaReported) {
  Harness h(af::AfConfig::oaf());
  std::vector<u8> buf(512);
  pdu::NvmeStatus status = pdu::NvmeStatus::kSuccess;
  h.initiator->write(1, (1ull << 20) + 5, buf, [&](auto r) {
    status = r.cpl.status;
  });
  h.sched.run();
  EXPECT_EQ(status, pdu::NvmeStatus::kLbaOutOfRange);
}

TEST(NvmfIntegrationTest, QueueDepthOverflowQueuesInternally) {
  Harness h(af::AfConfig::oaf(), true, /*queue_depth=*/4);
  const auto data = pattern(4096, 1);
  int completed = 0;
  constexpr int kTotal = 50;
  for (int i = 0; i < kTotal; ++i) {
    h.initiator->write(1, static_cast<u64>(i) * 8, data,
                       [&](auto r) { completed += r.ok(); });
  }
  h.sched.run();
  EXPECT_EQ(completed, kTotal);
  EXPECT_EQ(h.initiator->ios_completed(), static_cast<u64>(kTotal));
  EXPECT_EQ(h.target->commands_served(), static_cast<u64>(kTotal));
}

TEST(NvmfIntegrationTest, ManyMixedIosDataIntegrity) {
  Harness h(af::AfConfig::oaf());
  Rng rng(42);
  std::unordered_map<u64, std::vector<u8>> shadow;
  int outstanding = 0;
  // Write phase: random blocks.
  for (int i = 0; i < 200; ++i) {
    const u64 slba = rng.next_below(1000) * 64;
    const u64 bytes = (1 + rng.next_below(64)) * 512;
    auto data = std::make_shared<std::vector<u8>>(bytes);
    for (auto& b : *data) b = static_cast<u8>(rng.next_u64());
    for (u64 blk = 0; blk < bytes / 512; ++blk) {
      shadow[slba + blk] = std::vector<u8>(
          data->begin() + static_cast<long>(blk * 512),
          data->begin() + static_cast<long>((blk + 1) * 512));
    }
    outstanding++;
    h.initiator->write(1, slba, *data, [&outstanding, data](auto r) {
      EXPECT_TRUE(r.ok());
      outstanding--;
    });
    // Interleave: drain periodically to mix orderings.
    if (i % 7 == 0) h.sched.run();
  }
  h.sched.run();
  EXPECT_EQ(outstanding, 0);

  // Read-back phase verifies against the shadow model.
  int checked = 0;
  for (const auto& [lba, expect] : shadow) {
    auto out = std::make_shared<std::vector<u8>>(512);
    h.initiator->read(1, lba, *out, [&checked, out, expect = expect](auto r) {
      EXPECT_TRUE(r.ok());
      EXPECT_EQ(*out, expect);
      checked++;
    });
  }
  h.sched.run();
  EXPECT_EQ(checked, static_cast<int>(shadow.size()));
}

TEST(NvmfIntegrationTest, LatencyInstrumentationPlausible) {
  Harness h(af::AfConfig::oaf());
  const auto data = pattern(128 * 1024, 2);
  NvmfInitiator::IoResult res;
  h.initiator->write(1, 0, data, [&](auto r) { res = r; });
  h.sched.run();
  ASSERT_TRUE(res.ok());
  EXPECT_GE(res.total_ns, 0);
  EXPECT_GE(res.comm_ns(), 0);
  // io + target + comm <= total by construction.
  EXPECT_LE(static_cast<DurNs>(res.io_time_ns + res.target_time_ns),
            res.total_ns);
}

TEST(NvmfIntegrationTest, ConservativeFlowOnShmStillCorrect) {
  // Ablation config: shm channel present, R2T flow retained.
  af::AfConfig cfg = af::AfConfig::oaf();
  cfg.flow_control = af::FlowControlMode::kConservative;
  cfg.zero_copy = false;
  Harness h(cfg);
  ASSERT_TRUE(h.initiator->shm_active());

  const auto data = pattern(256 * 1024, 8);
  std::vector<u8> out(data.size());
  int ok = 0;
  h.initiator->write(1, 0, data, [&](auto r) { ok += r.ok(); });
  h.sched.run();
  h.initiator->read(1, 0, out, [&](auto r) { ok += r.ok(); });
  h.sched.run();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(out, data);
  EXPECT_GT(h.target->r2ts_sent(), 0u);
}

TEST(NvmfIntegrationTest, EncryptedShmEndToEnd) {
  af::AfConfig cfg = af::AfConfig::oaf();
  cfg.encrypt_shm = true;
  cfg.shm_key = 0x5EC12E7;
  Harness h(cfg);
  ASSERT_TRUE(h.initiator->shm_active());
  EXPECT_FALSE(h.initiator->supports_zero_copy());  // demoted by encryption

  const auto data = pattern(128 * 1024, 77);
  std::vector<u8> out(data.size());
  int ok = 0;
  h.initiator->write(1, 64, data, [&](auto r) { ok += r.ok(); });
  h.sched.run();
  h.initiator->read(1, 64, out, [&](auto r) { ok += r.ok(); });
  h.sched.run();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(out, data);
}

TEST(NvmfIntegrationTest, LockedShmModeCorrect) {
  af::AfConfig cfg = af::AfConfig::oaf();
  cfg.shm_access = af::ShmAccessMode::kLocked;
  cfg.zero_copy = false;
  Harness h(cfg);
  ASSERT_TRUE(h.initiator->shm_active());
  const auto data = pattern(64 * 1024, 4);
  std::vector<u8> out(data.size());
  int ok = 0;
  h.initiator->write(1, 8, data, [&](auto r) { ok += r.ok(); });
  h.sched.run();
  h.initiator->read(1, 8, out, [&](auto r) { ok += r.ok(); });
  h.sched.run();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace oaf::nvmf

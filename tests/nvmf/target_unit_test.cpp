// Target-side protocol unit tests: drive the target connection directly
// with hand-built PDUs (no initiator) and assert its responses — the
// surface a (possibly hostile) remote peer controls.
#include <gtest/gtest.h>

#include "af/locality.h"
#include "net/sim_channel.h"
#include "nvmf/target.h"
#include "sim/scheduler.h"
#include "ssd/real_device.h"

namespace oaf::nvmf {
namespace {

struct TargetHarness {
  explicit TargetHarness(af::AfConfig cfg = af::AfConfig::stock_tcp())
      : broker(1), device(sched, 512, 4096), subsystem("nqn.unit") {
    (void)subsystem.add_namespace(1, &device);
    auto pair = net::make_instant_channel_pair(sched);
    peer = std::move(pair.first);    // we play the client
    target_ch = std::move(pair.second);
    target = std::make_unique<NvmfTargetConnection>(
        sched, *target_ch, copier, broker, subsystem,
        TargetOptions{cfg, "unit"});
    peer->set_handler([this](pdu::Pdu p) { received.push_back(std::move(p)); });
  }

  void send(pdu::Pdu p) {
    peer->send(std::move(p));
    sched.run();
  }

  /// First received PDU of a type, or nullptr.
  template <typename T>
  const T* find() const {
    for (const auto& p : received) {
      if (const T* h = p.as<T>()) return h;
    }
    return nullptr;
  }

  sim::Scheduler sched;
  net::InlineCopier copier;
  af::ShmBroker broker;
  ssd::RealDevice device;
  ssd::Subsystem subsystem;
  std::unique_ptr<net::MsgChannel> peer;
  std::unique_ptr<net::MsgChannel> target_ch;
  std::unique_ptr<NvmfTargetConnection> target;
  std::vector<pdu::Pdu> received;
};

pdu::Pdu icreq(u64 token, bool want_shm) {
  pdu::ICReq req;
  req.pfv = 1;
  req.node_token = token;
  req.want_shm = want_shm;
  pdu::Pdu p;
  p.header = req;
  return p;
}

TEST(TargetUnitTest, HandshakeRespondsWithICResp) {
  TargetHarness h;
  h.send(icreq(1, false));
  const auto* resp = h.find<pdu::ICResp>();
  ASSERT_NE(resp, nullptr);
  EXPECT_FALSE(resp->shm_granted);  // stock config never grants
  EXPECT_GT(resp->maxh2cdata, 0u);
}

TEST(TargetUnitTest, ShmGrantRequiresMatchingToken) {
  TargetHarness h(af::AfConfig::oaf());
  h.send(icreq(/*token=*/999, /*want_shm=*/true));  // wrong host
  const auto* resp = h.find<pdu::ICResp>();
  ASSERT_NE(resp, nullptr);
  EXPECT_FALSE(resp->shm_granted);
  EXPECT_FALSE(h.target->shm_active());
}

TEST(TargetUnitTest, ReadReturnsDataAndCompletion) {
  TargetHarness h;
  h.send(icreq(1, false));
  h.received.clear();

  pdu::CapsuleCmd cmd;
  cmd.cmd.opcode = pdu::NvmeOpcode::kRead;
  cmd.cmd.cid = 3;
  cmd.cmd.nsid = 1;
  cmd.cmd.slba = 0;
  cmd.cmd.nlb = 7;  // 8 blocks = 4096 B
  pdu::Pdu p;
  p.header = cmd;
  h.send(std::move(p));

  const auto* data = h.find<pdu::C2HData>();
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->cid, 3);
  EXPECT_EQ(data->length, 4096u);
  EXPECT_EQ(data->placement, pdu::DataPlacement::kInline);
  const auto* resp = h.find<pdu::CapsuleResp>();
  ASSERT_NE(resp, nullptr);  // stock mode keeps the separate completion
  EXPECT_TRUE(resp->cpl.ok());
}

TEST(TargetUnitTest, LargeWriteGetsR2T) {
  TargetHarness h;
  h.send(icreq(1, false));
  h.received.clear();

  pdu::CapsuleCmd cmd;
  cmd.cmd.opcode = pdu::NvmeOpcode::kWrite;
  cmd.cmd.cid = 4;
  cmd.cmd.nsid = 1;
  cmd.cmd.nlb = 63;  // 32 KiB > 8 KiB threshold
  cmd.in_capsule_data = false;
  cmd.data_len = 64 * 512;
  pdu::Pdu p;
  p.header = cmd;
  h.send(std::move(p));

  const auto* r2t = h.find<pdu::R2T>();
  ASSERT_NE(r2t, nullptr);
  EXPECT_EQ(r2t->cid, 4);
  EXPECT_EQ(r2t->length, 64u * 512);
  EXPECT_EQ(h.target->r2ts_sent(), 1u);
}

TEST(TargetUnitTest, WriteLengthMismatchRejected) {
  TargetHarness h;
  h.send(icreq(1, false));
  h.received.clear();

  pdu::CapsuleCmd cmd;
  cmd.cmd.opcode = pdu::NvmeOpcode::kWrite;
  cmd.cmd.cid = 5;
  cmd.cmd.nsid = 1;
  cmd.cmd.nlb = 7;         // claims 4096 B
  cmd.in_capsule_data = true;
  cmd.data_len = 512;      // but advertises 512
  pdu::Pdu p;
  p.header = cmd;
  p.payload.resize(512);
  h.send(std::move(p));

  const auto* resp = h.find<pdu::CapsuleResp>();
  ASSERT_NE(resp, nullptr);
  EXPECT_EQ(resp->cpl.status, pdu::NvmeStatus::kInvalidField);
}

TEST(TargetUnitTest, InCapsulePayloadSizeMismatchRejected) {
  TargetHarness h;
  h.send(icreq(1, false));
  h.received.clear();

  pdu::CapsuleCmd cmd;
  cmd.cmd.opcode = pdu::NvmeOpcode::kWrite;
  cmd.cmd.cid = 6;
  cmd.cmd.nsid = 1;
  cmd.cmd.nlb = 7;
  cmd.in_capsule_data = true;
  cmd.data_len = 4096;
  pdu::Pdu p;
  p.header = cmd;
  p.payload.resize(100);  // lies about the payload
  h.send(std::move(p));

  const auto* resp = h.find<pdu::CapsuleResp>();
  ASSERT_NE(resp, nullptr);
  EXPECT_EQ(resp->cpl.status, pdu::NvmeStatus::kDataTransferError);
}

TEST(TargetUnitTest, UnknownNamespaceRejected) {
  TargetHarness h;
  h.send(icreq(1, false));
  h.received.clear();

  pdu::CapsuleCmd cmd;
  cmd.cmd.opcode = pdu::NvmeOpcode::kRead;
  cmd.cmd.cid = 7;
  cmd.cmd.nsid = 42;
  pdu::Pdu p;
  p.header = cmd;
  h.send(std::move(p));

  const auto* resp = h.find<pdu::CapsuleResp>();
  ASSERT_NE(resp, nullptr);
  EXPECT_EQ(resp->cpl.status, pdu::NvmeStatus::kInvalidNamespace);
}

TEST(TargetUnitTest, H2CDataForUnknownCidTerminates) {
  TargetHarness h;
  h.send(icreq(1, false));
  h.received.clear();

  pdu::H2CData h2c;
  h2c.cid = 99;
  h2c.length = 512;
  pdu::Pdu p;
  p.header = h2c;
  p.payload.resize(512);
  h.send(std::move(p));

  const auto* term = h.find<pdu::TermReq>();
  ASSERT_NE(term, nullptr);
  EXPECT_FALSE(term->from_host);
}

TEST(TargetUnitTest, H2COverflowRejectedPerCommand) {
  TargetHarness h;
  h.send(icreq(1, false));
  h.received.clear();

  // Open a conservative write of 32 KiB...
  pdu::CapsuleCmd cmd;
  cmd.cmd.opcode = pdu::NvmeOpcode::kWrite;
  cmd.cmd.cid = 8;
  cmd.cmd.nsid = 1;
  cmd.cmd.nlb = 63;
  cmd.data_len = 64 * 512;
  pdu::Pdu p;
  p.header = cmd;
  h.send(std::move(p));
  h.received.clear();

  // ...then send a chunk that runs past the granted buffer.
  pdu::H2CData h2c;
  h2c.cid = 8;
  h2c.offset = 30 * 1024;
  h2c.length = 8 * 1024;  // 30K + 8K > 32K
  pdu::Pdu d;
  d.header = h2c;
  d.payload.resize(8 * 1024);
  h.send(std::move(d));

  const auto* resp = h.find<pdu::CapsuleResp>();
  ASSERT_NE(resp, nullptr);
  EXPECT_EQ(resp->cpl.status, pdu::NvmeStatus::kDataTransferError);
}

TEST(TargetUnitTest, IdentifyReportsGeometry) {
  TargetHarness h;
  h.send(icreq(1, false));
  h.received.clear();

  pdu::CapsuleCmd cmd;
  cmd.cmd.opcode = pdu::NvmeOpcode::kIdentify;
  cmd.cmd.cid = 9;
  cmd.cmd.nsid = 1;
  pdu::Pdu p;
  p.header = cmd;
  h.send(std::move(p));

  ASSERT_FALSE(h.received.empty());
  const auto& resp_pdu = h.received.front();
  const auto* resp = resp_pdu.as<pdu::CapsuleResp>();
  ASSERT_NE(resp, nullptr);
  ASSERT_EQ(resp_pdu.payload.size(), 12u);
  u32 bs = 0;
  for (int i = 0; i < 4; ++i) bs |= static_cast<u32>(resp_pdu.payload[i]) << (8 * i);
  EXPECT_EQ(bs, 512u);
}

TEST(TargetUnitTest, ShmCapsuleWithoutChannelRejected) {
  // Claim shm placement on a connection that never negotiated shm.
  TargetHarness h;
  h.send(icreq(1, false));
  h.received.clear();

  pdu::CapsuleCmd cmd;
  cmd.cmd.opcode = pdu::NvmeOpcode::kWrite;
  cmd.cmd.cid = 10;
  cmd.cmd.nsid = 1;
  cmd.cmd.nlb = 7;
  cmd.in_capsule_data = true;
  cmd.placement = pdu::DataPlacement::kShmSlot;
  cmd.shm_slot = 0;
  cmd.data_len = 4096;
  pdu::Pdu p;
  p.header = cmd;
  h.send(std::move(p));

  const auto* resp = h.find<pdu::CapsuleResp>();
  ASSERT_NE(resp, nullptr);
  EXPECT_EQ(resp->cpl.status, pdu::NvmeStatus::kDataTransferError);
}

}  // namespace
}  // namespace oaf::nvmf

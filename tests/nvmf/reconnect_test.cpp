// Connection resilience: the initiator's reconnect state machine must
// re-dial through its ChannelFactory after transport faults, replay queued
// and safely-retryable in-flight commands, and keep every fault invisible
// to the application. Faults are injected with the seeded net::FaultChannel
// so every scenario replays deterministically.
#include <gtest/gtest.h>

#include <functional>

#include "af/locality.h"
#include "net/fault_channel.h"
#include "net/pipe_channel.h"
#include "nvmf/initiator.h"
#include "nvmf/target_service.h"
#include "sim/scheduler.h"
#include "ssd/real_device.h"

namespace oaf::nvmf {
namespace {

InitiatorOptions resilient_opts(af::AfConfig cfg = af::AfConfig::oaf()) {
  InitiatorOptions iopts{cfg, 8, "reconn", 0, {}};
  iopts.command_timeout_ns = 5'000'000;
  iopts.reconnect.max_attempts = 10;
  iopts.reconnect.initial_backoff_ns = 1'000'000;
  iopts.reconnect.handshake_timeout_ns = 10'000'000;
  return iopts;
}

/// Initiator dialing a NvmfTargetService through fresh FaultChannel-wrapped
/// pipe pairs: every (re)connect attempt produces a brand-new channel pair
/// and a brand-new target-side association, like a real re-dial would.
struct ReconnectHarness {
  explicit ReconnectHarness(InitiatorOptions iopts,
                            af::AfConfig target_cfg = af::AfConfig::oaf())
      : broker(1), device(sched, 512, 1 << 18), subsystem("nqn.reconn") {
    (void)subsystem.add_namespace(1, &device);
    TargetServiceOptions sopts;
    sopts.af = target_cfg;
    service = std::make_unique<NvmfTargetService>(sched, copier, broker,
                                                  subsystem, sopts);
    initiator = std::make_unique<NvmfInitiator>(
        sched, [this] { return dial(); }, copier, broker, iopts);
    initiator->connect([](Status) {});
  }

  std::unique_ptr<net::MsgChannel> dial() {
    dials++;
    if (unreachable) return nullptr;
    net::FaultPolicy p = dial_policy;
    p.seed = dial_policy.seed + static_cast<u64>(dials) * 1000;
    auto [c, t] =
        net::wrap_fault_pair(net::make_pipe_channel_pair(sched, sched), p);
    client_ch = c.get();
    target_ch = t.get();
    if (on_dial) on_dial(*client_ch, *target_ch);
    service->accept(std::move(t), "reconn");
    return std::move(c);
  }

  sim::Scheduler sched;
  net::InlineCopier copier;
  af::ShmBroker broker;
  ssd::RealDevice device;
  ssd::Subsystem subsystem;
  std::unique_ptr<NvmfTargetService> service;
  std::unique_ptr<NvmfInitiator> initiator;

  net::FaultChannel* client_ch = nullptr;  // most recent dial's endpoints
  net::FaultChannel* target_ch = nullptr;
  net::FaultPolicy dial_policy;  // applied to every fresh pair
  bool unreachable = false;      // dial() fails outright (network partition)
  std::function<void(net::FaultChannel&, net::FaultChannel&)> on_dial;
  int dials = 0;
};

TEST(ReconnectTest, DroppedResponsesTriggerReconnectAndReplay) {
  ReconnectHarness h(resilient_opts());
  h.sched.run();
  ASSERT_TRUE(h.initiator->connected());

  // Swallow the first few completions: the affected commands time out, the
  // association recovers on a fresh channel, and the replays finish the job.
  int to_drop = 3;
  h.target_ch->set_fault([&to_drop](pdu::Pdu& p) {
    if (to_drop > 0 && (p.type() == pdu::PduType::kCapsuleResp ||
                        p.type() == pdu::PduType::kC2HData)) {
      to_drop--;
      return false;
    }
    return true;
  });

  std::vector<u8> data(4096, 0x5A);
  int ok = 0;
  int failed = 0;
  for (int i = 0; i < 10; ++i) {
    h.initiator->write(1, static_cast<u64>(i) * 8, data,
                       [&](NvmfInitiator::IoResult r) {
                         (r.ok() ? ok : failed)++;
                       });
  }
  h.sched.run();
  EXPECT_EQ(ok, 10);
  EXPECT_EQ(failed, 0);
  EXPECT_FALSE(h.initiator->dead());
  EXPECT_GE(h.initiator->resilience().reconnects, 1u);
  EXPECT_GE(h.initiator->resilience().commands_retried, 1u);
  EXPECT_GE(h.initiator->timeouts(), 1u);
  EXPECT_GE(h.dials, 2);
}

TEST(ReconnectTest, DroppedIcrespBurnsAttemptThenConnects) {
  ReconnectHarness h(resilient_opts());
  h.sched.run();
  ASSERT_TRUE(h.initiator->connected());

  // The first re-dial loses its ICResp: the handshake timeout must burn
  // that attempt and the next dial must complete the reconnect.
  h.on_dial = [&h](net::FaultChannel&, net::FaultChannel& target) {
    if (h.dials == 2) {
      target.set_fault(
          [](pdu::Pdu& p) { return p.type() != pdu::PduType::kICResp; });
    }
  };
  h.initiator->force_recover("test: forced disconnect");
  h.sched.run();

  EXPECT_TRUE(h.initiator->connected());
  EXPECT_EQ(h.dials, 3);
  EXPECT_EQ(h.initiator->resilience().reconnects, 1u);
  EXPECT_GE(h.initiator->resilience().reconnect_failures, 1u);

  std::vector<u8> data(512);
  bool ok = false;
  h.initiator->write(1, 0, data, [&](NvmfInitiator::IoResult r) { ok = r.ok(); });
  h.sched.run();
  EXPECT_TRUE(ok);
}

TEST(ReconnectTest, PartitionThenHealReconnectsAndFlushesQueue) {
  ReconnectHarness h(resilient_opts());
  h.sched.run();
  ASSERT_TRUE(h.initiator->connected());

  // Network partition: every dial fails until the partition heals. I/O
  // submitted meanwhile waits in the queue and completes after recovery.
  h.unreachable = true;
  h.initiator->force_recover("test: partition");
  std::vector<u8> data(4096, 0x7B);
  bool ok = false;
  h.initiator->write(1, 0, data, [&](NvmfInitiator::IoResult r) { ok = r.ok(); });
  h.sched.schedule_after(20'000'000, [&h] { h.unreachable = false; });
  h.sched.run();

  EXPECT_TRUE(ok);
  EXPECT_TRUE(h.initiator->connected());
  EXPECT_FALSE(h.initiator->dead());
  EXPECT_GE(h.initiator->resilience().reconnect_failures, 1u);
  EXPECT_EQ(h.initiator->resilience().reconnects, 1u);
}

TEST(ReconnectTest, ExhaustedAttemptsAbortTheAssociation) {
  InitiatorOptions iopts = resilient_opts();
  iopts.reconnect.max_attempts = 2;
  ReconnectHarness h(iopts);
  h.sched.run();
  ASSERT_TRUE(h.initiator->connected());

  h.unreachable = true;
  std::vector<u8> data(512);
  pdu::NvmeStatus status = pdu::NvmeStatus::kSuccess;
  h.initiator->write(1, 0, data,
                     [&](NvmfInitiator::IoResult r) { status = r.cpl.status; });
  h.initiator->force_recover("test: permanent outage");
  h.sched.run();

  EXPECT_TRUE(h.initiator->dead());
  EXPECT_NE(status, pdu::NvmeStatus::kSuccess);  // failed exactly once
  EXPECT_EQ(h.initiator->resilience().reconnects, 0u);
  EXPECT_GE(h.initiator->resilience().reconnect_failures, 2u);
}

TEST(ReconnectTest, CorruptedReadPayloadWithDigestRetriesInPlace) {
  af::AfConfig cfg = af::AfConfig::stock_tcp();  // inline data PDUs
  cfg.data_digest = true;
  ReconnectHarness h(resilient_opts(cfg), cfg);
  h.sched.run();
  ASSERT_TRUE(h.initiator->connected());
  ASSERT_FALSE(h.initiator->shm_active());

  std::vector<u8> data(4096);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 13);
  bool wrote = false;
  h.initiator->write(1, 0, data, [&](NvmfInitiator::IoResult r) {
    wrote = r.ok();
  });
  h.sched.run();
  ASSERT_TRUE(wrote);

  // Corrupt the first C2HData payload in flight: the digest mismatch must
  // surface as a retryable transport error and the in-place replay must
  // deliver intact bytes — no reconnect, no application-visible error.
  bool corrupt_next = true;
  h.target_ch->set_fault([&corrupt_next](pdu::Pdu& p) {
    if (corrupt_next && p.type() == pdu::PduType::kC2HData &&
        !p.payload.empty()) {
      p.payload[0] ^= 0xFF;
      corrupt_next = false;
    }
    return true;
  });
  std::vector<u8> out(4096, 0);
  bool read_ok = false;
  h.initiator->read(1, 0, out, [&](NvmfInitiator::IoResult r) {
    read_ok = r.ok();
  });
  h.sched.run();

  EXPECT_TRUE(read_ok);
  EXPECT_EQ(out, data);
  EXPECT_EQ(h.initiator->resilience().digest_errors, 1u);
  EXPECT_GE(h.initiator->resilience().commands_retried, 1u);
  EXPECT_EQ(h.initiator->resilience().reconnects, 0u);
}

TEST(ReconnectTest, CorruptedWritePayloadWithDigestRetriesInPlace) {
  af::AfConfig cfg = af::AfConfig::stock_tcp();
  cfg.data_digest = true;
  ReconnectHarness h(resilient_opts(cfg), cfg);
  h.sched.run();
  ASSERT_TRUE(h.initiator->connected());

  // 16 KiB write: above the in-capsule threshold, so the payload travels in
  // H2CData PDUs (where the digest rides) after the target's R2T.
  bool corrupt_next = true;
  h.client_ch->set_fault([&corrupt_next](pdu::Pdu& p) {
    if (corrupt_next && p.type() == pdu::PduType::kH2CData &&
        !p.payload.empty()) {
      p.payload[7] ^= 0xFF;
      corrupt_next = false;
    }
    return true;
  });
  std::vector<u8> data(16 * 1024);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 31);
  bool wrote = false;
  h.initiator->write(1, 0, data, [&](NvmfInitiator::IoResult r) {
    wrote = r.ok();
  });
  h.sched.run();
  ASSERT_TRUE(wrote);
  EXPECT_EQ(h.service->find("reconn")->digest_errors(), 1u);
  EXPECT_GE(h.initiator->resilience().commands_retried, 1u);

  // The bytes that landed must be the intact ones.
  std::vector<u8> out(16 * 1024, 0);
  bool read_ok = false;
  h.initiator->read(1, 0, out, [&](NvmfInitiator::IoResult r) {
    read_ok = r.ok();
  });
  h.sched.run();
  EXPECT_TRUE(read_ok);
  EXPECT_EQ(out, data);
}

TEST(ReconnectTest, RetriedCommandLatencySpansAllAttempts) {
  // comm_ns accounting across retries: total_ns must cover first submit to
  // final completion, so a command that timed out once reports at least the
  // command-timeout's worth of latency.
  ReconnectHarness h(resilient_opts());
  h.sched.run();
  ASSERT_TRUE(h.initiator->connected());

  int to_drop = 1;
  h.target_ch->set_fault([&to_drop](pdu::Pdu& p) {
    if (to_drop > 0 && (p.type() == pdu::PduType::kCapsuleResp ||
                        p.type() == pdu::PduType::kC2HData)) {
      to_drop--;
      return false;
    }
    return true;
  });
  std::vector<u8> data(4096);
  NvmfInitiator::IoResult result;
  bool done = false;
  h.initiator->write(1, 0, data, [&](NvmfInitiator::IoResult r) {
    result = r;
    done = true;
  });
  h.sched.run();
  ASSERT_TRUE(done);
  ASSERT_TRUE(result.ok());
  // One timeout (5 ms) elapsed before the replay: the end-to-end latency
  // must include it, and the comm component must never go negative.
  EXPECT_GE(result.total_ns, 5'000'000);
  EXPECT_GE(result.comm_ns(), 0);
  EXPECT_LE(static_cast<DurNs>(result.io_time_ns), result.total_ns);
}

// Acceptance burst: 10k I/Os through a channel dropping 1% of all PDUs in
// both directions, plus one forced mid-run disconnect. Every I/O must
// complete successfully and the read-back must be byte-identical.
TEST(ReconnectTest, TenThousandIoBurstSurvivesLossAndDisconnect) {
  InitiatorOptions iopts{af::AfConfig::oaf(), 16, "reconn", 0, {}};
  iopts.command_timeout_ns = 50'000'000;
  iopts.reconnect.max_attempts = 50;
  iopts.reconnect.initial_backoff_ns = 100'000;
  iopts.reconnect.handshake_timeout_ns = 10'000'000;
  iopts.reconnect.max_command_retries = 100;
  ReconnectHarness h(iopts);
  h.dial_policy.drop_prob = 0.01;
  h.dial_policy.seed = 42;
  h.sched.run();
  ASSERT_TRUE(h.initiator->connected());
  // The loss policy only kicks in for the burst (the initial handshake
  // above ran clean because dial_policy was set after construction);
  // reconnect handshakes run lossy and must still converge.
  h.client_ch->set_policy({.seed = 42, .drop_prob = 0.01});
  h.target_ch->set_policy({.seed = 43, .drop_prob = 0.01});

  constexpr int kIos = 5000;       // 5k writes + 5k reads
  constexpr u64 kIoBytes = 4096;   // 8 blocks each
  auto pattern = [](int io, size_t byte) {
    return static_cast<u8>((io * 131 + static_cast<int>(byte)) & 0xFF);
  };

  std::vector<std::vector<u8>> wbufs(kIos);
  std::vector<std::vector<u8>> rbufs(kIos);
  int writes_ok = 0;
  int reads_ok = 0;
  int failures = 0;
  bool disconnected_midway = false;

  std::function<void()> start_reads = [&] {
    for (int i = 0; i < kIos; ++i) {
      rbufs[i].assign(kIoBytes, 0);
      h.initiator->read(1, static_cast<u64>(i) * 8, rbufs[i],
                        [&](NvmfInitiator::IoResult r) {
                          (r.ok() ? reads_ok : failures)++;
                        });
    }
  };

  for (int i = 0; i < kIos; ++i) {
    wbufs[i].resize(kIoBytes);
    for (size_t b = 0; b < kIoBytes; ++b) wbufs[i][b] = pattern(i, b);
    h.initiator->write(1, static_cast<u64>(i) * 8, wbufs[i],
                       [&, i](NvmfInitiator::IoResult r) {
                         (r.ok() ? writes_ok : failures)++;
                         if (writes_ok == kIos / 2 && !disconnected_midway) {
                           disconnected_midway = true;
                           h.initiator->force_recover("test: mid-run disconnect");
                         }
                         if (writes_ok + failures == kIos) start_reads();
                       });
  }
  h.sched.run();

  EXPECT_EQ(writes_ok, kIos);
  EXPECT_EQ(reads_ok, kIos);
  EXPECT_EQ(failures, 0);  // zero application-visible errors
  EXPECT_FALSE(h.initiator->dead());
  EXPECT_GE(h.initiator->resilience().reconnects, 1u);
  EXPECT_GE(h.initiator->resilience().commands_retried, 1u);

  int mismatched = 0;
  for (int i = 0; i < kIos; ++i) {
    for (size_t b = 0; b < kIoBytes; ++b) {
      if (rbufs[i][b] != pattern(i, b)) {
        mismatched++;
        break;
      }
    }
  }
  EXPECT_EQ(mismatched, 0);
}

}  // namespace
}  // namespace oaf::nvmf

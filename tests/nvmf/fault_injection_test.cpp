// Fault injection: a misbehaving channel wrapper drops, corrupts, and
// forges PDUs between initiator and target. The protocol must degrade
// loudly and safely — terminate associations, fail commands, never crash,
// never mismatch data — which is what these tests pin down.
#include <gtest/gtest.h>

#include <functional>

#include "af/locality.h"
#include "common/rng.h"
#include "net/fault_channel.h"
#include "net/pipe_channel.h"
#include "nvmf/initiator.h"
#include "nvmf/target.h"
#include "sim/scheduler.h"
#include "ssd/real_device.h"

namespace oaf::nvmf {
namespace {

using net::FaultChannel;

struct FaultHarness {
  explicit FaultHarness(af::AfConfig cfg = af::AfConfig::oaf(),
                        DurNs timeout = 5'000'000)
      : broker(1), device(sched, 512, 1 << 18), subsystem("nqn.fault") {
    (void)subsystem.add_namespace(1, &device);
    auto pair = net::make_pipe_channel_pair(sched, sched);
    client_ch = std::make_unique<FaultChannel>(std::move(pair.first));
    target_ch = std::make_unique<FaultChannel>(std::move(pair.second));

    target = std::make_unique<NvmfTargetConnection>(
        sched, *target_ch, copier, broker, subsystem,
        TargetOptions{cfg, "fault"});
    InitiatorOptions iopts;
    iopts.af = cfg;
    iopts.queue_depth = 8;
    iopts.connection_name = "fault";
    iopts.command_timeout_ns = timeout;
    initiator = std::make_unique<NvmfInitiator>(sched, *client_ch, copier,
                                                broker, iopts);
    initiator->connect([](Status) {});
    sched.run();
  }

  sim::Scheduler sched;
  net::InlineCopier copier;
  af::ShmBroker broker;
  ssd::RealDevice device;
  ssd::Subsystem subsystem;
  std::unique_ptr<FaultChannel> client_ch;
  std::unique_ptr<FaultChannel> target_ch;
  std::unique_ptr<NvmfTargetConnection> target;
  std::unique_ptr<NvmfInitiator> initiator;
};

TEST(FaultInjectionTest, DroppedResponseTimesOutAndTearsDown) {
  FaultHarness h;
  // Drop every CapsuleResp from the target.
  h.target_ch->set_fault([](pdu::Pdu& p) {
    return p.type() != pdu::PduType::kCapsuleResp;
  });
  std::vector<u8> data(4096);
  pdu::NvmeStatus status = pdu::NvmeStatus::kSuccess;
  h.initiator->write(1, 0, data, [&](NvmfInitiator::IoResult r) {
    status = r.cpl.status;
  });
  h.sched.run();
  EXPECT_NE(status, pdu::NvmeStatus::kSuccess);
  EXPECT_EQ(h.initiator->timeouts(), 1u);
  EXPECT_TRUE(h.initiator->dead());
  EXPECT_GT(h.target_ch->dropped(), 0u);
}

TEST(FaultInjectionTest, AbortFailsAllOutstandingAndQueued) {
  FaultHarness h;
  h.target_ch->set_fault([](pdu::Pdu& p) {
    return p.type() != pdu::PduType::kCapsuleResp &&
           p.type() != pdu::PduType::kC2HData;
  });
  std::vector<u8> data(4096);
  int completed = 0;
  int failed = 0;
  // 20 commands against queue depth 8: 8 in flight + 12 queued.
  for (int i = 0; i < 20; ++i) {
    h.initiator->write(1, static_cast<u64>(i) * 8, data,
                       [&](NvmfInitiator::IoResult r) {
                         completed++;
                         if (!r.ok()) failed++;
                       });
  }
  h.sched.run();
  EXPECT_EQ(completed, 20);  // every callback fires exactly once
  EXPECT_EQ(failed, 20);
  EXPECT_TRUE(h.initiator->dead());
}

TEST(FaultInjectionTest, SubmissionAfterAbortFailsFast) {
  FaultHarness h;
  h.target_ch->set_fault([](pdu::Pdu&) { return false; });  // drop everything
  std::vector<u8> data(512);
  h.initiator->write(1, 0, data, [](NvmfInitiator::IoResult) {});
  h.sched.run();
  ASSERT_TRUE(h.initiator->dead());

  bool called = false;
  pdu::NvmeStatus status = pdu::NvmeStatus::kSuccess;
  h.initiator->read(1, 0, data, [&](NvmfInitiator::IoResult r) {
    called = true;
    status = r.cpl.status;
  });
  h.sched.run();
  EXPECT_TRUE(called);
  EXPECT_NE(status, pdu::NvmeStatus::kSuccess);
}

TEST(FaultInjectionTest, ForgedDuplicateCidTerminatesAssociation) {
  FaultHarness h;
  // Forge a command capsule with a cid the target is already serving.
  pdu::CapsuleCmd forged;
  forged.cmd.opcode = pdu::NvmeOpcode::kRead;
  forged.cmd.cid = 0;
  forged.cmd.nsid = 1;
  forged.cmd.nlb = 0;
  // First, occupy cid 0 with a legitimate slow command by sending the forged
  // duplicate immediately after a real submission.
  std::vector<u8> out(512);
  h.initiator->read(1, 0, out, [](NvmfInitiator::IoResult) {});
  pdu::Pdu dup;
  dup.header = forged;
  h.client_ch->inject(std::move(dup));
  h.sched.run();
  // The target noticed the protocol violation and sent TermReq; the
  // initiator's channel is closed. (The legitimate command may or may not
  // have completed first; what matters is no crash and a closed channel.)
  EXPECT_FALSE(h.client_ch->is_open());
}

TEST(FaultInjectionTest, UnknownCidResponsesAreIgnored) {
  FaultHarness h;
  // Inject completions for cids that were never issued.
  for (u16 cid : {3, 7, 200}) {
    pdu::CapsuleResp resp;
    resp.cpl.cid = cid;
    pdu::Pdu pdu;
    pdu.header = resp;
    h.target_ch->inject(std::move(pdu));
  }
  h.sched.run();
  // Initiator survives and still works.
  std::vector<u8> data(512);
  bool ok = false;
  h.initiator->write(1, 0, data, [&](NvmfInitiator::IoResult r) { ok = r.ok(); });
  h.sched.run();
  EXPECT_TRUE(ok);
  EXPECT_FALSE(h.initiator->dead());
}

TEST(FaultInjectionTest, CorruptedShmSlotReferenceFailsCommand) {
  FaultHarness h;
  ASSERT_TRUE(h.initiator->shm_active());
  // Point write capsules at a bogus slot: the target's consume fails and
  // the command completes with a transfer error instead of wedging.
  h.client_ch->set_fault([](pdu::Pdu& p) {
    if (auto* c = p.as<pdu::CapsuleCmd>();
        c != nullptr && c->placement == pdu::DataPlacement::kShmSlot) {
      c->shm_slot = 99;  // out of range
    }
    return true;
  });
  std::vector<u8> data(4096);
  pdu::NvmeStatus status = pdu::NvmeStatus::kSuccess;
  h.initiator->write(1, 0, data, [&](NvmfInitiator::IoResult r) {
    status = r.cpl.status;
  });
  h.sched.run();
  EXPECT_EQ(status, pdu::NvmeStatus::kDataTransferError);
  EXPECT_FALSE(h.initiator->dead());  // per-command failure, not a teardown
}

TEST(FaultInjectionTest, RandomDropStormNeverWedgesForever) {
  // Property: with a lossy channel and timeouts enabled, every submitted
  // command's callback fires exactly once (success, error, or abort).
  for (u64 seed : {1u, 2u, 3u, 4u, 5u}) {
    FaultHarness h(af::AfConfig::oaf(), /*timeout=*/2'000'000);
    auto rng = std::make_shared<Rng>(seed);
    h.target_ch->set_fault([rng](pdu::Pdu&) { return !rng->next_bool(0.2); });
    h.client_ch->set_fault([rng](pdu::Pdu&) { return !rng->next_bool(0.2); });

    int callbacks = 0;
    std::vector<u8> data(4096);
    constexpr int kCommands = 30;
    for (int i = 0; i < kCommands; ++i) {
      if (i % 2 == 0) {
        h.initiator->write(1, static_cast<u64>(i) * 8, data,
                           [&](NvmfInitiator::IoResult) { callbacks++; });
      } else {
        h.initiator->read(1, static_cast<u64>(i) * 8, data,
                          [&](NvmfInitiator::IoResult) { callbacks++; });
      }
    }
    h.sched.run();
    EXPECT_EQ(callbacks, kCommands) << "seed " << seed;
  }
}

TEST(FaultInjectionTest, TimeoutDisabledMeansNoSpuriousAborts) {
  FaultHarness h(af::AfConfig::oaf(), /*timeout=*/0);
  std::vector<u8> data(4096);
  int ok = 0;
  for (int i = 0; i < 10; ++i) {
    h.initiator->write(1, static_cast<u64>(i) * 8, data,
                       [&](NvmfInitiator::IoResult r) { ok += r.ok(); });
  }
  h.sched.run();
  EXPECT_EQ(ok, 10);
  EXPECT_EQ(h.initiator->timeouts(), 0u);
}

}  // namespace
}  // namespace oaf::nvmf

// Overload robustness (DESIGN.md §12): the target must bound its resources
// under offered load far beyond its budgets — rejecting the excess with
// retryable kQueueFull instead of queuing without limit — and the initiator
// must absorb that backpressure with jittered backoff so every I/O still
// completes exactly once. Connect-time admission control turns away clients
// past the connection cap with an explicit ICResp verdict, and slow clients
// are evicted so their budget charges return to the pool.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "af/locality.h"
#include "net/fault_channel.h"
#include "net/pipe_channel.h"
#include "nvmf/initiator.h"
#include "nvmf/target_service.h"
#include "sim/scheduler.h"
#include "ssd/real_device.h"

namespace oaf::nvmf {
namespace {

InitiatorOptions storm_opts(const std::string& name, u32 qd) {
  InitiatorOptions iopts{af::AfConfig::stock_tcp(), qd, name, 0, {}};
  // A storm produces many kQueueFull rounds per command; give the in-place
  // retry ladder room so backpressure never turns into an app-visible error.
  iopts.reconnect.max_command_retries = 64;
  iopts.reconnect.initial_backoff_ns = 1'000'000;
  return iopts;
}

/// One or more initiators dialing a NvmfTargetService with overload budgets
/// over FaultChannel-wrapped pipe pairs.
struct OverloadHarness {
  explicit OverloadHarness(TargetServiceOptions sopts)
      : broker(1), device(sched, 512, 1 << 18), subsystem("nqn.overload") {
    (void)subsystem.add_namespace(1, &device);
    sopts.af = af::AfConfig::oaf();
    service = std::make_unique<NvmfTargetService>(sched, copier, broker,
                                                  subsystem, sopts);
  }

  NvmfInitiator* add_initiator(InitiatorOptions iopts) {
    const std::string name = iopts.connection_name;
    initiators.push_back(std::make_unique<NvmfInitiator>(
        sched, [this, name] { return dial(name); }, copier, broker, iopts));
    return initiators.back().get();
  }

  std::unique_ptr<net::MsgChannel> dial(const std::string& name) {
    dials++;
    net::FaultPolicy p;
    p.seed = 7 + static_cast<u64>(dials) * 1000;
    auto [c, t] =
        net::wrap_fault_pair(net::make_pipe_channel_pair(sched, sched), p);
    client_ch = c.get();
    target_ch = t.get();
    service->accept(std::move(t), name);
    return std::move(c);
  }

  sim::Scheduler sched;
  net::InlineCopier copier;
  af::ShmBroker broker;
  ssd::RealDevice device;
  ssd::Subsystem subsystem;
  std::unique_ptr<NvmfTargetService> service;
  std::vector<std::unique_ptr<NvmfInitiator>> initiators;
  net::FaultChannel* client_ch = nullptr;  // most recent dial's endpoints
  net::FaultChannel* target_ch = nullptr;
  int dials = 0;
};

TEST(OverloadTest, QueueFullStormCompletesEverythingExactlyOnce) {
  // Per-connection in-flight cap of 4 against queue depth 16: most of the
  // storm bounces with kQueueFull, backs off, and replays until the target
  // has room. Nothing fails, nothing completes twice.
  TargetServiceOptions sopts;
  sopts.max_inflight_cmds = 4;
  OverloadHarness h(sopts);
  NvmfInitiator* init = h.add_initiator(storm_opts("storm", 16));
  init->connect([](Status) {});
  h.sched.run();
  ASSERT_TRUE(init->connected());

  std::vector<u8> data(4096, 0x5A);
  std::vector<int> fires(40, 0);
  int ok = 0;
  int failed = 0;
  for (size_t i = 0; i < fires.size(); ++i) {
    init->write(1, static_cast<u64>(i) * 8, data,
                [&, i](NvmfInitiator::IoResult r) {
                  fires[i]++;
                  (r.ok() ? ok : failed)++;
                });
  }
  h.sched.run();

  EXPECT_EQ(ok, 40);
  EXPECT_EQ(failed, 0);
  for (const int f : fires) EXPECT_EQ(f, 1);
  NvmfTargetConnection* conn = h.service->find("storm");
  ASSERT_NE(conn, nullptr);
  EXPECT_GT(conn->queue_full_rejects(), 0u);
  EXPECT_GT(init->resilience().queue_full_received, 0u);
  EXPECT_GT(init->resilience().queue_full_retries, 0u);
  // The storm drained: no residual in-flight state or staging charge.
  EXPECT_EQ(conn->inflight_now(), 0u);
  EXPECT_EQ(conn->staging_bytes(), 0u);
}

TEST(OverloadTest, GlobalStagingBudgetIsNeverExceededAndFullyReleased) {
  // A target-wide staging budget of two 4 KiB commands: the budget's peak
  // may never exceed capacity no matter how hard the client pushes, and
  // every charge comes back once the storm drains.
  TargetServiceOptions sopts;
  sopts.global_staging_bytes = 2 * 4096;
  OverloadHarness h(sopts);
  NvmfInitiator* init = h.add_initiator(storm_opts("budget", 8));
  init->connect([](Status) {});
  h.sched.run();
  ASSERT_TRUE(init->connected());

  std::vector<u8> data(4096, 0xC3);
  int ok = 0;
  int failed = 0;
  for (int i = 0; i < 20; ++i) {
    init->write(1, static_cast<u64>(i) * 8, data,
                [&](NvmfInitiator::IoResult r) { (r.ok() ? ok : failed)++; });
  }
  h.sched.run();

  EXPECT_EQ(ok, 20);
  EXPECT_EQ(failed, 0);
  const af::ResourceBudget& budget = h.service->global_staging();
  EXPECT_LE(budget.peak(), budget.capacity());
  EXPECT_EQ(budget.in_use(), 0u);
  EXPECT_GT(budget.denied(), 0u);
  EXPECT_GT(h.service->queue_full_rejects(), 0u);
}

TEST(OverloadTest, CongestedSignalRisesUnderPushbackAndRetryBudgetBounds) {
  // A command whose staging charge exceeds the whole global budget can never
  // be admitted: every attempt bounces with kQueueFull. The initiator's
  // congestion window must be visible while the backoffs are pending, and
  // the bounded retry ladder must eventually surface kQueueFull to the app
  // instead of spinning forever.
  TargetServiceOptions sopts;
  sopts.global_staging_bytes = 4096;
  OverloadHarness h(sopts);
  InitiatorOptions iopts = storm_opts("cong", 8);
  iopts.reconnect.max_command_retries = 5;
  NvmfInitiator* init = h.add_initiator(iopts);
  init->connect([](Status) {});
  h.sched.run();
  ASSERT_TRUE(init->connected());
  EXPECT_FALSE(init->congested());

  std::vector<u8> big(8192, 0x11);  // charge 8 KiB > 4 KiB budget: never fits
  bool fired = false;
  pdu::NvmeStatus status = pdu::NvmeStatus::kSuccess;
  init->write(1, 0, big, [&](NvmfInitiator::IoResult r) {
    fired = true;
    status = r.cpl.status;
  });
  // Step the clock in small slices so the congestion window is observable
  // while the kQueueFull backoffs are pending.
  bool saw_congested = false;
  for (int guard = 0; guard < 10'000 && !fired; ++guard) {
    h.sched.run_until(h.sched.now() + 100'000);
    saw_congested |= init->congested();
  }
  EXPECT_TRUE(fired);
  EXPECT_TRUE(saw_congested);
  EXPECT_EQ(status, pdu::NvmeStatus::kQueueFull);
  EXPECT_EQ(init->resilience().queue_full_retries, 5u);

  // The association is still healthy: a command that fits the budget
  // completes and lifts the congestion window.
  std::vector<u8> small(4096, 0x22);
  bool ok = false;
  init->write(1, 64, small, [&](NvmfInitiator::IoResult r) { ok = r.ok(); });
  h.sched.run();
  EXPECT_TRUE(ok);
  EXPECT_FALSE(init->congested());
  EXPECT_EQ(h.service->global_staging().in_use(), 0u);
}

TEST(OverloadTest, ConnectAdmissionCapRejectsThenAdmitsAfterRelease) {
  TargetServiceOptions sopts;
  sopts.max_conns = 1;
  sopts.reject_retry_after_ms = 1;
  OverloadHarness h(sopts);

  NvmfInitiator* first = h.add_initiator(storm_opts("first", 4));
  first->connect([](Status) {});
  h.sched.run();
  ASSERT_TRUE(first->connected());

  // The second client is turned away with an explicit verdict and keeps
  // re-dialing on the reconnect ladder.
  InitiatorOptions iopts2 = storm_opts("second", 4);
  iopts2.reconnect.max_attempts = 20;
  iopts2.reconnect.handshake_timeout_ns = 10'000'000;
  NvmfInitiator* second = h.add_initiator(iopts2);
  Status second_connect = Status::ok();
  second->connect([&](Status st) { second_connect = st; });
  h.sched.run_until(h.sched.now() + 20'000'000);
  EXPECT_FALSE(second->connected());
  EXPECT_GE(h.service->connects_rejected(), 1u);
  EXPECT_GE(second->resilience().admission_rejects, 1u);

  // The first client hangs up; its association is reaped on the next
  // accept, freeing the slot — the second's retry is then admitted.
  h.initiators[0].reset();
  h.sched.run();
  EXPECT_TRUE(second->connected());
  EXPECT_TRUE(second_connect.is_ok());
}

TEST(OverloadTest, ConnectRejectFailsFastWithoutReconnectPolicy) {
  TargetServiceOptions sopts;
  sopts.max_conns = 1;
  OverloadHarness h(sopts);

  NvmfInitiator* first = h.add_initiator(storm_opts("one", 4));
  first->connect([](Status) {});
  h.sched.run();
  ASSERT_TRUE(first->connected());

  // No reconnect machinery (max_attempts 0): the rejection surfaces as a
  // typed retryable error instead of hanging the connect callback.
  InitiatorOptions iopts2 = storm_opts("two", 4);
  iopts2.reconnect.max_attempts = 0;
  NvmfInitiator* second = h.add_initiator(iopts2);
  Status st = Status::ok();
  bool fired = false;
  second->connect([&](Status s) {
    st = s;
    fired = true;
  });
  h.sched.run();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(second->dead());
  EXPECT_EQ(h.service->connects_rejected(), 1u);
}

TEST(OverloadTest, WatermarkShedReleasesChargeAndCommandRetries) {
  // A write wins admission (charging half the global budget) and then
  // stalls awaiting its data. Once occupancy crosses the shed watermark the
  // overload tick sheds it — the charge returns, the client gets a
  // retryable kQueueFull — and after the network heals the retry completes.
  TargetServiceOptions sopts;
  sopts.global_staging_bytes = 65536;
  sopts.shed_watermark = 0.4;
  OverloadHarness h(sopts);
  NvmfInitiator* init = h.add_initiator(storm_opts("shed", 4));
  init->connect([](Status) {});
  h.sched.run();
  ASSERT_TRUE(init->connected());

  h.client_ch->set_fault(
      [](pdu::Pdu& p) { return p.type() != pdu::PduType::kH2CData; });
  std::vector<u8> data(32768, 0x3C);
  bool ok = false;
  init->write(1, 0, data, [&](NvmfInitiator::IoResult r) { ok = r.ok(); });
  h.sched.run_until(h.sched.now() + 1'000'000);
  ASSERT_EQ(h.service->global_staging().in_use(), 32768u);

  h.service->overload_tick();
  EXPECT_GE(h.service->commands_shed(), 1u);
  EXPECT_EQ(h.service->global_staging().in_use(), 0u);

  // Heal the data path; the shed command's kQueueFull retry goes through.
  h.client_ch->set_fault([](pdu::Pdu&) { return true; });
  h.sched.run();
  EXPECT_TRUE(ok);
  EXPECT_GE(init->resilience().queue_full_received, 1u);
  EXPECT_EQ(h.service->global_staging().in_use(), 0u);
}

TEST(OverloadTest, SlowClientIsEvictedAndChargesReturn) {
  // A command stuck in flight past the stall watermark marks the whole
  // association as a slow client; the overload tick evicts it and the
  // teardown sweep returns its staging charges to the global budget.
  TargetServiceOptions sopts;
  sopts.global_staging_bytes = 1 << 20;
  sopts.stall_timeout_ns = 1;  // any in-flight command counts as stalled
  OverloadHarness h(sopts);
  InitiatorOptions iopts = storm_opts("slow", 4);
  iopts.reconnect.max_attempts = 10;
  iopts.reconnect.handshake_timeout_ns = 10'000'000;
  NvmfInitiator* init = h.add_initiator(iopts);
  init->connect([](Status) {});
  h.sched.run();
  ASSERT_TRUE(init->connected());

  // The slow client: it wins admission but its write data never arrives
  // (every H2CData PDU is dropped), so the command squats on target-side
  // state indefinitely.
  h.client_ch->set_fault(
      [](pdu::Pdu& p) { return p.type() != pdu::PduType::kH2CData; });
  std::vector<u8> data(32768, 0x77);  // 32 KiB: beyond in-capsule, needs H2C
  int ok = 0;
  int failed = 0;
  init->write(1, 0, data,
              [&](NvmfInitiator::IoResult r) { (r.ok() ? ok : failed)++; });
  h.sched.run_until(h.sched.now() + 1'000'000);
  NvmfTargetConnection* conn = h.service->find("slow");
  ASSERT_NE(conn, nullptr);
  ASSERT_GT(conn->inflight_now(), 0u);
  h.service->overload_tick();
  EXPECT_GE(h.service->evictions(), 1u);
  EXPECT_TRUE(conn->evicted());

  // The evicted client recovers on a fresh association (without the data
  // drop) and the write replays to completion; the global budget shows no
  // leaked charge.
  h.sched.run();
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(failed, 0);
  EXPECT_EQ(h.service->global_staging().in_use(), 0u);
}

}  // namespace
}  // namespace oaf::nvmf

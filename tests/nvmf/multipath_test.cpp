// Multipath I/O: a PathGroup over N associations must survive the loss of
// any one path mid-burst with zero failed I/Os and zero duplicate
// completions, steer around ANA-degraded paths, park submissions while no
// path is usable, and degenerate to plain single-path reconnect semantics
// at N == 1. Faults use the seeded net::FaultChannel (and its deterministic
// kill_at trigger), so every scenario replays bit-identically.
#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <string>

#include "af/locality.h"
#include "net/fault_channel.h"
#include "net/pipe_channel.h"
#include "nvmf/path_group.h"
#include "nvmf/path_selector.h"
#include "nvmf/target_service.h"
#include "sim/scheduler.h"
#include "ssd/real_device.h"

namespace oaf::nvmf {
namespace {

// --------------------------------------------------------------------------
// Selector policy units (pure logic, no harness)
// --------------------------------------------------------------------------

PathView view(u32 index, u32 inflight, DurNs ewma = 0) {
  PathView v;
  v.index = index;
  v.inflight = inflight;
  v.ewma_ns = ewma;
  return v;
}

TEST(PathSelectorTest, RoundRobinRotates) {
  RoundRobinSelector s;
  const std::vector<PathView> paths{view(0, 0), view(1, 0), view(2, 0)};
  EXPECT_EQ(s.pick(paths), 0u);
  EXPECT_EQ(s.pick(paths), 1u);
  EXPECT_EQ(s.pick(paths), 2u);
  EXPECT_EQ(s.pick(paths), 0u);
}

TEST(PathSelectorTest, QueueDepthPicksShortestQueue) {
  QueueDepthSelector s;
  EXPECT_EQ(s.pick({view(0, 5), view(1, 2), view(2, 9)}), 1u);
  // Ties break to the lowest position, deterministically.
  EXPECT_EQ(s.pick({view(0, 3), view(1, 3)}), 0u);
}

TEST(PathSelectorTest, LatencyEwmaPrefersUnprobedThenFastest) {
  LatencyEwmaSelector s;
  // An unprobed path (ewma 0) wins outright so it gets measured.
  EXPECT_EQ(s.pick({view(0, 0, 900), view(1, 0, 0)}), 1u);
  EXPECT_EQ(s.pick({view(0, 0, 900), view(1, 0, 400)}), 1u);
  EXPECT_EQ(s.pick({view(0, 0, 300), view(1, 0, 400)}), 0u);
}

TEST(PathSelectorTest, FactoryResolvesNamesAndRejectsUnknown) {
  EXPECT_NE(make_selector("round-robin"), nullptr);
  EXPECT_NE(make_selector("queue-depth"), nullptr);
  EXPECT_NE(make_selector("latency-ewma"), nullptr);
  EXPECT_EQ(make_selector("coin-flip"), nullptr);
}

// --------------------------------------------------------------------------
// Harness
// --------------------------------------------------------------------------

/// PathGroup dialing a NvmfTargetService over N FaultChannel-wrapped pipe
/// pairs. Path 0 negotiates shm (the paper's AF data path); the rest are
/// stock TCP — the headline topology of one fast lane plus TCP spares.
struct MultipathHarness {
  static constexpr u32 kMaxPaths = 4;

  explicit MultipathHarness(u32 npaths,
                            std::unique_ptr<PathSelector> selector = nullptr,
                            u32 max_parked = 1024)
      : broker(npaths), device(sched, 512, 1 << 18), subsystem("nqn.mp") {
    (void)subsystem.add_namespace(1, &device);
    TargetServiceOptions sopts;
    sopts.af = af::AfConfig::oaf();
    service = std::make_unique<NvmfTargetService>(sched, copier, broker,
                                                  subsystem, sopts);
    PathGroupOptions gopts;
    gopts.name = "mp";
    gopts.max_parked = max_parked;
    group = std::make_unique<PathGroup>(sched, std::move(gopts),
                                        std::move(selector));
    for (u32 i = 0; i < npaths; ++i) {
      const af::AfConfig cfg =
          i == 0 ? af::AfConfig::oaf() : af::AfConfig::stock_tcp();
      InitiatorOptions iopts{cfg, 8, path_name(i), 0, {}};
      iopts.command_timeout_ns = 5'000'000;
      iopts.reconnect.max_attempts = 10;
      iopts.reconnect.initial_backoff_ns = 1'000'000;
      iopts.reconnect.handshake_timeout_ns = 10'000'000;
      group->add_path(std::make_unique<NvmfInitiator>(
          sched, [this, i] { return dial(i); }, copier, broker, iopts));
    }
    group->connect([](Status) {});
  }

  static std::string path_name(u32 i) { return "mp.p" + std::to_string(i); }

  std::unique_ptr<net::MsgChannel> dial(u32 path) {
    dials[path]++;
    net::FaultPolicy p;
    p.seed = 1 + path * 17 + static_cast<u64>(dials[path]) * 1000;
    auto [c, t] =
        net::wrap_fault_pair(net::make_pipe_channel_pair(sched, sched), p);
    client_ch[path] = c.get();
    target_ch[path] = t.get();
    service->accept(std::move(t), path_name(path));
    return std::move(c);
  }

  [[nodiscard]] bool all_connected() const {
    for (size_t i = 0; i < group->path_count(); ++i) {
      if (!group->path(i).connected()) return false;
    }
    return true;
  }

  sim::Scheduler sched;
  net::InlineCopier copier;
  af::ShmBroker broker;
  ssd::RealDevice device;
  ssd::Subsystem subsystem;
  std::unique_ptr<NvmfTargetService> service;
  std::unique_ptr<PathGroup> group;

  std::array<net::FaultChannel*, kMaxPaths> client_ch{};
  std::array<net::FaultChannel*, kMaxPaths> target_ch{};
  std::array<int, kMaxPaths> dials{};
};

/// Issue `n` 4 KiB writes and count per-command completions exactly-once.
struct Burst {
  explicit Burst(int n) : fires(static_cast<size_t>(n), 0), data(4096, 0xA5) {}

  void submit(PathGroup& group) {
    for (size_t i = 0; i < fires.size(); ++i) {
      group.write(1, static_cast<u64>(i) * 8, data,
                  [this, i](IoSession::IoResult r) {
                    fires[i]++;
                    (r.ok() ? ok : failed)++;
                  });
    }
  }

  [[nodiscard]] bool each_exactly_once() const {
    for (const int f : fires) {
      if (f != 1) return false;
    }
    return true;
  }

  std::vector<int> fires;
  std::vector<u8> data;
  int ok = 0;
  int failed = 0;
};

// --------------------------------------------------------------------------
// Failover
// --------------------------------------------------------------------------

/// The headline scenario, once per selector policy: one shm path plus two
/// TCP paths, the shm path's cable cut mid-burst at a deterministic PDU —
/// every I/O still completes exactly once with zero failures.
void run_kill_mid_burst(const char* policy) {
  MultipathHarness h(3, make_selector(policy));
  h.sched.run();
  ASSERT_TRUE(h.all_connected()) << policy;
  ASSERT_TRUE(h.group->path(0).shm_active()) << policy;

  h.client_ch[0]->kill_at(5);  // the shm path dies on its 5th PDU
  Burst burst(60);
  burst.submit(*h.group);
  h.sched.run();

  EXPECT_EQ(burst.ok, 60) << policy;
  EXPECT_EQ(burst.failed, 0) << policy;
  EXPECT_TRUE(burst.each_exactly_once()) << policy;
  EXPECT_TRUE(h.client_ch[0]->killed()) << policy;
  EXPECT_TRUE(h.group->path(0).dead()) << policy;
  EXPECT_GE(h.group->failovers(), 1u) << policy;
  EXPECT_GE(h.group->redrives(), 1u) << policy;
  EXPECT_EQ(h.group->live_now(), 0u) << policy;
}

TEST(MultipathTest, KillShmPathMidBurstRoundRobin) {
  run_kill_mid_burst("round-robin");
}

TEST(MultipathTest, KillShmPathMidBurstQueueDepth) {
  run_kill_mid_burst("queue-depth");
}

TEST(MultipathTest, KillShmPathMidBurstLatencyEwma) {
  run_kill_mid_burst("latency-ewma");
}

TEST(MultipathTest, KillAnyOneOfThreePathsZeroFailedIos) {
  for (u32 victim = 0; victim < 3; ++victim) {
    MultipathHarness h(3);
    h.sched.run();
    ASSERT_TRUE(h.all_connected()) << "victim " << victim;

    h.client_ch[victim]->kill_at(3);
    Burst burst(45);
    burst.submit(*h.group);
    h.sched.run();

    EXPECT_EQ(burst.ok, 45) << "victim " << victim;
    EXPECT_EQ(burst.failed, 0) << "victim " << victim;
    EXPECT_TRUE(burst.each_exactly_once()) << "victim " << victim;
  }
}

TEST(MultipathTest, SurvivingPathsAbsorbTheDeadPathsShare) {
  MultipathHarness h(3);
  h.sched.run();
  ASSERT_TRUE(h.all_connected());

  h.client_ch[2]->kill_at(2);
  Burst burst(30);
  burst.submit(*h.group);
  h.sched.run();
  ASSERT_EQ(burst.ok, 30);

  // Every success landed on some path exactly once (ios_completed counts
  // only OK completions, so the dead path's transport errors don't inflate
  // the sum), and the survivors stayed healthy throughout.
  EXPECT_EQ(h.group->path(0).ios_completed() +
                h.group->path(1).ios_completed() +
                h.group->path(2).ios_completed(),
            30u);
  EXPECT_GE(h.group->redrives(), 1u);
  EXPECT_FALSE(h.group->path(0).dead());
  EXPECT_FALSE(h.group->path(1).dead());
}

TEST(MultipathTest, AllPathsDeadFailsCleanlyWithoutHanging) {
  MultipathHarness h(2);
  h.sched.run();
  ASSERT_TRUE(h.all_connected());

  h.client_ch[0]->kill_at(1);
  h.client_ch[1]->kill_at(1);
  // Exhaust both reconnect ladders quickly: make every re-dial fail too.
  for (u32 i = 0; i < 2; ++i) h.group->path(i).force_recover("test: kill all");
  Burst burst(10);
  burst.submit(*h.group);
  h.sched.run();

  // With no path left, every command must still complete (with an error) —
  // never hang — and exactly once.
  EXPECT_EQ(burst.ok + burst.failed, 10);
  EXPECT_TRUE(burst.each_exactly_once());
  EXPECT_EQ(h.group->live_now(), 0u);
  EXPECT_EQ(h.group->parked_now(), 0u);
}

// --------------------------------------------------------------------------
// ANA steering
// --------------------------------------------------------------------------

TEST(MultipathTest, AnaNonOptimizedHoldsPathInReserve) {
  MultipathHarness h(3);
  h.sched.run();
  ASSERT_TRUE(h.all_connected());

  ASSERT_TRUE(h.service->set_ana_state(
      MultipathHarness::path_name(0), pdu::AnaState::kNonOptimized,
      "admin drain"));
  h.sched.run();
  ASSERT_EQ(h.group->path(0).ana_state(), pdu::AnaState::kNonOptimized);
  EXPECT_EQ(h.group->path(0).resilience().ana_changes, 1u);

  const u64 before = h.group->path(0).ios_completed();
  Burst burst(30);
  burst.submit(*h.group);
  h.sched.run();
  EXPECT_EQ(burst.ok, 30);
  // While optimized paths exist, the non-optimized one carries nothing new.
  EXPECT_EQ(h.group->path(0).ios_completed(), before);
}

TEST(MultipathTest, NonOptimizedPathStillServesWhenItIsAllThatIsLeft) {
  MultipathHarness h(2);
  h.sched.run();
  ASSERT_TRUE(h.all_connected());

  ASSERT_TRUE(h.service->set_ana_state(MultipathHarness::path_name(0),
                                       pdu::AnaState::kNonOptimized,
                                       "degraded link"));
  h.sched.run();
  h.client_ch[1]->kill_at(2);  // the only optimized path dies
  Burst burst(20);
  burst.submit(*h.group);
  h.sched.run();
  EXPECT_EQ(burst.ok, 20);
  EXPECT_TRUE(burst.each_exactly_once());
  EXPECT_GT(h.group->path(0).ios_completed(), 0u);
}

TEST(MultipathTest, InaccessibleEverywhereParksUntilReopened) {
  MultipathHarness h(2);
  h.sched.run();
  ASSERT_TRUE(h.all_connected());

  for (u32 i = 0; i < 2; ++i) {
    ASSERT_TRUE(h.service->set_ana_state(MultipathHarness::path_name(i),
                                         pdu::AnaState::kInaccessible,
                                         "maintenance window"));
  }
  h.sched.run();

  Burst burst(5);
  burst.submit(*h.group);
  h.sched.run();
  // Nothing is eligible, but nothing is dead either: wait, don't fail.
  EXPECT_EQ(burst.ok + burst.failed, 0);
  EXPECT_EQ(h.group->parked_now(), 5u);
  EXPECT_GE(h.group->parked_total(), 5u);

  ASSERT_TRUE(h.service->set_ana_state(MultipathHarness::path_name(1),
                                       pdu::AnaState::kOptimized,
                                       "maintenance done"));
  h.sched.run();
  EXPECT_EQ(burst.ok, 5);
  EXPECT_TRUE(burst.each_exactly_once());
  EXPECT_EQ(h.group->parked_now(), 0u);
}

TEST(MultipathTest, ParkOverflowFailsFastWithQueueFull) {
  // Bounded parked queue (DESIGN.md §12): with every path held in an ANA
  // maintenance window, only max_parked submissions wait; the excess fails
  // fast with retryable kQueueFull instead of growing the queue forever.
  MultipathHarness h(2, nullptr, /*max_parked=*/4);
  h.sched.run();
  ASSERT_TRUE(h.all_connected());
  for (u32 i = 0; i < 2; ++i) {
    ASSERT_TRUE(h.service->set_ana_state(MultipathHarness::path_name(i),
                                         pdu::AnaState::kInaccessible,
                                         "maintenance window"));
  }
  h.sched.run();

  std::vector<u8> data(4096, 0xA5);
  std::vector<pdu::NvmeStatus> overflowed;
  int completed_ok = 0;
  for (int i = 0; i < 10; ++i) {
    h.group->write(1, static_cast<u64>(i) * 8, data,
                   [&](IoSession::IoResult r) {
                     if (r.ok()) {
                       completed_ok++;
                     } else {
                       overflowed.push_back(r.cpl.status);
                     }
                   });
  }
  h.sched.run();

  EXPECT_EQ(h.group->parked_now(), 4u);
  EXPECT_EQ(h.group->park_overflows(), 6u);
  ASSERT_EQ(overflowed.size(), 6u);
  for (const auto s : overflowed) EXPECT_EQ(s, pdu::NvmeStatus::kQueueFull);
  EXPECT_EQ(completed_ok, 0);

  // Drain after recovery: reopening one path completes the parked four
  // exactly once each, and the overflow left no stuck live entries.
  ASSERT_TRUE(h.service->set_ana_state(MultipathHarness::path_name(0),
                                       pdu::AnaState::kOptimized,
                                       "maintenance done"));
  h.sched.run();
  EXPECT_EQ(completed_ok, 4);
  EXPECT_EQ(h.group->parked_now(), 0u);
  EXPECT_EQ(h.group->live_now(), 0u);
}

TEST(MultipathTest, GroupStillUsableAfterParkOverflow) {
  // The fast-fail path must leave the group coherent: once a path returns,
  // fresh submissions flow normally and nothing double-completes.
  MultipathHarness h(2, nullptr, /*max_parked=*/2);
  h.sched.run();
  ASSERT_TRUE(h.all_connected());
  for (u32 i = 0; i < 2; ++i) {
    ASSERT_TRUE(h.service->set_ana_state(MultipathHarness::path_name(i),
                                         pdu::AnaState::kInaccessible, "mw"));
  }
  h.sched.run();

  Burst first(6);  // 2 park, 4 overflow
  first.submit(*h.group);
  h.sched.run();
  EXPECT_EQ(h.group->park_overflows(), 4u);
  EXPECT_EQ(first.failed, 4);

  for (u32 i = 0; i < 2; ++i) {
    ASSERT_TRUE(h.service->set_ana_state(MultipathHarness::path_name(i),
                                         pdu::AnaState::kOptimized, "done"));
  }
  h.sched.run();
  EXPECT_EQ(first.ok, 2);
  EXPECT_TRUE(first.each_exactly_once());

  Burst second(8);
  second.submit(*h.group);
  h.sched.run();
  EXPECT_EQ(second.ok, 8);
  EXPECT_TRUE(second.each_exactly_once());
  EXPECT_EQ(h.group->live_now(), 0u);
}

TEST(MultipathTest, StaleAnaLogNeverRegressesState) {
  MultipathHarness h(2);
  h.sched.run();
  ASSERT_TRUE(h.all_connected());

  auto inject = [&](u64 seq, pdu::AnaState s) {
    pdu::AnaLog log;
    log.state = s;
    log.change_seq = seq;
    log.reason = "forged";
    pdu::Pdu p;
    p.header = log;
    h.target_ch[0]->inject(std::move(p));
    h.sched.run();
  };

  inject(5, pdu::AnaState::kInaccessible);
  EXPECT_EQ(h.group->path(0).ana_state(), pdu::AnaState::kInaccessible);
  // A reordered older notice arrives late: it must be ignored.
  inject(3, pdu::AnaState::kOptimized);
  EXPECT_EQ(h.group->path(0).ana_state(), pdu::AnaState::kInaccessible);
  inject(6, pdu::AnaState::kOptimized);
  EXPECT_EQ(h.group->path(0).ana_state(), pdu::AnaState::kOptimized);
  EXPECT_EQ(h.group->path(0).resilience().ana_changes, 2u);
}

// --------------------------------------------------------------------------
// Degenerate single path
// --------------------------------------------------------------------------

TEST(MultipathTest, SinglePathDegeneratesToReconnectSemantics) {
  MultipathHarness h(1);
  h.sched.run();
  ASSERT_TRUE(h.all_connected());
  // N == 1 delegates zero-copy straight through to the shm path.
  EXPECT_EQ(h.group->supports_zero_copy(),
            h.group->path(0).supports_zero_copy());

  Burst burst(10);
  burst.submit(*h.group);
  h.group->path(0).force_recover("test: transient fault");
  h.sched.run();

  // With nowhere to re-drive, the path's own reconnect machinery carries
  // the burst: it re-dials, replays, and completes everything.
  EXPECT_EQ(burst.ok, 10);
  EXPECT_TRUE(burst.each_exactly_once());
  EXPECT_FALSE(h.group->path(0).dead());
  EXPECT_GE(h.group->path(0).resilience().reconnects, 1u);
  EXPECT_EQ(h.group->redrives(), 0u);
  EXPECT_EQ(h.dials[0], 2);
}

}  // namespace
}  // namespace oaf::nvmf

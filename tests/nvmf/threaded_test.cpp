// Full-stack functional-plane test with the OS in the loop: client and
// target run on separate reactor threads, the control path is a real
// socketpair, and the shared-memory channel is a real POSIX shm region
// (distinct mappings) — the closest this repo gets to the paper's
// two-VM + IVSHMEM deployment on one machine.
#include <gtest/gtest.h>

#include <atomic>

#include "af/locality.h"
#include "net/socket_channel.h"
#include "nvmf/initiator.h"
#include "nvmf/target.h"
#include "sim/real_executor.h"
#include "ssd/real_device.h"

namespace oaf::nvmf {
namespace {

struct ThreadedHarness {
  explicit ThreadedHarness(af::AfConfig cfg)
      : broker(1, af::ShmBroker::Backing::kPosixShm),
        device(target_exec, 512, 1 << 18),
        subsystem("nqn.threaded") {
    (void)subsystem.add_namespace(1, &device);
    auto pair = net::make_socket_channel_pair(client_exec, target_exec).take();
    client_ch = std::move(pair.first);
    target_ch = std::move(pair.second);

    const std::string conn =
        "threaded_" + std::to_string(getpid()) + "_" + std::to_string(counter++);
    TargetOptions topts{cfg, conn};
    target = std::make_unique<NvmfTargetConnection>(
        target_exec, *target_ch, copier, broker, subsystem, topts);
    InitiatorOptions iopts;
    iopts.af = cfg;
    iopts.queue_depth = 16;
    iopts.connection_name = conn;
    initiator = std::make_unique<NvmfInitiator>(client_exec, *client_ch, copier,
                                                broker, iopts);

    std::atomic<bool> connected{false};
    client_exec.post([this, &connected] {
      initiator->connect([&connected](Status st) {
        EXPECT_TRUE(st.is_ok());
        connected = true;
      });
    });
    while (!connected.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  static inline std::atomic<int> counter{0};

  sim::RealExecutor client_exec;
  sim::RealExecutor target_exec;
  net::InlineCopier copier;
  af::ShmBroker broker;
  ssd::RealDevice device;
  ssd::Subsystem subsystem;
  std::unique_ptr<net::MsgChannel> client_ch;
  std::unique_ptr<net::MsgChannel> target_ch;
  std::unique_ptr<NvmfTargetConnection> target;
  std::unique_ptr<NvmfInitiator> initiator;
};

TEST(ThreadedNvmfTest, ShmPathOverRealSocketsAndPosixShm) {
  ThreadedHarness h(af::AfConfig::oaf());
  EXPECT_TRUE(h.initiator->shm_active());

  std::vector<u8> data(128 * 1024);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 11);

  std::atomic<bool> wrote{false};
  h.client_exec.post([&] {
    h.initiator->write(1, 0, data, [&](NvmfInitiator::IoResult r) {
      EXPECT_TRUE(r.ok());
      wrote = true;
    });
  });
  while (!wrote.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));

  auto out = std::make_shared<std::vector<u8>>(data.size());
  std::atomic<bool> read{false};
  h.client_exec.post([&] {
    h.initiator->read(1, 0, *out, [&](NvmfInitiator::IoResult r) {
      EXPECT_TRUE(r.ok());
      read = true;
    });
  });
  while (!read.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(*out, data);
}

TEST(ThreadedNvmfTest, TcpOnlyPathOverRealSockets) {
  ThreadedHarness h(af::AfConfig::stock_tcp());
  EXPECT_FALSE(h.initiator->shm_active());

  std::vector<u8> data(512 * 1024);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 3 + 1);
  auto out = std::make_shared<std::vector<u8>>(data.size());

  std::atomic<int> done{0};
  h.client_exec.post([&] {
    h.initiator->write(1, 16, data, [&](NvmfInitiator::IoResult r) {
      EXPECT_TRUE(r.ok());
      h.initiator->read(1, 16, *out, [&](NvmfInitiator::IoResult r2) {
        EXPECT_TRUE(r2.ok());
        done = 1;
      });
    });
  });
  while (done.load() == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(*out, data);
}

TEST(ThreadedNvmfTest, PipelinedBurstUnderRealConcurrency) {
  ThreadedHarness h(af::AfConfig::oaf());
  constexpr int kIos = 200;
  std::vector<u8> data(16 * 1024, 0x5C);
  std::atomic<int> completed{0};
  h.client_exec.post([&] {
    for (int i = 0; i < kIos; ++i) {
      h.initiator->write(1, static_cast<u64>(i) * 32, data,
                         [&](NvmfInitiator::IoResult r) {
                           EXPECT_TRUE(r.ok());
                           completed.fetch_add(1);
                         });
    }
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (completed.load() < kIos &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(completed.load(), kIos);
  EXPECT_EQ(h.target->commands_served(), static_cast<u64>(kIos));
}

}  // namespace
}  // namespace oaf::nvmf

// Keep-alive, association reaping, and runtime shm demotion.
//
// The keep-alive loop re-arms itself, so these tests drive the virtual
// clock with run_until() — sim::Scheduler::run() would chase the timer
// forever.
#include <gtest/gtest.h>

#include <functional>

#include "af/locality.h"
#include "net/fault_channel.h"
#include "net/pipe_channel.h"
#include "nvmf/initiator.h"
#include "nvmf/target_service.h"
#include "sim/scheduler.h"
#include "ssd/real_device.h"

namespace oaf::nvmf {
namespace {

struct KaHarness {
  explicit KaHarness(TargetServiceOptions sopts = {af::AfConfig::oaf()})
      : broker(1), device(sched, 512, 1 << 18), subsystem("nqn.ka") {
    (void)subsystem.add_namespace(1, &device);
    service = std::make_unique<NvmfTargetService>(sched, copier, broker,
                                                  subsystem, sopts);
  }

  /// Dial a fresh FaultChannel-wrapped pair and register the target side
  /// with the service under `conn_name`.
  std::unique_ptr<net::MsgChannel> dial(const std::string& conn_name) {
    auto [c, t] =
        net::wrap_fault_pair(net::make_pipe_channel_pair(sched, sched), {});
    client_ch = c.get();
    target_ch = t.get();
    service->accept(std::move(t), conn_name);
    return std::move(c);
  }

  std::unique_ptr<NvmfInitiator> make_initiator(InitiatorOptions iopts) {
    auto init = std::make_unique<NvmfInitiator>(
        sched,
        [this, name = iopts.connection_name] { return dial(name); },
        copier, broker, iopts);
    init->connect([](Status) {});
    return init;
  }

  sim::Scheduler sched;
  net::InlineCopier copier;
  af::ShmBroker broker;
  ssd::RealDevice device;
  ssd::Subsystem subsystem;
  std::unique_ptr<NvmfTargetService> service;
  net::FaultChannel* client_ch = nullptr;
  net::FaultChannel* target_ch = nullptr;
};

InitiatorOptions ka_opts(DurNs ka_interval, u32 miss_limit = 3) {
  InitiatorOptions iopts{af::AfConfig::oaf(), 8, "ka", 0, {}};
  iopts.reconnect.max_attempts = 5;
  iopts.reconnect.initial_backoff_ns = 1'000'000;
  iopts.reconnect.handshake_timeout_ns = 10'000'000;
  iopts.reconnect.keepalive_interval_ns = ka_interval;
  iopts.reconnect.keepalive_miss_limit = miss_limit;
  return iopts;
}

TEST(KeepAliveTest, PingsAreEchoedAndNoMissesOnHealthyChannel) {
  KaHarness h;
  auto init = h.make_initiator(ka_opts(1'000'000));
  h.sched.run_until(10'000'000);
  ASSERT_TRUE(init->connected());
  EXPECT_GE(init->resilience().keepalive_sent, 5u);
  EXPECT_EQ(init->resilience().keepalive_misses, 0u);
  EXPECT_GE(h.service->find("ka")->keepalives_answered(), 5u);
}

TEST(KeepAliveTest, MissLimitTriggersRecoveryAndReconnect) {
  KaHarness h;
  auto init = h.make_initiator(ka_opts(1'000'000, 3));
  h.sched.run_until(500'000);  // handshake settles at t=0
  ASSERT_TRUE(init->connected());

  // Kill the host->target direction: pings vanish, no echo ever returns,
  // and with a silent target there is no other traffic to prove liveness.
  h.client_ch->partition();
  h.sched.run_until(30'000'000);

  EXPECT_GE(init->resilience().keepalive_misses, 3u);
  EXPECT_EQ(init->resilience().reconnects, 1u);
  EXPECT_TRUE(init->connected());
  EXPECT_FALSE(init->dead());
  // The replacement association answers pings again.
  EXPECT_GE(h.service->find("ka")->keepalives_answered(), 1u);
}

TEST(KeepAliveTest, TargetReapsExpiredAssociationAndAcceptsSameName) {
  KaHarness h;
  InitiatorOptions iopts{af::AfConfig::oaf(), 8, "ka", 0, {}};
  iopts.reconnect.kato_ns = 5'000'000;  // advertised in ICReq
  auto init = h.make_initiator(iopts);
  h.sched.run_until(500'000);
  ASSERT_TRUE(init->connected());
  ASSERT_TRUE(init->shm_active());
  ASSERT_EQ(h.service->active(), 1u);
  EXPECT_EQ(h.service->find("ka")->kato_ns(), 5'000'000);

  // The host goes silent (no keep-alive configured). Let the virtual clock
  // pass the KATO, then reap.
  h.sched.schedule_after(20'000'000, [] {});
  h.sched.run_until(21'000'000);
  EXPECT_EQ(h.service->reap_expired(), 1u);
  EXPECT_EQ(h.service->active(), 0u);

  // The same client name must be accepted again with a fresh shm grant —
  // the reap released the region the name was holding.
  auto init2 = h.make_initiator(iopts);
  h.sched.run_until(22'000'000);
  EXPECT_TRUE(init2->connected());
  EXPECT_TRUE(init2->shm_active());
  EXPECT_EQ(h.service->active(), 1u);
}

TEST(KeepAliveTest, PeriodicReaperCollectsSilentAssociation) {
  TargetServiceOptions sopts{af::AfConfig::oaf()};
  sopts.default_kato_ns = 5'000'000;  // applies when the client stays mute
  sopts.reaper_interval_ns = 2'000'000;
  KaHarness h(sopts);
  h.service->start_reaper();
  auto init = h.make_initiator({af::AfConfig::oaf(), 8, "ka", 0, {}});
  h.sched.run_until(500'000);
  ASSERT_TRUE(init->connected());
  ASSERT_EQ(h.service->active(), 1u);

  // No traffic at all: the reaper's own timer advances the clock past the
  // default KATO and collects the corpse without any help.
  h.sched.run_until(30'000'000);
  EXPECT_EQ(h.service->active(), 0u);
  EXPECT_GE(h.service->reaped(), 1u);
}

TEST(KeepAliveTest, ClosedChannelIsReapedImmediately) {
  KaHarness h;
  auto init = h.make_initiator({af::AfConfig::oaf(), 8, "ka", 0, {}});
  h.sched.run_until(500'000);
  ASSERT_TRUE(init->connected());

  h.client_ch->close();  // client hangs up (pipe close is shared)
  h.sched.run_until(1'000'000);
  EXPECT_EQ(h.service->reap_expired(), 1u);
  EXPECT_EQ(h.service->active(), 0u);
}

TEST(ShmDemotionTest, RuntimeDemotionKeepsInflightIoAliveAndDataIntact) {
  KaHarness h;
  InitiatorOptions iopts{af::AfConfig::oaf(), 8, "ka", 0, {}};
  auto init = h.make_initiator(iopts);
  h.sched.run();
  ASSERT_TRUE(init->connected());
  ASSERT_TRUE(init->shm_active());

  // 16 writes: 8 ride shm slots immediately, 8 queue behind them. Demote
  // mid-burst — parked slot payloads must drain, queued writes must go
  // inline, and not a single I/O may fail.
  constexpr int kIos = 16;
  constexpr u64 kIoBytes = 4096;
  std::vector<std::vector<u8>> bufs(kIos);
  int ok = 0;
  int failed = 0;
  for (int i = 0; i < kIos; ++i) {
    bufs[i].assign(kIoBytes, static_cast<u8>(0x21 + i));
    init->write(1, static_cast<u64>(i) * 8, bufs[i],
                [&](NvmfInitiator::IoResult r) { (r.ok() ? ok : failed)++; });
  }
  init->demote_shm("test: runtime demotion");
  EXPECT_FALSE(init->shm_active());  // producers switch off instantly
  h.sched.run();

  EXPECT_EQ(ok, kIos);
  EXPECT_EQ(failed, 0);
  EXPECT_EQ(init->resilience().shm_demotions, 1u);
  EXPECT_EQ(h.service->find("ka")->shm_demotions(), 1u);  // ShmDemote heard

  // Read-back (now inline over TCP) must be byte-identical.
  int verified = 0;
  std::vector<std::vector<u8>> rbufs(kIos);
  for (int i = 0; i < kIos; ++i) {
    rbufs[i].assign(kIoBytes, 0);
    init->read(1, static_cast<u64>(i) * 8, rbufs[i],
               [&, i](NvmfInitiator::IoResult r) {
                 verified += r.ok() && rbufs[i] == bufs[i];
               });
  }
  h.sched.run();
  EXPECT_EQ(verified, kIos);

  // Demotion is idempotent.
  init->demote_shm("test: again");
  EXPECT_EQ(init->resilience().shm_demotions, 1u);
}

TEST(ShmDemotionTest, DemotionWithoutShmIsANoop) {
  KaHarness h;
  auto init =
      h.make_initiator({af::AfConfig::stock_tcp(), 8, "ka", 0, {}});
  h.sched.run();
  ASSERT_TRUE(init->connected());
  ASSERT_FALSE(init->shm_active());
  init->demote_shm("test: nothing to demote");
  EXPECT_EQ(init->resilience().shm_demotions, 0u);
}

}  // namespace
}  // namespace oaf::nvmf

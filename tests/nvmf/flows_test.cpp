// Message-count verification of the protocol flows — the mechanics behind
// the paper's flow-control optimization (Fig 7: shm in-capsule flow
// eliminates the R2T and H2CData messages; the SUCCESS flag folds the read
// completion into the data PDU).
#include <gtest/gtest.h>

#include "af/locality.h"
#include "net/pipe_channel.h"
#include "nvmf/initiator.h"
#include "nvmf/target.h"
#include "sim/scheduler.h"
#include "ssd/real_device.h"

namespace oaf::nvmf {
namespace {

struct CountingHarness {
  explicit CountingHarness(af::AfConfig cfg)
      : broker(1), device(sched, 512, 1 << 18), subsystem("nqn") {
    (void)subsystem.add_namespace(1, &device);
    auto pair = net::make_pipe_channel_pair(sched, sched);
    client_ch = std::move(pair.first);
    target_ch = std::move(pair.second);
    TargetOptions topts{cfg, "flows"};
    target = std::make_unique<NvmfTargetConnection>(sched, *target_ch, copier,
                                                    broker, subsystem, topts);
    InitiatorOptions iopts;
    iopts.af = cfg;
    iopts.queue_depth = 16;
    iopts.connection_name = "flows";
    initiator =
        std::make_unique<NvmfInitiator>(sched, *client_ch, copier, broker, iopts);
    initiator->connect([](Status) {});
    sched.run();
  }

  /// PDUs exchanged (both directions) by `fn`, excluding the handshake.
  u64 pdus_for(const std::function<void()>& fn) {
    const u64 before = client_ch->pdus_sent() + target_ch->pdus_sent();
    fn();
    sched.run();
    return client_ch->pdus_sent() + target_ch->pdus_sent() - before;
  }

  sim::Scheduler sched;
  net::InlineCopier copier;
  af::ShmBroker broker;
  ssd::RealDevice device;
  ssd::Subsystem subsystem;
  std::unique_ptr<net::MsgChannel> client_ch;
  std::unique_ptr<net::MsgChannel> target_ch;
  std::unique_ptr<NvmfTargetConnection> target;
  std::unique_ptr<NvmfInitiator> initiator;
};

TEST(FlowsTest, ShmWriteInCapsuleUsesTwoMessages) {
  CountingHarness h(af::AfConfig::oaf());
  std::vector<u8> data(128 * 1024);
  const u64 pdus = h.pdus_for([&] {
    h.initiator->write(1, 0, data, [](auto r) { EXPECT_TRUE(r.ok()); });
  });
  // CapsuleCmd + CapsuleResp.
  EXPECT_EQ(pdus, 2u);
}

TEST(FlowsTest, ShmConservativeWriteUsesFourMessages) {
  af::AfConfig cfg = af::AfConfig::oaf();
  cfg.flow_control = af::FlowControlMode::kConservative;
  cfg.zero_copy = false;
  CountingHarness h(cfg);
  std::vector<u8> data(128 * 1024);
  const u64 pdus = h.pdus_for([&] {
    h.initiator->write(1, 0, data, [](auto r) { EXPECT_TRUE(r.ok()); });
  });
  // CapsuleCmd + R2T + H2CData(notify) + CapsuleResp — Fig 7's four steps.
  EXPECT_EQ(pdus, 4u);
}

TEST(FlowsTest, ShmReadUsesTwoMessagesWithSuccessFlag) {
  CountingHarness h(af::AfConfig::oaf());
  std::vector<u8> data(64 * 1024);
  h.initiator->write(1, 0, data, [](auto) {});
  h.sched.run();
  std::vector<u8> out(64 * 1024);
  const u64 pdus = h.pdus_for([&] {
    h.initiator->read(1, 0, out, [](auto r) { EXPECT_TRUE(r.ok()); });
  });
  // CapsuleCmd + C2HData(success).
  EXPECT_EQ(pdus, 2u);
}

TEST(FlowsTest, ShmConservativeReadUsesThreeMessages) {
  af::AfConfig cfg = af::AfConfig::oaf();
  cfg.flow_control = af::FlowControlMode::kConservative;
  cfg.zero_copy = false;
  CountingHarness h(cfg);
  std::vector<u8> data(64 * 1024);
  h.initiator->write(1, 0, data, [](auto) {});
  h.sched.run();
  std::vector<u8> out(64 * 1024);
  const u64 pdus = h.pdus_for([&] {
    h.initiator->read(1, 0, out, [](auto r) { EXPECT_TRUE(r.ok()); });
  });
  // CapsuleCmd + C2HData(notify) + CapsuleResp.
  EXPECT_EQ(pdus, 3u);
}

TEST(FlowsTest, TcpSmallWriteInCapsule) {
  CountingHarness h(af::AfConfig::stock_tcp());
  std::vector<u8> data(4 * 1024);
  const u64 pdus = h.pdus_for([&] {
    h.initiator->write(1, 0, data, [](auto r) { EXPECT_TRUE(r.ok()); });
  });
  EXPECT_EQ(pdus, 2u);  // capsule carries the payload inline
}

TEST(FlowsTest, TcpLargeWriteR2TPlusChunks) {
  af::AfConfig cfg = af::AfConfig::stock_tcp();
  cfg.chunk_bytes = 128 * 1024;
  CountingHarness h(cfg);
  std::vector<u8> data(512 * 1024);
  const u64 pdus = h.pdus_for([&] {
    h.initiator->write(1, 0, data, [](auto r) { EXPECT_TRUE(r.ok()); });
  });
  // CapsuleCmd + R2T + 4 H2CData chunks + CapsuleResp.
  EXPECT_EQ(pdus, 7u);
}

TEST(FlowsTest, TcpReadChunkCountFollowsChunkSize) {
  for (const u64 chunk : {128ull * 1024, 512ull * 1024}) {
    af::AfConfig cfg = af::AfConfig::stock_tcp();
    cfg.chunk_bytes = chunk;
    CountingHarness h(cfg);
    std::vector<u8> data(512 * 1024);
    h.initiator->write(1, 0, data, [](auto) {});
    h.sched.run();
    std::vector<u8> out(512 * 1024);
    const u64 pdus = h.pdus_for([&] {
      h.initiator->read(1, 0, out, [](auto r) { EXPECT_TRUE(r.ok()); });
    });
    // CapsuleCmd + ceil(512K/chunk) C2HData + CapsuleResp (stock keeps the
    // separate completion).
    const u64 expect = 1 + (512 * 1024 + chunk - 1) / chunk + 1;
    EXPECT_EQ(pdus, expect) << "chunk=" << chunk;
  }
}

TEST(FlowsTest, ShmControlBytesTiny) {
  // The control messages for a shm transfer must not scale with I/O size.
  CountingHarness h(af::AfConfig::oaf());
  std::vector<u8> data(512 * 1024);
  const u64 before = h.client_ch->bytes_sent() + h.target_ch->bytes_sent();
  h.initiator->write(1, 0, data, [](auto) {});
  h.sched.run();
  const u64 wire = h.client_ch->bytes_sent() + h.target_ch->bytes_sent() - before;
  EXPECT_LT(wire, 300u);  // two small headers, half a MiB of payload in shm
}

TEST(FlowsTest, GovernorAdaptsDuringWorkload) {
  CountingHarness h(af::AfConfig::oaf());
  std::vector<u8> data(4096);
  for (u32 i = 0; i < af::BusyPollGovernor::kWindowOps; ++i) {
    h.initiator->write(1, 0, data, [](auto) {});
    h.sched.run();
  }
  EXPECT_EQ(h.initiator->governor().current_budget(),
            af::BusyPollGovernor::kWriteBudgetNs);
}

}  // namespace
}  // namespace oaf::nvmf

// The timing plane still moves real bytes: payloads traverse simulated TCP
// links, simulated copiers, and the modeled SSD's block store. These tests
// pin that property — figures produced by the sim are backed by transfers
// whose data integrity is verifiable end to end.
#include <gtest/gtest.h>

#include "af/locality.h"
#include "bench/calibration.h"
#include "common/rng.h"
#include "net/copier.h"
#include "net/sim_channel.h"
#include "nvmf/initiator.h"
#include "nvmf/target.h"
#include "ssd/sim_device.h"

namespace oaf::nvmf {
namespace {

struct SimHarness {
  explicit SimHarness(af::AfConfig cfg, bool co_located)
      : tcp_link(sched, bench::tcp_25g()),
        bus(sched, bench::host_shm()),
        client_copier(bus),
        target_copier(bus),
        host_broker(1),
        remote_broker(2),
        device(sched, bench::emulated_ssd()),
        subsystem("nqn.sim") {
    (void)subsystem.add_namespace(1, &device);
    auto pair = tcp_link.connect();
    client_ch = std::move(pair.first);
    target_ch = std::move(pair.second);
    target = std::make_unique<NvmfTargetConnection>(
        sched, *target_ch, target_copier, host_broker, subsystem,
        TargetOptions{cfg, "simint"});
    initiator = std::make_unique<NvmfInitiator>(
        sched, *client_ch, client_copier,
        co_located ? host_broker : remote_broker,
        InitiatorOptions{cfg, 16, "simint"});
    initiator->connect([](Status) {});
    sched.run();
  }

  sim::Scheduler sched;
  net::SimTcpLink tcp_link;
  net::SimMemoryBus bus;
  net::SimCopier client_copier;
  net::SimCopier target_copier;
  af::ShmBroker host_broker;
  af::ShmBroker remote_broker;
  ssd::SimDevice device;
  ssd::Subsystem subsystem;
  net::ChannelPair::first_type client_ch;
  net::ChannelPair::second_type target_ch;
  std::unique_ptr<NvmfTargetConnection> target;
  std::unique_ptr<NvmfInitiator> initiator;
};

class SimPlaneIntegrity : public ::testing::TestWithParam<std::tuple<bool, u64>> {};

TEST_P(SimPlaneIntegrity, WriteReadVerifiesOverModeledFabric) {
  const auto [co_located, io_bytes] = GetParam();
  SimHarness h(af::AfConfig::oaf(), co_located);
  EXPECT_EQ(h.initiator->shm_active(), co_located);

  Rng rng(io_bytes);
  std::vector<u8> data(io_bytes);
  for (auto& b : data) b = static_cast<u8>(rng.next_u64());
  std::vector<u8> out(io_bytes);

  TimeNs write_done = -1;
  h.initiator->write(1, 2048, data, [&](NvmfInitiator::IoResult r) {
    ASSERT_TRUE(r.ok());
    write_done = h.sched.now();
  });
  h.sched.run();
  ASSERT_GT(write_done, 0);  // virtual time actually advanced

  h.initiator->read(1, 2048, out, [](NvmfInitiator::IoResult r) {
    ASSERT_TRUE(r.ok());
  });
  h.sched.run();
  EXPECT_EQ(out, data);

  // Timing sanity: a remote (TCP) 128 KiB transfer must cost at least its
  // 25G wire serialization; a co-located one must not pay the wire at all.
  if (io_bytes == 128 * 1024) {
    const DurNs wire = wire_time_ns(io_bytes, 25.0);
    if (co_located) {
      EXPECT_LT(write_done, 2'000'000);  // sub-2ms: control RTT + copies
    } else {
      EXPECT_GT(write_done, wire);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SimPlaneIntegrity,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values<u64>(4096, 131072, 524288)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "shm" : "tcp") + "_" +
             std::to_string(std::get<1>(info.param)) + "B";
    });

TEST(SimPlaneIntegrityTest, PipelinedMixedWorkloadShadowModel) {
  SimHarness h(af::AfConfig::oaf(), /*co_located=*/true);
  Rng rng(7);
  std::unordered_map<u64, std::vector<u8>> shadow;

  int outstanding = 0;
  for (int i = 0; i < 150; ++i) {
    const u64 slba = 8 * rng.next_below(512);
    const u64 bytes = 4096;
    auto data = std::make_shared<std::vector<u8>>(bytes);
    for (auto& b : *data) b = static_cast<u8>(rng.next_u64());
    for (u64 blk = 0; blk < bytes / 512; ++blk) {
      shadow[slba + blk] =
          std::vector<u8>(data->begin() + static_cast<long>(blk * 512),
                          data->begin() + static_cast<long>((blk + 1) * 512));
    }
    outstanding++;
    h.initiator->write(1, slba, *data, [&outstanding, data](auto r) {
      EXPECT_TRUE(r.ok());
      outstanding--;
    });
    if (i % 10 == 0) h.sched.run();
  }
  h.sched.run();
  EXPECT_EQ(outstanding, 0);

  int checked = 0;
  for (const auto& [lba, expect] : shadow) {
    auto out = std::make_shared<std::vector<u8>>(512);
    h.initiator->read(1, lba, *out, [&checked, out, expect = expect](auto r) {
      EXPECT_TRUE(r.ok());
      EXPECT_EQ(*out, expect);
      checked++;
    });
  }
  h.sched.run();
  EXPECT_EQ(checked, static_cast<int>(shadow.size()));
}

TEST(SimPlaneIntegrityTest, VirtualTimeOrdersWithFabricSpeed) {
  // The same transfer must take longer on a slower modeled wire.
  auto elapsed_for = [](const net::TcpFabricParams& tcp) {
    sim::Scheduler sched;
    net::SimTcpLink link(sched, tcp);
    net::SimMemoryBus bus(sched, bench::host_shm());
    net::SimCopier copier(bus);
    af::ShmBroker remote(2);
    af::ShmBroker host(1);
    ssd::SimDevice device(sched, bench::emulated_ssd());
    ssd::Subsystem subsystem("nqn");
    (void)subsystem.add_namespace(1, &device);
    auto pair = link.connect();
    net::InlineCopier tcopier;
    NvmfTargetConnection target(sched, *pair.second, tcopier, host, subsystem,
                                TargetOptions{af::AfConfig::stock_tcp(), "t"});
    NvmfInitiator client(sched, *pair.first, copier, remote,
                         InitiatorOptions{af::AfConfig::stock_tcp(), 4, "t"});
    client.connect([](Status) {});
    sched.run();
    std::vector<u8> data(512 * 1024);
    TimeNs done = 0;
    const TimeNs t0 = sched.now();
    client.write(1, 0, data, [&](auto r) {
      ASSERT_TRUE(r.ok());
      done = sched.now() - t0;
    });
    sched.run();
    return done;
  };
  const DurNs slow = elapsed_for(bench::tcp_10g());
  const DurNs fast = elapsed_for(bench::tcp_100g());
  EXPECT_GT(slow, fast);
  EXPECT_GT(slow, wire_time_ns(512 * 1024, 10.0));
}

}  // namespace
}  // namespace oaf::nvmf

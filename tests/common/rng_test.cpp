#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace oaf {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) same++;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (u64 bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformMeanApproximatesHalf) {
  Rng rng(13);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.next_exponential(50.0);
  EXPECT_NEAR(sum / kN, 50.0, 1.0);
}

TEST(RngTest, ExponentialNonNegative) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.next_exponential(10.0), 0.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  double sum = 0;
  double sq = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(RngTest, LognormalPositiveAndHeavyTailed) {
  Rng rng(29);
  double max = 0;
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.next_lognormal(0.0, 1.0);
    EXPECT_GT(v, 0.0);
    sum += v;
    max = std::max(max, v);
  }
  // Mean of LN(0,1) is exp(0.5) ~ 1.6487; the max should be far above it.
  EXPECT_NEAR(sum / kN, 1.6487, 0.1);
  EXPECT_GT(max, 10.0);
}

TEST(RngTest, BoolProbability) {
  Rng rng(31);
  int trues = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.next_bool(0.3)) trues++;
  }
  EXPECT_NEAR(static_cast<double>(trues) / kN, 0.3, 0.01);
}

TEST(RngTest, ReseedResetsSequence) {
  Rng rng(41);
  const u64 first = rng.next_u64();
  rng.next_u64();
  rng.reseed(41);
  EXPECT_EQ(rng.next_u64(), first);
}

}  // namespace
}  // namespace oaf

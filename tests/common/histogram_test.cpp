#include "common/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace oaf {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.record(1234);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1234);
  EXPECT_EQ(h.max(), 1234);
  EXPECT_DOUBLE_EQ(h.mean(), 1234.0);
  // Representative within bucket relative error.
  EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 1234.0, 1234.0 * 0.02 + 1);
}

TEST(HistogramTest, SmallValuesExact) {
  // Tier 0 (< 64) is exact.
  Histogram h;
  for (int v = 0; v < 64; ++v) h.record(v);
  EXPECT_EQ(h.percentile(0.0), 0);
  EXPECT_EQ(h.percentile(1.0), 63);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 63);
}

TEST(HistogramTest, NegativeClampsToZero) {
  Histogram h;
  h.record(-50);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, PercentilesMonotone) {
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) {
    h.record(static_cast<i64>(rng.next_below(10'000'000)));
  }
  i64 prev = 0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 0.9999, 1.0}) {
    const i64 v = h.percentile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(HistogramTest, PercentileAccuracyUniform) {
  Histogram h;
  Rng rng(9);
  constexpr i64 kMax = 1'000'000;
  for (int i = 0; i < 200000; ++i) {
    h.record(static_cast<i64>(rng.next_below(kMax)));
  }
  // Uniform distribution: percentile q should be ~ q * kMax within a few %.
  for (double q : {0.25, 0.5, 0.75, 0.9}) {
    const double expect = q * kMax;
    EXPECT_NEAR(static_cast<double>(h.percentile(q)), expect, expect * 0.05)
        << "q=" << q;
  }
}

TEST(HistogramTest, PercentileBoundedByMax) {
  Histogram h;
  h.record(100);
  h.record(1'000'000'000);
  EXPECT_LE(h.percentile(1.0), 1'000'000'000);
  EXPECT_EQ(h.max(), 1'000'000'000);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; ++i) a.record(10);
  for (int i = 0; i < 100; ++i) b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_NEAR(a.mean(), 505.0, 1e-9);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.record(42);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0);
}

TEST(HistogramTest, TailPercentileFindsOutliers) {
  // 99.99% of samples at ~100, a few at 1e8: p9999 should see the outliers
  // once they exceed 1/10000 of the population.
  Histogram h;
  for (int i = 0; i < 9990; ++i) h.record(100);
  for (int i = 0; i < 10; ++i) h.record(100'000'000);
  EXPECT_GT(h.p9999(), 1'000'000);
  EXPECT_LT(h.p50(), 200);
}

TEST(HistogramTest, QuantileMatchesPercentileAliasAndClamps) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i * 1000);
  // quantile() is the primary API; percentile() is the legacy alias.
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(h.quantile(q), h.percentile(q));
  }
  // Out-of-range inputs clamp instead of misbehaving.
  EXPECT_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_EQ(h.quantile(2.0), h.quantile(1.0));
  EXPECT_EQ(Histogram().quantile(0.5), 0);
}

TEST(HistogramTest, SumAccumulatesAndMerges) {
  Histogram h;
  h.record(100);
  h.record(250);
  EXPECT_EQ(h.sum(), 350);
  Histogram other;
  other.record(50);
  h.merge(other);
  EXPECT_EQ(h.sum(), 400);
  h.reset();
  EXPECT_EQ(h.sum(), 0);
}

TEST(HistogramTest, LargeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.record(INT64_MAX / 2);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.percentile(1.0), 0);
}

class HistogramRelativeError : public ::testing::TestWithParam<i64> {};

TEST_P(HistogramRelativeError, RepresentativeWithinTwoPercent) {
  Histogram h;
  const i64 v = GetParam();
  h.record(v);
  const double rep = static_cast<double>(h.percentile(0.5));
  EXPECT_NEAR(rep, static_cast<double>(v), static_cast<double>(v) * 0.02 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, HistogramRelativeError,
                         ::testing::Values<i64>(1, 63, 64, 100, 1000, 4096,
                                                65535, 1'000'000, 50'000'000,
                                                1'000'000'000, 30'000'000'000));

TEST(HistogramQuantileExtremes, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.0), 0);
  EXPECT_EQ(h.quantile(0.5), 0);
  EXPECT_EQ(h.quantile(1.0), 0);
}

TEST(HistogramQuantileExtremes, SingleSampleAnswersEveryQuantile) {
  Histogram h;
  h.record(777);
  const i64 rep = h.quantile(0.5);
  EXPECT_EQ(h.quantile(0.0), rep);
  EXPECT_EQ(h.quantile(1.0), rep);
  EXPECT_NEAR(static_cast<double>(rep), 777.0, 777.0 * 0.02 + 1.0);
}

TEST(HistogramQuantileExtremes, OutOfRangeQuantilesClampToValidRange) {
  Histogram h;
  h.record(100);
  h.record(200);
  EXPECT_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(HistogramQuantileExtremes, QZeroAndOneBracketTheRecordedRange) {
  Histogram h;
  for (i64 v : {10, 100, 1000, 10000}) h.record(v);
  EXPECT_LE(h.quantile(0.0), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(1.0));
  // q=1 is capped at the exact observed max; q=0 is the representative
  // (bucket upper bound) of the smallest sample's bucket.
  EXPECT_EQ(h.quantile(1.0), h.max());
  EXPECT_GE(h.quantile(0.0), h.min());
  EXPECT_LE(static_cast<double>(h.quantile(0.0)), 10.0 * 1.02 + 1.0);
}

}  // namespace
}  // namespace oaf

// Logger formatting: monotonic timestamps, component tags derived from the
// source path, single-string line rendering, and level parsing for OAF_LOG.
#include <gtest/gtest.h>

#include "common/log.h"

namespace oaf {
namespace {

TEST(LogLevelTest, ParseKnownNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
}

TEST(LogLevelTest, ParseUnknownFallsBackToWarn) {
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level(""), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level(nullptr), LogLevel::kWarn);
  // Case-sensitive by design: environment values are documented lowercase.
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kWarn);
}

TEST(LogLevelTest, SetAndGetRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(before);
  EXPECT_EQ(log_level(), before);
}

TEST(LogComponentTest, KnownRootsTagBySubdirectory) {
  EXPECT_EQ(detail::log_component("/repo/src/nvmf/initiator.cpp"), "nvmf");
  EXPECT_EQ(detail::log_component("/repo/src/af/endpoint.cpp"), "af");
  EXPECT_EQ(detail::log_component("tests/net/socket_channel_test.cpp"), "net");
}

TEST(LogComponentTest, FileDirectlyUnderRootTagsByRoot) {
  EXPECT_EQ(detail::log_component("/repo/tools/oaf_perf.cpp"), "tools");
  EXPECT_EQ(detail::log_component("bench/fig11_overall.cpp"), "bench");
}

TEST(LogComponentTest, UnknownRootUsesParentDirectory) {
  EXPECT_EQ(detail::log_component("/a/b/c.cpp"), "b");
  EXPECT_EQ(detail::log_component("mysrc/foo.cpp"), "mysrc");
}

TEST(LogComponentTest, BarePathsFallBackToDash) {
  EXPECT_EQ(detail::log_component("file.cpp"), "-");
  EXPECT_EQ(detail::log_component(""), "-");
}

TEST(LogComponentTest, RootMustStartASegment) {
  // "mysrc/" must not match the "src/" root mid-segment.
  EXPECT_EQ(detail::log_component("/repo/mysrc/foo.cpp"), "mysrc");
}

TEST(LogFormatTest, LineCarriesUptimeLevelComponentAndLocation) {
  const std::string line = detail::format_log_line(
      1'500'000'000, LogLevel::kInfo, "/repo/src/nvmf/initiator.cpp", 42,
      "hello");
  EXPECT_EQ(line, "[     1.500000] [INFO ] [nvmf] initiator.cpp:42 hello\n");
}

TEST(LogFormatTest, SubSecondTimestampsKeepMicrosecondDigits) {
  const std::string line = detail::format_log_line(
      1'234, LogLevel::kError, "tools/oaf_target.cpp", 7, "x");
  EXPECT_EQ(line, "[     0.000001] [ERROR] [tools] oaf_target.cpp:7 x\n");
}

TEST(LogFormatTest, LineEndsWithExactlyOneNewline) {
  const std::string line =
      detail::format_log_line(0, LogLevel::kWarn, "a/b.cpp", 1, "msg");
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1);
}

TEST(LogUptimeTest, MonotonicNonNegative) {
  const TimeNs a = log_uptime_ns();
  const TimeNs b = log_uptime_ns();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

TEST(LogRateLimiterTest, BurstThenSuppression) {
  detail::LogRateLimiter rl(10.0, 5.0);
  u64 sup = 0;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(rl.allow(0, &sup));
    EXPECT_EQ(sup, 0u);
  }
  for (int i = 0; i < 7; ++i) EXPECT_FALSE(rl.allow(0, &sup));
  EXPECT_EQ(rl.pending_suppressed(), 7u);
}

TEST(LogRateLimiterTest, RefillReportsSuppressedCountOnNextAllowedLine) {
  detail::LogRateLimiter rl(10.0, 1.0);
  u64 sup = 0;
  EXPECT_TRUE(rl.allow(0, &sup));
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(rl.allow(0, &sup));
  // 100ms at 10 tokens/s refills exactly one token; the allowed line
  // carries the count of occurrences swallowed since the previous one,
  // which is what the OAF_WARN_RL "[suppressed N similar]" trailer prints.
  EXPECT_TRUE(rl.allow(100'000'000, &sup));
  EXPECT_EQ(sup, 4u);
  EXPECT_EQ(rl.pending_suppressed(), 0u);
}

TEST(LogRateLimiterTest, RefillCapsAtBurst) {
  detail::LogRateLimiter rl(10.0, 2.0);
  u64 sup = 0;
  // A long idle period refills at most `burst` tokens.
  EXPECT_TRUE(rl.allow(3'600'000'000'000, &sup));
  EXPECT_TRUE(rl.allow(3'600'000'000'000, &sup));
  EXPECT_FALSE(rl.allow(3'600'000'000'000, &sup));
}

TEST(LogRateLimiterTest, SteadyStateConvergesToConfiguredRate) {
  detail::LogRateLimiter rl(10.0, 1.0);
  u64 sup = 0;
  int allowed = 0;
  // 1000 attempts, one per millisecond: ~10/s sustained despite a 1000/s
  // offered rate.
  for (i64 i = 0; i < 1000; ++i) {
    if (rl.allow(i * 1'000'000, &sup)) allowed++;
  }
  EXPECT_GE(allowed, 10);
  EXPECT_LE(allowed, 12);
}

TEST(LogRateLimiterTest, NonMonotonicTimestampsDoNotRefill) {
  detail::LogRateLimiter rl(10.0, 1.0);
  u64 sup = 0;
  EXPECT_TRUE(rl.allow(1'000'000'000, &sup));
  EXPECT_FALSE(rl.allow(500'000'000, &sup));  // clock went backwards
  EXPECT_FALSE(rl.allow(999'999'999, &sup));
}

}  // namespace
}  // namespace oaf

#include "common/json_parse.h"

#include <gtest/gtest.h>

#include "common/json.h"

namespace oaf {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(json_parse("null").value().is_null());
  EXPECT_TRUE(json_parse("true").value().as_bool());
  EXPECT_FALSE(json_parse("false").value().as_bool(true));
  EXPECT_DOUBLE_EQ(json_parse("3.25").value().as_double(), 3.25);
  EXPECT_EQ(json_parse("-42").value().as_i64(), -42);
  EXPECT_EQ(json_parse("\"hi\"").value().as_string(), "hi");
}

TEST(JsonParseTest, StringEscapes) {
  auto v = json_parse(R"("a\"b\\c\nd\teA")");
  ASSERT_TRUE(v);
  EXPECT_EQ(v.value().as_string(), "a\"b\\c\nd\teA");
}

TEST(JsonParseTest, NestedStructure) {
  auto v = json_parse(R"({"a": [1, 2, {"b": true}], "c": {"d": null}})");
  ASSERT_TRUE(v);
  const JsonValue& root = v.value();
  ASSERT_TRUE(root.is_object());
  ASSERT_TRUE(root["a"].is_array());
  EXPECT_EQ(root["a"].items().size(), 3u);
  EXPECT_EQ(root["a"].items()[1].as_i64(), 2);
  EXPECT_TRUE(root["a"].items()[2]["b"].as_bool());
  EXPECT_TRUE(root["c"]["d"].is_null());
  // Absent keys chain null-safely.
  EXPECT_TRUE(root["nope"]["deeper"].is_null());
  EXPECT_EQ(root["nope"]["deeper"].as_i64(7), 7);
  EXPECT_FALSE(root.has("nope"));
  EXPECT_TRUE(root.has("a"));
}

TEST(JsonParseTest, MemberOrderPreserved) {
  auto v = json_parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(v);
  const auto& members = v.value().members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(JsonParseTest, Errors) {
  EXPECT_FALSE(json_parse(""));
  EXPECT_FALSE(json_parse("{"));
  EXPECT_FALSE(json_parse("[1,]"));
  EXPECT_FALSE(json_parse("{\"a\":}"));
  EXPECT_FALSE(json_parse("tru"));
  EXPECT_FALSE(json_parse("1 2"));       // trailing tokens
  EXPECT_FALSE(json_parse("\"unterminated"));
  EXPECT_FALSE(json_parse("{'a': 1}"));  // single quotes are not JSON
}

TEST(JsonParseTest, DeepNestingBounded) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(json_parse(deep));  // over the depth cap, clean error
  std::string ok(32, '[');
  ok += std::string(32, ']');
  EXPECT_TRUE(json_parse(ok));
}

TEST(JsonParseTest, RoundTripsJsonWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("trace \"x\"\nline2");
  w.key("count").value(u64{18446744073709551615ull});
  w.key("neg").value(i64{-123456789});
  w.key("pi").value(3.141592653);
  w.key("list").begin_array().value(true).value(false).end_array();
  w.end_object();
  auto v = json_parse(w.take());
  ASSERT_TRUE(v) << v.status().to_string();
  const JsonValue& root = v.value();
  EXPECT_EQ(root["name"].as_string(), "trace \"x\"\nline2");
  EXPECT_EQ(root["neg"].as_i64(), -123456789);
  EXPECT_NEAR(root["pi"].as_double(), 3.141592653, 1e-6);
  EXPECT_EQ(root["list"].items().size(), 2u);
}

TEST(JsonParseTest, IntegralNumbersSurviveAsI64) {
  // Timestamps up to 2^53 ns (~104 days of uptime) round-trip exactly
  // through the double representation.
  auto v = json_parse("{\"ts\": 9007199254740992}");
  ASSERT_TRUE(v);
  EXPECT_EQ(v.value()["ts"].as_i64(), 9007199254740992);
}

}  // namespace
}  // namespace oaf

#include "common/units.h"

#include <gtest/gtest.h>

namespace oaf {
namespace {

TEST(UnitsTest, SizeLiterals) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(4_KiB, 4096u);
  EXPECT_EQ(1_MiB, 1024u * 1024u);
  EXPECT_EQ(2_GiB, 2ull * 1024 * 1024 * 1024);
}

TEST(UnitsTest, TimeLiterals) {
  EXPECT_EQ(1_us, 1000);
  EXPECT_EQ(3_ms, 3'000'000);
  EXPECT_EQ(2_s, 2'000'000'000);
}

TEST(UnitsTest, GbpsConversion) {
  // 10 Gbps == 1.25e9 bytes/sec.
  EXPECT_DOUBLE_EQ(gbps_to_bytes_per_sec(10.0), 1.25e9);
  EXPECT_DOUBLE_EQ(gbps_to_bytes_per_sec(100.0), 12.5e9);
}

TEST(UnitsTest, WireTime) {
  // 1.25 GB at 10 Gbps takes 1 second.
  EXPECT_EQ(wire_time_ns(1'250'000'000ull, 10.0), 1'000'000'000);
  // 125 bytes at 10 Gbps takes 100 ns.
  EXPECT_EQ(wire_time_ns(125, 10.0), 100);
}

TEST(UnitsTest, TransferTime) {
  EXPECT_EQ(transfer_time_ns(1'000'000, 1e9), 1'000'000);  // 1 MB @ 1 GB/s = 1 ms
  EXPECT_EQ(transfer_time_ns(0, 1e9), 0);
}

TEST(UnitsTest, MibPerSec) {
  // 1 MiB moved in 1 ms = 1000 MiB/s (within fp tolerance).
  EXPECT_NEAR(mib_per_sec(1_MiB, 1_ms), 1000.0, 1e-9);
  EXPECT_EQ(mib_per_sec(123, 0), 0.0);
  EXPECT_EQ(mib_per_sec(123, -5), 0.0);
}

TEST(UnitsTest, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 8), 0u);
  EXPECT_EQ(ceil_div(1, 8), 1u);
  EXPECT_EQ(ceil_div(8, 8), 1u);
  EXPECT_EQ(ceil_div(9, 8), 2u);
  EXPECT_EQ(ceil_div(512_KiB, 128_KiB), 4u);
}

TEST(UnitsTest, AlignUp) {
  EXPECT_EQ(align_up(0, 64), 0u);
  EXPECT_EQ(align_up(1, 64), 64u);
  EXPECT_EQ(align_up(64, 64), 64u);
  EXPECT_EQ(align_up(65, 64), 128u);
}

TEST(UnitsTest, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(4095));
  EXPECT_FALSE(is_pow2(12));
}

TEST(UnitsTest, NsConversions) {
  EXPECT_DOUBLE_EQ(ns_to_us(1500), 1.5);
  EXPECT_DOUBLE_EQ(ns_to_ms(2'500'000), 2.5);
}

}  // namespace
}  // namespace oaf

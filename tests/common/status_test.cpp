#include "common/status.h"

#include <gtest/gtest.h>

namespace oaf {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.is_ok());
  EXPECT_TRUE(static_cast<bool>(st));
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = make_error(StatusCode::kNotFound, "missing thing");
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.to_string(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(make_error(StatusCode::kTimeout, "a"),
            make_error(StatusCode::kTimeout, "b"));
  EXPECT_FALSE(make_error(StatusCode::kTimeout) == Status::ok());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnimplemented); ++c) {
    EXPECT_NE(to_string(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(make_error(StatusCode::kOutOfRange, "too big"));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, TakeMovesValue) {
  Result<std::string> r(std::string("payload"));
  std::string taken = std::move(r).take();
  EXPECT_EQ(taken, "payload");
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.is_ok());
  auto p = std::move(r).take();
  EXPECT_EQ(*p, 7);
}

}  // namespace
}  // namespace oaf

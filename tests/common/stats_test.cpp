#include "common/stats.h"

#include <gtest/gtest.h>

namespace oaf {
namespace {

TEST(LatencyPartsTest, TotalSumsComponents) {
  LatencyParts p{100, 200, 50};
  EXPECT_EQ(p.total(), 350);
}

TEST(LatencyPartsTest, PlusEqualsAccumulates) {
  LatencyParts a{1, 2, 3};
  LatencyParts b{10, 20, 30};
  a += b;
  EXPECT_EQ(a.io, 11);
  EXPECT_EQ(a.comm, 22);
  EXPECT_EQ(a.other, 33);
}

TEST(BreakdownStatsTest, MeanOverRequests) {
  BreakdownStats s;
  s.record({100, 200, 300});
  s.record({300, 400, 500});
  EXPECT_EQ(s.count(), 2u);
  const LatencyParts m = s.mean();
  EXPECT_EQ(m.io, 200);
  EXPECT_EQ(m.comm, 300);
  EXPECT_EQ(m.other, 400);
}

TEST(BreakdownStatsTest, EmptyMeanIsZero) {
  BreakdownStats s;
  const LatencyParts m = s.mean();
  EXPECT_EQ(m.io, 0);
  EXPECT_EQ(m.comm, 0);
  EXPECT_EQ(m.other, 0);
}

TEST(BreakdownStatsTest, MeanRoundsHalfUpInsteadOfTruncating) {
  // A small-but-nonzero component must not truncate to 0 in the mean:
  // 2 ns of "other" over 3 requests reports 1, not 0.
  BreakdownStats s;
  s.record({0, 0, 1});
  s.record({0, 0, 1});
  s.record({0, 0, 0});
  EXPECT_EQ(s.mean().other, 1);
  // Below the midpoint still rounds down (1/3 -> 0)...
  BreakdownStats t;
  t.record({0, 0, 1});
  t.record({0, 0, 0});
  t.record({0, 0, 0});
  EXPECT_EQ(t.mean().other, 0);
  // ...and an exact half rounds up (3/2 -> 2).
  BreakdownStats u;
  u.record({1, 0, 0});
  u.record({2, 0, 0});
  EXPECT_EQ(u.mean().io, 2);
}

TEST(BreakdownStatsTest, MergeAndReset) {
  BreakdownStats a;
  BreakdownStats b;
  a.record({10, 10, 10});
  b.record({30, 30, 30});
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean().io, 20);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
}

TEST(RunStatsTest, BandwidthAndIops) {
  RunStats s;
  s.ios_completed = 1000;
  s.bytes_moved = 1000 * 128 * 1024;   // 1000 x 128 KiB
  s.elapsed = 1'000'000'000;           // 1 s
  EXPECT_NEAR(s.bandwidth_mib_s(), 125.0, 1e-6);
  EXPECT_NEAR(s.iops(), 1000.0, 1e-6);
}

TEST(RunStatsTest, ZeroElapsedSafe) {
  RunStats s;
  EXPECT_EQ(s.bandwidth_mib_s(), 0.0);
  EXPECT_EQ(s.iops(), 0.0);
}

TEST(RunStatsTest, MergeKeepsMaxElapsedAndSums) {
  RunStats a;
  RunStats b;
  a.ios_completed = 10;
  a.bytes_moved = 100;
  a.elapsed = 500;
  b.ios_completed = 20;
  b.bytes_moved = 200;
  b.elapsed = 900;
  a.latency.record(10);
  b.latency.record(20);
  a.merge(b);
  EXPECT_EQ(a.ios_completed, 30u);
  EXPECT_EQ(a.bytes_moved, 300u);
  EXPECT_EQ(a.elapsed, 900);
  EXPECT_EQ(a.latency.count(), 2u);
}

TEST(RunningStatTest, WelfordMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatTest, SingleValueVarianceZero) {
  RunningStat s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.0);
  EXPECT_EQ(s.max(), 3.0);
}

}  // namespace
}  // namespace oaf

#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace oaf {
namespace {

TEST(TableTest, RendersHeaderRowsAndSeparator) {
  Table t("demo");
  t.header({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"beta", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-+-"), std::string::npos);
}

TEST(TableTest, ColumnsWidenToFitCells) {
  Table t("w");
  t.header({"c"});
  t.row({"a-very-long-cell-value"});
  std::ostringstream os;
  t.print(os);
  // Header line must be padded at least as wide as the longest cell.
  std::istringstream in(os.str());
  std::string line;
  std::getline(in, line);          // blank
  std::getline(in, line);          // title
  std::getline(in, line);          // header
  EXPECT_GE(line.size(), std::string("a-very-long-cell-value").size());
}

TEST(TableTest, ShortRowsPadMissingCells) {
  Table t("p");
  t.header({"a", "b", "c"});
  t.row({"only-one"});
  std::ostringstream os;
  t.print(os);  // must not crash or misalign
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(TableTest, NumFormatsFixedPoint) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(1000.0, 0), "1000");
  EXPECT_EQ(Table::num(-2.5, 1), "-2.5");
}

}  // namespace
}  // namespace oaf

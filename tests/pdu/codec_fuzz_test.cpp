// Property-style robustness tests: the decoder must never crash or accept
// garbage silently — a remote peer controls these bytes.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "pdu/codec.h"

namespace oaf::pdu {
namespace {

TEST(CodecFuzzTest, RandomBytesNeverCrash) {
  Rng rng(1234);
  for (int iter = 0; iter < 5000; ++iter) {
    const u64 len = rng.next_below(256);
    std::vector<u8> junk(len);
    for (auto& b : junk) b = static_cast<u8>(rng.next_u64());
    // Must return cleanly — crash/UB would fail the test (and ASAN builds).
    (void)decode(junk, {});
    (void)frame_length(junk);
  }
}

TEST(CodecFuzzTest, BitFlippedValidPdusNeverCrash) {
  Rng rng(99);
  Pdu in;
  CapsuleCmd c;
  c.cmd.opcode = NvmeOpcode::kWrite;
  c.cmd.cid = 3;
  c.data_len = 64;
  c.in_capsule_data = true;
  in.header = c;
  in.payload.resize(64, 0x5A);
  const auto valid = encode(in);

  for (int iter = 0; iter < 5000; ++iter) {
    auto mutated = valid;
    const u64 flips = 1 + rng.next_below(4);
    for (u64 f = 0; f < flips; ++f) {
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<u8>(1u << rng.next_below(8));
    }
    auto res = decode(mutated, {});
    if (res.is_ok()) {
      // Accepted mutations must at least parse to a known type.
      const auto t = res.value().type();
      EXPECT_LE(static_cast<int>(t), static_cast<int>(PduType::kAnaLog));
    }
  }
}

TEST(CodecFuzzTest, TruncationsAtEveryLengthRejectOrParse) {
  Pdu in;
  ICResp resp;
  resp.shm_granted = true;
  resp.shm_name = "conn";
  in.header = resp;
  const auto full = encode(in);
  for (size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<u8> prefix(full.begin(), full.begin() + static_cast<long>(cut));
    auto res = decode(prefix, {});
    EXPECT_FALSE(res.is_ok()) << "cut=" << cut;  // exact length required
  }
  EXPECT_TRUE(decode(full, {}).is_ok());
}

TEST(CodecFuzzTest, AllTypesSurviveHeaderTruncation) {
  std::vector<Pdu> pdus;
  pdus.push_back({ICReq{}, {}});
  pdus.push_back({ICResp{}, {}});
  pdus.push_back({CapsuleCmd{}, {}});
  pdus.push_back({CapsuleResp{}, {}});
  pdus.push_back({R2T{}, {}});
  pdus.push_back({H2CData{}, {}});
  pdus.push_back({C2HData{}, {}});
  pdus.push_back({TermReq{}, {}});
  for (const auto& p : pdus) {
    auto encoded = encode(p);
    // Lie about hlen: claim it is longer than the buffer.
    encoded[2] = 0xFF;
    encoded[3] = 0x00;
    EXPECT_FALSE(decode(encoded, {}).is_ok());
  }
}

}  // namespace
}  // namespace oaf::pdu

#include "pdu/crc32.h"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

namespace oaf::pdu {
namespace {

std::vector<u8> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(Crc32cTest, EmptyIsZero) {
  EXPECT_EQ(crc32c({}), 0u);
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / community-standard CRC32C test vectors.
  const auto v1 = bytes_of("123456789");
  EXPECT_EQ(crc32c(v1), 0xE3069283u);

  std::vector<u8> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);

  std::vector<u8> ones(32, 0xFF);
  EXPECT_EQ(crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const auto all = bytes_of("the quick brown fox jumps over the lazy dog");
  const u32 one_shot = crc32c(all);
  const std::span<const u8> s(all);
  u32 inc = crc32c(s.subspan(0, 10));
  inc = crc32c(s.subspan(10), inc);
  EXPECT_EQ(inc, one_shot);
}

TEST(Crc32cTest, SingleBitFlipDetected) {
  auto data = bytes_of("payload payload payload");
  const u32 before = crc32c(data);
  data[7] ^= 0x01;
  EXPECT_NE(crc32c(data), before);
}

TEST(Crc32cTest, OrderSensitive) {
  const auto ab = bytes_of("ab");
  const auto ba = bytes_of("ba");
  EXPECT_NE(crc32c(ab), crc32c(ba));
}

}  // namespace
}  // namespace oaf::pdu

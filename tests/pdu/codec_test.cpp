#include "pdu/codec.h"

#include <gtest/gtest.h>

#include "pdu/wire_contract.h"

namespace oaf::pdu {
namespace {

template <typename T>
Pdu roundtrip(const T& header, std::vector<u8> payload = {},
              const CodecOptions& opts = {}) {
  Pdu in;
  in.header = header;
  in.payload = std::move(payload);
  const auto encoded = encode(in, opts);
  auto decoded = decode(encoded, opts);
  EXPECT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  return decoded.is_ok() ? std::move(decoded).take() : Pdu{};
}

TEST(CodecTest, ICReqRoundtrip) {
  ICReq req;
  req.pfv = 1;
  req.hpda = 3;
  req.header_digest = true;
  req.maxr2t = 16;
  req.node_token = 0xDEADBEEFCAFEF00DULL;
  req.want_shm = true;
  const Pdu out = roundtrip(req);
  const auto* h = out.as<ICReq>();
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->pfv, 1);
  EXPECT_EQ(h->hpda, 3);
  EXPECT_TRUE(h->header_digest);
  EXPECT_EQ(h->maxr2t, 16u);
  EXPECT_EQ(h->node_token, 0xDEADBEEFCAFEF00DULL);
  EXPECT_TRUE(h->want_shm);
}

TEST(CodecTest, ICRespRoundtripWithName) {
  ICResp resp;
  resp.pfv = 1;
  resp.maxh2cdata = 512 * 1024;
  resp.shm_granted = true;
  resp.shm_bytes = 64ull << 20;
  resp.shm_slots = 128;
  resp.shm_name = "tenant3/conn-17";
  const Pdu out = roundtrip(resp);
  const auto* h = out.as<ICResp>();
  ASSERT_NE(h, nullptr);
  EXPECT_TRUE(h->shm_granted);
  EXPECT_EQ(h->shm_bytes, 64ull << 20);
  EXPECT_EQ(h->shm_slots, 128u);
  EXPECT_EQ(h->shm_name, "tenant3/conn-17");
  EXPECT_TRUE(h->admitted);
}

TEST(CodecTest, ICRespAdmissionRejectRoundtrip) {
  ICResp resp;
  resp.pfv = 1;
  resp.admitted = false;
  resp.retry_after_ms = 250;
  resp.reject_reason = "connection limit reached";
  const Pdu out = roundtrip(resp);
  const auto* h = out.as<ICResp>();
  ASSERT_NE(h, nullptr);
  EXPECT_FALSE(h->admitted);
  EXPECT_EQ(h->retry_after_ms, 250u);
  EXPECT_EQ(h->reject_reason, "connection limit reached");
}

TEST(CodecTest, CapsuleCmdRoundtripWithPayload) {
  CapsuleCmd c;
  c.cmd.opcode = NvmeOpcode::kWrite;
  c.cmd.cid = 77;
  c.cmd.nsid = 2;
  c.cmd.slba = 123456789;
  c.cmd.nlb = 255;
  c.in_capsule_data = true;
  c.placement = DataPlacement::kInline;
  c.data_len = 4096;
  std::vector<u8> payload(4096);
  for (size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<u8>(i * 7);
  const Pdu out = roundtrip(c, payload);
  const auto* h = out.as<CapsuleCmd>();
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->cmd.opcode, NvmeOpcode::kWrite);
  EXPECT_EQ(h->cmd.cid, 77);
  EXPECT_EQ(h->cmd.slba, 123456789u);
  EXPECT_EQ(h->cmd.blocks(), 256u);
  EXPECT_TRUE(h->in_capsule_data);
  EXPECT_EQ(out.payload, payload);
}

TEST(CodecTest, CapsuleCmdShmSlotRoundtrip) {
  CapsuleCmd c;
  c.cmd.opcode = NvmeOpcode::kWrite;
  c.placement = DataPlacement::kShmSlot;
  c.in_capsule_data = true;
  c.shm_slot = 93;
  c.data_len = 128 * 1024;
  const Pdu out = roundtrip(c);
  const auto* h = out.as<CapsuleCmd>();
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->placement, DataPlacement::kShmSlot);
  EXPECT_EQ(h->shm_slot, 93u);
  EXPECT_EQ(h->data_len, 128u * 1024);
  EXPECT_TRUE(out.payload.empty());  // shm reference carries no inline bytes
}

TEST(CodecTest, CapsuleRespRoundtrip) {
  CapsuleResp r;
  r.cpl.cid = 3;
  r.cpl.status = NvmeStatus::kLbaOutOfRange;
  r.cpl.result = 42;
  r.io_time_ns = 123456;
  r.target_time_ns = 789;
  const Pdu out = roundtrip(r);
  const auto* h = out.as<CapsuleResp>();
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->cpl.cid, 3);
  EXPECT_EQ(h->cpl.status, NvmeStatus::kLbaOutOfRange);
  EXPECT_FALSE(h->cpl.ok());
  EXPECT_EQ(h->io_time_ns, 123456u);
  EXPECT_EQ(h->target_time_ns, 789u);
}

TEST(CodecTest, R2TRoundtrip) {
  R2T r;
  r.cid = 9;
  r.ttag = 12;
  r.offset = 1 << 20;
  r.length = 512 * 1024;
  const Pdu out = roundtrip(r);
  const auto* h = out.as<R2T>();
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->cid, 9);
  EXPECT_EQ(h->ttag, 12);
  EXPECT_EQ(h->offset, 1u << 20);
  EXPECT_EQ(h->length, 512u * 1024);
}

TEST(CodecTest, H2CDataRoundtrip) {
  H2CData h2c;
  h2c.cid = 4;
  h2c.ttag = 4;
  h2c.offset = 128 * 1024;
  h2c.length = 64 * 1024;
  h2c.last = false;
  h2c.placement = DataPlacement::kShmSlot;
  h2c.shm_slot = 17;
  const Pdu out = roundtrip(h2c);
  const auto* h = out.as<H2CData>();
  ASSERT_NE(h, nullptr);
  EXPECT_FALSE(h->last);
  EXPECT_EQ(h->placement, DataPlacement::kShmSlot);
  EXPECT_EQ(h->shm_slot, 17u);
}

TEST(CodecTest, C2HDataSuccessFlagRoundtrip) {
  C2HData c2h;
  c2h.cid = 21;
  c2h.length = 4096;
  c2h.last = true;
  c2h.success = true;
  c2h.io_time_ns = 55'000;
  c2h.target_time_ns = 2'000;
  const Pdu out = roundtrip(c2h);
  const auto* h = out.as<C2HData>();
  ASSERT_NE(h, nullptr);
  EXPECT_TRUE(h->success);
  EXPECT_EQ(h->io_time_ns, 55'000u);
}

TEST(CodecTest, ResilienceFieldsRoundtrip) {
  // The attempt tag and digest ride every data-path PDU.
  CapsuleCmd c;
  c.cmd.cid = 5;
  c.gen = 0xBEEF;
  EXPECT_EQ(roundtrip(c).as<CapsuleCmd>()->gen, 0xBEEF);

  CapsuleResp r;
  r.cpl.cid = 5;
  r.gen = 0xBEEF;
  EXPECT_EQ(roundtrip(r).as<CapsuleResp>()->gen, 0xBEEF);

  R2T r2t;
  r2t.cid = 5;
  r2t.gen = 7;
  EXPECT_EQ(roundtrip(r2t).as<R2T>()->gen, 7);

  H2CData h2c;
  h2c.cid = 5;
  h2c.gen = 7;
  h2c.data_digest = 0xDEADBEEF;
  const auto* h = roundtrip(h2c).as<H2CData>();
  EXPECT_EQ(h->gen, 7);
  EXPECT_EQ(h->data_digest, 0xDEADBEEFu);

  C2HData c2h;
  c2h.cid = 5;
  c2h.gen = 9;
  c2h.data_digest = 0x12345678;
  const auto* ch = roundtrip(c2h).as<C2HData>();
  EXPECT_EQ(ch->gen, 9);
  EXPECT_EQ(ch->data_digest, 0x12345678u);
}

TEST(CodecTest, AbortCapsuleRoundtrip) {
  // Abort reuses the command capsule: the victim rides in abort_cid with its
  // attempt tag (0 = any attempt of that cid).
  CapsuleCmd c;
  c.cmd.opcode = NvmeOpcode::kAbort;
  c.cmd.cid = 0xF003;  // abort cids live in their own namespace
  c.cmd.abort_cid = 5;
  c.cmd.abort_gen = 0x1234;
  const Pdu out = roundtrip(c);
  const auto* h = out.as<CapsuleCmd>();
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->cmd.opcode, NvmeOpcode::kAbort);
  EXPECT_EQ(h->cmd.cid, 0xF003);
  EXPECT_EQ(h->cmd.abort_cid, 5);
  EXPECT_EQ(h->cmd.abort_gen, 0x1234);
  EXPECT_TRUE(out.payload.empty());
}

TEST(CodecTest, ICReqKatoAndDigestRoundtrip) {
  ICReq req;
  req.pfv = 1;
  req.data_digest = true;
  req.kato_ns = 15'000'000'000ull;
  const auto* h = roundtrip(req).as<ICReq>();
  ASSERT_NE(h, nullptr);
  EXPECT_TRUE(h->data_digest);
  EXPECT_EQ(h->kato_ns, 15'000'000'000ull);

  ICResp resp;
  resp.pfv = 1;
  resp.data_digest = true;
  EXPECT_TRUE(roundtrip(resp).as<ICResp>()->data_digest);
}

TEST(CodecTest, KeepAliveRoundtrip) {
  for (bool from_host : {true, false}) {
    KeepAlive ka;
    ka.from_host = from_host;
    ka.seq = 42;
    const Pdu out = roundtrip(ka);
    const auto* h = out.as<KeepAlive>();
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->from_host, from_host);
    EXPECT_EQ(h->seq, 42u);
    EXPECT_EQ(out.type(), PduType::kKeepAlive);
  }
}

TEST(CodecTest, ShmDemoteRoundtrip) {
  ShmDemote d;
  d.reason = "checksum storm on ring";
  const Pdu out = roundtrip(d);
  const auto* h = out.as<ShmDemote>();
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->reason, "checksum storm on ring");
  EXPECT_EQ(out.type(), PduType::kShmDemote);
}

TEST(CodecTest, AnaLogRoundtrip) {
  for (AnaState s : {AnaState::kOptimized, AnaState::kNonOptimized,
                     AnaState::kInaccessible}) {
    AnaLog log;
    log.state = s;
    log.change_seq = 42;
    log.reason = "admin drain";
    const Pdu out = roundtrip(log);
    const auto* h = out.as<AnaLog>();
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->state, s);
    EXPECT_EQ(h->change_seq, 42u);
    EXPECT_EQ(h->reason, "admin drain");
    EXPECT_EQ(out.type(), PduType::kAnaLog);
  }
}

TEST(CodecTest, TermReqRoundtripBothDirections) {
  for (bool from_host : {true, false}) {
    TermReq t;
    t.from_host = from_host;
    t.fes = 2;
    t.reason = "protocol violation";
    const Pdu out = roundtrip(t);
    const auto* h = out.as<TermReq>();
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->from_host, from_host);
    EXPECT_EQ(h->reason, "protocol violation");
    EXPECT_EQ(out.type(),
              from_host ? PduType::kH2CTermReq : PduType::kC2HTermReq);
  }
}

TEST(CodecTest, HeaderDigestRoundtrip) {
  CodecOptions opts;
  opts.header_digest = true;
  R2T r;
  r.cid = 1;
  const Pdu out = roundtrip(r, {}, opts);
  EXPECT_NE(out.as<R2T>(), nullptr);
}

TEST(CodecTest, HeaderDigestDetectsCorruption) {
  CodecOptions opts;
  opts.header_digest = true;
  Pdu in;
  R2T r;
  r.cid = 1;
  r.offset = 999;
  in.header = r;
  auto encoded = encode(in, opts);
  encoded[9] ^= 0xFF;  // corrupt a typed-header byte
  auto decoded = decode(encoded, opts);
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(CodecTest, DigestFlagMismatchRejected) {
  Pdu in;
  in.header = R2T{};
  const auto plain = encode(in, {});
  CodecOptions with_digest;
  with_digest.header_digest = true;
  EXPECT_FALSE(decode(plain, with_digest).is_ok());
}

TEST(CodecTest, FrameLengthMatchesEncodedSize) {
  Pdu in;
  CapsuleCmd c;
  c.cmd.opcode = NvmeOpcode::kRead;
  in.header = c;
  in.payload.resize(1000, 0xAB);
  const auto encoded = encode(in);
  auto len = frame_length(encoded);
  ASSERT_TRUE(len.is_ok());
  EXPECT_EQ(len.value(), encoded.size());
}

TEST(CodecTest, FrameLengthShortPrefixRejected) {
  std::vector<u8> short_buf(4, 0);
  EXPECT_FALSE(frame_length(short_buf).is_ok());
}

TEST(CodecTest, TruncatedPduRejected) {
  Pdu in;
  in.header = R2T{};
  auto encoded = encode(in);
  encoded.pop_back();
  EXPECT_FALSE(decode(encoded, {}).is_ok());
}

TEST(CodecTest, OversizeLengthFieldRejected) {
  Pdu in;
  in.header = R2T{};
  auto encoded = encode(in);
  // Claim a gigantic plen.
  encoded[4] = 0xFF;
  encoded[5] = 0xFF;
  encoded[6] = 0xFF;
  encoded[7] = 0x7F;
  EXPECT_FALSE(decode(encoded, {}).is_ok());
  EXPECT_FALSE(frame_length(encoded).is_ok());
}

TEST(CodecTest, WireSizeMatchesEncodedBytes) {
  Pdu in;
  C2HData c;
  c.length = 4096;
  in.header = c;
  in.payload.resize(4096, 1);
  EXPECT_EQ(wire_size(in), encode(in).size());
}

TEST(CodecTest, EncoderMatchesWireContract) {
  // Pins the encoder to the compile-time contract in pdu/wire_contract.h:
  // every fixed-size header must serialize to exactly the advertised byte
  // count (plus the common preamble and u32 prefixes for strings).
  const auto fixed = [](PduHeader h) {
    Pdu p;
    p.header = std::move(h);
    return encode(p).size() - kWireCommonHeaderBytes;
  };
  EXPECT_EQ(fixed(ICReq{}), kWireICReqBytes);
  // ICResp carries two length-prefixed strings: shm_name and reject_reason.
  EXPECT_EQ(fixed(ICResp{}), kWireICRespBytes + 2 * kWireStrPrefixBytes);
  EXPECT_EQ(fixed(CapsuleCmd{}), kWireCapsuleCmdBytes);
  EXPECT_EQ(fixed(CapsuleResp{}), kWireCapsuleRespBytes);
  EXPECT_EQ(fixed(R2T{}), kWireR2TBytes);
  EXPECT_EQ(fixed(H2CData{}), kWireH2CDataBytes);
  EXPECT_EQ(fixed(C2HData{}), kWireC2HDataBytes);
  EXPECT_EQ(fixed(TermReq{}), kWireTermReqFixedBytes + kWireStrPrefixBytes);
  EXPECT_EQ(fixed(KeepAlive{}), kWireKeepAliveBytes);
  EXPECT_EQ(fixed(AnaLog{}), kWireAnaLogFixedBytes + kWireStrPrefixBytes);
}

TEST(CodecTest, TraceContextFieldsRoundtrip) {
  ICReq req;
  req.trace_ctx = true;
  req.t_sent_ns = 111'222'333;
  const auto* rq = roundtrip(req).as<ICReq>();
  ASSERT_NE(rq, nullptr);
  EXPECT_TRUE(rq->trace_ctx);
  EXPECT_EQ(rq->t_sent_ns, 111'222'333u);

  ICResp resp;
  resp.trace_ctx = true;
  resp.echo_t_ns = 111'222'333;
  resp.t_now_ns = 999'888'777;
  const auto* rp = roundtrip(resp).as<ICResp>();
  ASSERT_NE(rp, nullptr);
  EXPECT_TRUE(rp->trace_ctx);
  EXPECT_EQ(rp->echo_t_ns, 111'222'333u);
  EXPECT_EQ(rp->t_now_ns, 999'888'777u);

  CapsuleCmd c;
  c.cmd.cid = 7;
  c.trace_id = 0xA1B2C3D4E5F60718ULL;
  c.parent_span = 0x1122334455667788ULL;
  const auto* ch = roundtrip(c).as<CapsuleCmd>();
  ASSERT_NE(ch, nullptr);
  EXPECT_EQ(ch->trace_id, 0xA1B2C3D4E5F60718ULL);
  EXPECT_EQ(ch->parent_span, 0x1122334455667788ULL);

  KeepAlive ka;
  ka.seq = 4;
  ka.t_sent_ns = 1'000;
  ka.echo_t_ns = 2'000;
  const auto* kh = roundtrip(ka).as<KeepAlive>();
  ASSERT_NE(kh, nullptr);
  EXPECT_EQ(kh->t_sent_ns, 1'000u);
  EXPECT_EQ(kh->echo_t_ns, 2'000u);
}

// Re-frame an encoded PDU (no header digest) with the last `strip` bytes of
// the typed header removed — byte-identical to what the previous protocol
// revision's encoder emits for the same logical PDU.
std::vector<u8> strip_trailing_header_bytes(std::vector<u8> encoded,
                                            u64 strip) {
  const u16 hlen = static_cast<u16>(encoded[2] | (encoded[3] << 8));
  std::vector<u8> payload(encoded.begin() + hlen, encoded.end());
  encoded.resize(hlen - strip);
  const u16 new_hlen = static_cast<u16>(encoded.size());
  encoded[2] = static_cast<u8>(new_hlen);
  encoded[3] = static_cast<u8>(new_hlen >> 8);
  const u32 plen = static_cast<u32>(encoded.size() + payload.size());
  for (int i = 0; i < 4; ++i) {
    encoded[4 + static_cast<u64>(i)] = static_cast<u8>(plen >> (8 * i));
  }
  encoded.insert(encoded.end(), payload.begin(), payload.end());
  return encoded;
}

TEST(CodecTest, OldPeerICReqDecodesWithTraceContextOff) {
  // A rev-1 peer's ICReq (no trace-context tail) must decode cleanly with
  // the feature defaulted off — the negotiation story for mixed versions.
  ICReq req;
  req.pfv = 1;
  req.want_shm = true;
  req.kato_ns = 5'000'000'000ull;
  Pdu in;
  in.header = req;
  const auto old_frame = strip_trailing_header_bytes(
      encode(in), kWireICReqBytes - kWireICReqBytesV1);
  auto decoded = decode(old_frame, {});
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  const auto* h = decoded.value().as<ICReq>();
  ASSERT_NE(h, nullptr);
  EXPECT_TRUE(h->want_shm);
  EXPECT_EQ(h->kato_ns, 5'000'000'000ull);
  EXPECT_FALSE(h->trace_ctx);
  EXPECT_EQ(h->t_sent_ns, 0u);
}

TEST(CodecTest, OldPeerFramesDecodeWithDefaults) {
  {
    ICResp resp;
    resp.shm_granted = true;
    resp.shm_name = "r";
    Pdu in;
    in.header = resp;
    // A rev-1 peer's frame lacks the rev-2 fixed tail AND the rev-4 tail
    // (whose empty reject_reason still costs a u32 length prefix).
    auto decoded = decode(
        strip_trailing_header_bytes(encode(in),
                                    kWireICRespBytes - kWireICRespBytesV1 +
                                        kWireStrPrefixBytes),
        {});
    ASSERT_TRUE(decoded.is_ok());
    const auto* h = decoded.value().as<ICResp>();
    ASSERT_NE(h, nullptr);
    EXPECT_TRUE(h->shm_granted);
    EXPECT_FALSE(h->trace_ctx);
    EXPECT_TRUE(h->admitted);  // rejection is never implied by a short frame
  }
  {
    // A rev-2/3 peer sends the clock-echo tail but no admission verdict;
    // the verdict must default to admitted with the trace fields intact.
    ICResp resp;
    resp.trace_ctx = true;
    resp.t_now_ns = 42;
    Pdu in;
    in.header = resp;
    auto decoded = decode(
        strip_trailing_header_bytes(encode(in),
                                    kWireICRespBytes - kWireICRespBytesV2 +
                                        kWireStrPrefixBytes),
        {});
    ASSERT_TRUE(decoded.is_ok());
    const auto* h = decoded.value().as<ICResp>();
    ASSERT_NE(h, nullptr);
    EXPECT_TRUE(h->trace_ctx);
    EXPECT_EQ(h->t_now_ns, 42u);
    EXPECT_TRUE(h->admitted);
    EXPECT_EQ(h->retry_after_ms, 0u);
  }
  {
    CapsuleCmd c;
    c.cmd.cid = 9;
    c.gen = 3;
    Pdu in;
    in.header = c;
    auto decoded = decode(
        strip_trailing_header_bytes(
            encode(in), kWireCapsuleCmdBytes - kWireCapsuleCmdBytesV1),
        {});
    ASSERT_TRUE(decoded.is_ok());
    const auto* h = decoded.value().as<CapsuleCmd>();
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->cmd.cid, 9);
    EXPECT_EQ(h->gen, 3);
    EXPECT_EQ(h->trace_id, 0u);
    EXPECT_EQ(h->parent_span, 0u);
  }
  {
    KeepAlive ka;
    ka.seq = 11;
    Pdu in;
    in.header = ka;
    auto decoded = decode(
        strip_trailing_header_bytes(
            encode(in), kWireKeepAliveBytes - kWireKeepAliveBytesV1),
        {});
    ASSERT_TRUE(decoded.is_ok());
    const auto* h = decoded.value().as<KeepAlive>();
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->seq, 11u);
    EXPECT_EQ(h->t_sent_ns, 0u);
  }
}

TEST(CodecTest, FutureTrailingHeaderBytesTolerated) {
  // The converse interop property: the decoder must ignore typed-header
  // bytes beyond what it understands, so a rev-3 peer's frames still parse.
  CapsuleCmd c;
  c.cmd.cid = 4;
  c.trace_id = 77;
  Pdu in;
  in.header = c;
  auto frame = encode(in);
  const u16 hlen = static_cast<u16>(frame[2] | (frame[3] << 8));
  frame.insert(frame.begin() + hlen, {0xAA, 0xBB, 0xCC});  // future fields
  const u16 new_hlen = static_cast<u16>(hlen + 3);
  frame[2] = static_cast<u8>(new_hlen);
  frame[3] = static_cast<u8>(new_hlen >> 8);
  const u32 plen = static_cast<u32>(frame.size());
  for (int i = 0; i < 4; ++i) {
    frame[4 + static_cast<u64>(i)] = static_cast<u8>(plen >> (8 * i));
  }
  auto decoded = decode(frame, {});
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  const auto* h = decoded.value().as<CapsuleCmd>();
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->cmd.cid, 4);
  EXPECT_EQ(h->trace_id, 77u);
}

TEST(CodecTest, AnomalyReqRoundtrip) {
  AnomalyReq req;
  req.trace_id = 0xFEEDFACE01234567ULL;
  req.t_from_ns = -5'000'000;  // windows can start before the peer's epoch
  req.t_to_ns = 9'876'543'210;
  req.offset_ns = -123'456'789;
  const Pdu out = roundtrip(req);
  const auto* h = out.as<AnomalyReq>();
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->trace_id, 0xFEEDFACE01234567ULL);
  EXPECT_EQ(h->t_from_ns, -5'000'000);
  EXPECT_EQ(h->t_to_ns, 9'876'543'210);
  EXPECT_EQ(h->offset_ns, -123'456'789);
  EXPECT_EQ(out.type(), PduType::kAnomalyReq);
}

TEST(CodecTest, AnomalyRespRoundtripWithEventPayload) {
  AnomalyResp resp;
  resp.trace_id = 42;
  resp.pid = 31337;
  resp.event_count = 3;
  const std::string events = R"([{"ts_ns":1},{"ts_ns":2},{"ts_ns":3}])";
  std::vector<u8> payload(events.begin(), events.end());
  const Pdu out = roundtrip(resp, payload);
  const auto* h = out.as<AnomalyResp>();
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->trace_id, 42u);
  EXPECT_EQ(h->pid, 31337u);
  EXPECT_EQ(h->event_count, 3u);
  EXPECT_EQ(std::string(out.payload.begin(), out.payload.end()), events);
  EXPECT_EQ(out.type(), PduType::kAnomalyResp);
}

TEST(CodecTest, ShmReferencePduIsSmall) {
  // The whole point of the oAF notification: a 128 KiB payload reference
  // costs well under 100 wire bytes.
  Pdu in;
  C2HData c;
  c.length = 128 * 1024;
  c.placement = DataPlacement::kShmSlot;
  c.shm_slot = 5;
  in.header = c;
  EXPECT_LT(wire_size(in), 100u);
}

}  // namespace
}  // namespace oaf::pdu

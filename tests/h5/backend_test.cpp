#include <gtest/gtest.h>

#include <cstring>

#include "af/locality.h"
#include "bench/calibration.h"
#include "h5/coalescing_backend.h"
#include "h5/nfs_backend.h"
#include "h5/nvmf_backend.h"
#include "net/pipe_channel.h"
#include "nvmf/target.h"
#include "sim/scheduler.h"
#include "ssd/real_device.h"

namespace oaf::h5 {
namespace {

std::vector<u8> pattern(u64 n, u8 seed) {
  std::vector<u8> v(n);
  for (u64 i = 0; i < n; ++i) v[i] = static_cast<u8>(seed + i * 13);
  return v;
}

// ---------------------------------------------------------------------------
// NvmfBackend over a real functional-plane NVMe-oF connection
// ---------------------------------------------------------------------------

struct NvmfFixture {
  explicit NvmfFixture(af::AfConfig cfg = af::AfConfig::oaf())
      : broker(1), device(sched, 512, 1 << 18), subsystem("nqn") {
    (void)subsystem.add_namespace(1, &device);
    auto pair = net::make_pipe_channel_pair(sched, sched);
    client_ch = std::move(pair.first);
    target_ch = std::move(pair.second);
    target = std::make_unique<nvmf::NvmfTargetConnection>(
        sched, *target_ch, copier, broker, subsystem,
        nvmf::TargetOptions{cfg, "h5be"});
    initiator = std::make_unique<nvmf::NvmfInitiator>(
        sched, *client_ch, copier, broker,
        nvmf::InitiatorOptions{cfg, 32, "h5be"});
    initiator->connect([](Status) {});
    sched.run();
    backend = std::make_unique<NvmfBackend>(*initiator, 1, 128 * 1024);
    backend->set_capacity(device.num_blocks() * 512);
  }

  sim::Scheduler sched;
  net::InlineCopier copier;
  af::ShmBroker broker;
  ssd::RealDevice device;
  ssd::Subsystem subsystem;
  std::unique_ptr<net::MsgChannel> client_ch;
  std::unique_ptr<net::MsgChannel> target_ch;
  std::unique_ptr<nvmf::NvmfTargetConnection> target;
  std::unique_ptr<nvmf::NvmfInitiator> initiator;
  std::unique_ptr<NvmfBackend> backend;
};

TEST(NvmfBackendTest, AlignedRoundtrip) {
  NvmfFixture f;
  const auto data = pattern(512 * 1024, 1);  // spans multiple max_io commands
  bool wrote = false;
  f.backend->write(4096, data, [&](Status st) { wrote = st.is_ok(); });
  f.sched.run();
  ASSERT_TRUE(wrote);
  EXPECT_GE(f.backend->commands_issued(), 4u);

  std::vector<u8> out(data.size());
  bool read = false;
  f.backend->read(4096, out, [&](Status st) { read = st.is_ok(); });
  f.sched.run();
  ASSERT_TRUE(read);
  EXPECT_EQ(out, data);
}

TEST(NvmfBackendTest, UnalignedEdgesReadModifyWrite) {
  NvmfFixture f;
  // Seed surrounding bytes, then write an unaligned range and check both
  // the new data and the preserved neighbours.
  const auto base = pattern(4096, 7);
  f.backend->write(0, base, [](Status st) { ASSERT_TRUE(st.is_ok()); });
  f.sched.run();

  const auto patch = pattern(1000, 99);
  bool wrote = false;
  f.backend->write(123, patch, [&](Status st) { wrote = st.is_ok(); });
  f.sched.run();
  ASSERT_TRUE(wrote);

  std::vector<u8> out(4096);
  f.backend->read(0, out, [](Status st) { ASSERT_TRUE(st.is_ok()); });
  f.sched.run();
  EXPECT_EQ(std::memcmp(out.data(), base.data(), 123), 0);
  EXPECT_EQ(std::memcmp(out.data() + 123, patch.data(), 1000), 0);
  EXPECT_EQ(std::memcmp(out.data() + 1123, base.data() + 1123, 4096 - 1123), 0);
}

TEST(NvmfBackendTest, ZeroCopyUsedWhenAvailable) {
  NvmfFixture f(af::AfConfig::oaf());
  ASSERT_TRUE(f.initiator->supports_zero_copy());
  const auto data = pattern(64 * 1024, 3);
  f.backend->write(0, data, [](Status st) { ASSERT_TRUE(st.is_ok()); });
  f.sched.run();
  EXPECT_GT(f.backend->zero_copy_writes(), 0u);
}

TEST(NvmfBackendTest, TcpFallbackCorrect) {
  NvmfFixture f(af::AfConfig::stock_tcp());
  ASSERT_FALSE(f.initiator->supports_zero_copy());
  const auto data = pattern(300 * 1024, 4);
  std::vector<u8> out(data.size());
  int ok = 0;
  f.backend->write(8192, data, [&](Status st) { ok += st.is_ok(); });
  f.sched.run();
  f.backend->read(8192, out, [&](Status st) { ok += st.is_ok(); });
  f.sched.run();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(out, data);
  EXPECT_EQ(f.backend->zero_copy_writes(), 0u);
}

TEST(NvmfBackendTest, CapacityEnforced) {
  NvmfFixture f;
  std::vector<u8> data(4096);
  Status st1;
  f.backend->write(f.backend->capacity_bytes() - 100, data,
                   [&](Status st) { st1 = st; });
  f.sched.run();
  EXPECT_FALSE(st1.is_ok());
}

// ---------------------------------------------------------------------------
// CoalescingBackend
// ---------------------------------------------------------------------------

TEST(CoalescingBackendTest, MergesSequentialWrites) {
  MemoryBackend inner(1 << 20);
  CoalescingBackend co(inner, 64 * 1024);
  const auto data = pattern(4096, 5);
  int acks = 0;
  for (int i = 0; i < 8; ++i) {
    co.write(static_cast<u64>(i) * 4096, data, [&](Status st) {
      EXPECT_TRUE(st.is_ok());
      acks++;
    });
  }
  EXPECT_EQ(acks, 8);
  EXPECT_EQ(inner.writes(), 0u);  // all absorbed, nothing submitted yet
  bool flushed = false;
  co.flush([&](Status st) { flushed = st.is_ok(); });
  ASSERT_TRUE(flushed);
  EXPECT_EQ(inner.writes(), 1u);  // one coalesced run
  EXPECT_EQ(co.coalesced_flushes(), 1u);
}

TEST(CoalescingBackendTest, GapOpensSecondRun) {
  MemoryBackend inner(1 << 20);
  CoalescingBackend co(inner, 64 * 1024);
  const auto data = pattern(4096, 6);
  co.write(0, data, [](Status) {});
  co.write(4096, data, [](Status) {});
  co.write(100 * 4096, data, [](Status) {});  // gap: second stream
  EXPECT_EQ(inner.writes(), 0u);  // both runs still open
  EXPECT_EQ(co.open_runs(), 2u);
  co.flush([](Status st) { EXPECT_TRUE(st.is_ok()); });
  EXPECT_EQ(inner.writes(), 2u);  // one coalesced I/O per run
  EXPECT_EQ(co.open_runs(), 0u);
}

TEST(CoalescingBackendTest, RunCapEvictsLru) {
  MemoryBackend inner(1 << 20);
  CoalescingBackend co(inner, 64 * 1024, 0, /*max_runs=*/2);
  const auto data = pattern(4096, 6);
  co.write(0, data, [](Status) {});           // run A
  co.write(100 * 4096, data, [](Status) {});  // run B
  co.write(200 * 4096, data, [](Status) {});  // run C: evicts A
  EXPECT_EQ(inner.writes(), 1u);
  EXPECT_EQ(co.open_runs(), 2u);
}

TEST(CoalescingBackendTest, FullRunDrainsImmediately) {
  MemoryBackend inner(1 << 20);
  CoalescingBackend co(inner, 8 * 1024);
  const auto data = pattern(4096, 6);
  co.write(0, data, [](Status) {});
  EXPECT_EQ(inner.writes(), 0u);
  co.write(4096, data, [](Status) {});  // run reaches 8 KiB: drains
  EXPECT_EQ(inner.writes(), 1u);
}

TEST(CoalescingBackendTest, InterleavedStreamsCoalescePerStream) {
  // The Fig 17 config-2 pattern: two dataset extents written in
  // alternating small chunks; each stream coalesces independently.
  MemoryBackend inner(1 << 20);
  CoalescingBackend co(inner, 64 * 1024);
  const auto data = pattern(4096, 8);
  const u64 extent_b = 512 * 1024;
  for (int i = 0; i < 8; ++i) {
    co.write(static_cast<u64>(i) * 4096, data, [](Status) {});
    co.write(extent_b + static_cast<u64>(i) * 4096, data, [](Status) {});
  }
  EXPECT_EQ(inner.writes(), 0u);  // all 16 absorbed into 2 runs
  EXPECT_EQ(co.open_runs(), 2u);
  co.flush([](Status st) { EXPECT_TRUE(st.is_ok()); });
  EXPECT_EQ(inner.writes(), 2u);
  // Verify both extents hold the right bytes.
  std::vector<u8> out(8 * 4096);
  inner.read(extent_b, out, [](Status st) { EXPECT_TRUE(st.is_ok()); });
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(std::memcmp(out.data() + i * 4096, data.data(), 4096), 0);
  }
}

TEST(CoalescingBackendTest, ReadYourWrites) {
  MemoryBackend inner(1 << 20);
  CoalescingBackend co(inner, 64 * 1024);
  const auto data = pattern(8192, 9);
  co.write(4096, data, [](Status) {});
  std::vector<u8> out(1000);
  bool read = false;
  co.read(5000, out, [&](Status st) { read = st.is_ok(); });
  ASSERT_TRUE(read);
  EXPECT_EQ(std::memcmp(out.data(), data.data() + (5000 - 4096), 1000), 0);
  EXPECT_EQ(inner.reads(), 0u);  // served from the pending buffer
}

TEST(CoalescingBackendTest, PartialOverlapDrainsFirst) {
  MemoryBackend inner(1 << 20);
  CoalescingBackend co(inner, 64 * 1024);
  const auto data = pattern(4096, 9);
  co.write(4096, data, [](Status) {});
  std::vector<u8> out(8192);  // overlaps dirty run + clean area
  bool read = false;
  co.read(0, out, [&](Status st) { read = st.is_ok(); });
  ASSERT_TRUE(read);
  EXPECT_EQ(inner.writes(), 1u);  // drained for consistency
  EXPECT_EQ(std::memcmp(out.data() + 4096, data.data(), 4096), 0);
}

TEST(CoalescingBackendTest, ReadaheadServesSequentialReads) {
  MemoryBackend inner(1 << 20);
  {
    const auto data = pattern(256 * 1024, 11);
    inner.write(0, data, [](Status) {});
  }
  CoalescingBackend co(inner, 64 * 1024, /*readahead=*/128 * 1024);
  const u64 before = inner.reads();
  std::vector<u8> out(16 * 1024);
  for (int i = 0; i < 8; ++i) {
    bool ok = false;
    co.read(static_cast<u64>(i) * out.size(), out,
            [&](Status st) { ok = st.is_ok(); });
    ASSERT_TRUE(ok);
    EXPECT_EQ(std::memcmp(out.data(),
                          pattern(256 * 1024, 11).data() +
                              static_cast<u64>(i) * out.size(),
                          out.size()),
              0);
  }
  // 128 KiB window covers 8 x 16 KiB reads in one inner read.
  EXPECT_EQ(inner.reads() - before, 1u);
}

TEST(CoalescingBackendTest, WriteInvalidatesReadahead) {
  MemoryBackend inner(1 << 20);
  inner.write(0, pattern(128 * 1024, 1), [](Status) {});
  CoalescingBackend co(inner, 64 * 1024, 64 * 1024);
  std::vector<u8> out(4096);
  co.read(0, out, [](Status) {});  // populates readahead
  const auto patch = pattern(4096, 2);
  co.write(0, patch, [](Status) {});
  co.flush([](Status) {});
  bool ok = false;
  co.read(0, out, [&](Status st) { ok = st.is_ok(); });
  ASSERT_TRUE(ok);
  EXPECT_EQ(out, patch);
}

// ---------------------------------------------------------------------------
// NfsBackend
// ---------------------------------------------------------------------------

TEST(NfsBackendTest, RoundtripThroughNfsClient) {
  sim::Scheduler sched;
  nfs::NfsClient client(sched, oaf::bench::nfs_25g());
  NfsBackend backend(client, "file.h5", 16 << 20);

  const auto data = pattern(1 << 20, 13);
  bool wrote = false;
  backend.write(0, data, [&](Status st) { wrote = st.is_ok(); });
  sched.run();
  ASSERT_TRUE(wrote);

  bool flushed = false;
  backend.flush([&](Status st) { flushed = st.is_ok(); });
  sched.run();
  ASSERT_TRUE(flushed);
  EXPECT_EQ(client.dirty_bytes(), 0u);

  std::vector<u8> out(data.size());
  bool read = false;
  backend.read(0, out, [&](Status st) { read = st.is_ok(); });
  sched.run();
  ASSERT_TRUE(read);
  EXPECT_EQ(out, data);
}

TEST(NfsBackendTest, CapacityBounds) {
  sim::Scheduler sched;
  nfs::NfsClient client(sched, oaf::bench::nfs_25g());
  NfsBackend backend(client, "f", 4096);
  std::vector<u8> data(8192);
  Status st1;
  backend.write(0, data, [&](Status st) { st1 = st; });
  sched.run();
  EXPECT_FALSE(st1.is_ok());
}

}  // namespace
}  // namespace oaf::h5

// Full-stack storage-runtime integration on the functional plane: h5bench
// kernels -> mini-HDF5 -> (coalescer) -> NVMe-oAF backend -> initiator ->
// shm/TCP fabric -> target -> device, with byte-level verification —
// the paper's §5.7 co-design as a test.
#include <gtest/gtest.h>

#include "af/locality.h"
#include "h5/coalescing_backend.h"
#include "h5/file.h"
#include "h5/nvmf_backend.h"
#include "h5bench/kernels.h"
#include "net/pipe_channel.h"
#include "nvmf/target.h"
#include "sim/scheduler.h"
#include "ssd/real_device.h"

namespace oaf::h5 {
namespace {

struct Stack {
  explicit Stack(af::AfConfig cfg, bool coalesce)
      : broker(1), device(sched, 512, (128ull << 20) / 512), subsystem("nqn") {
    (void)subsystem.add_namespace(1, &device);
    auto pair = net::make_pipe_channel_pair(sched, sched);
    client_ch = std::move(pair.first);
    target_ch = std::move(pair.second);
    target = std::make_unique<nvmf::NvmfTargetConnection>(
        sched, *target_ch, copier, broker, subsystem,
        nvmf::TargetOptions{cfg, "h5full"});
    initiator = std::make_unique<nvmf::NvmfInitiator>(
        sched, *client_ch, copier, broker,
        nvmf::InitiatorOptions{cfg, 32, "h5full"});
    initiator->connect([](Status) {});
    sched.run();

    base = std::make_unique<NvmfBackend>(*initiator, 1, 256 * kKiB);
    base->set_capacity(device.num_blocks() * 512ull);
    if (coalesce) {
      co = std::make_unique<CoalescingBackend>(*base, 1 * kMiB, 1 * kMiB);
    }
    file = std::make_unique<H5File>(co ? static_cast<StorageBackend&>(*co)
                                       : static_cast<StorageBackend&>(*base),
                                    vol);
    bool created = false;
    file->create([&](Status st) { created = st.is_ok(); });
    sched.run();
    EXPECT_TRUE(created);
  }

  sim::Scheduler sched;
  net::InlineCopier copier;
  af::ShmBroker broker;
  ssd::RealDevice device;
  ssd::Subsystem subsystem;
  std::unique_ptr<net::MsgChannel> client_ch;
  std::unique_ptr<net::MsgChannel> target_ch;
  std::unique_ptr<nvmf::NvmfTargetConnection> target;
  std::unique_ptr<nvmf::NvmfInitiator> initiator;
  std::unique_ptr<NvmfBackend> base;
  std::unique_ptr<CoalescingBackend> co;
  NativeVol vol;
  std::unique_ptr<H5File> file;

  bool run_kernels(const h5bench::BenchConfig& cfg) {
    bool wrote = false;
    h5bench::run_write_kernel(sched, *file, cfg,
                              [&](Result<h5bench::KernelStats> r) {
                                wrote = r.is_ok();
                                if (!r.is_ok()) {
                                  ADD_FAILURE() << r.status().to_string();
                                }
                              });
    sched.run();
    if (!wrote) return false;
    bool verified = false;
    h5bench::run_read_kernel(sched, *file, cfg, /*verify=*/true,
                             [&](Result<h5bench::KernelStats> r) {
                               verified = r.is_ok();
                               if (!r.is_ok()) {
                                 ADD_FAILURE() << r.status().to_string();
                               }
                             });
    sched.run();
    return verified;
  }
};

h5bench::BenchConfig small_config(u32 datasets, u64 chunk_elems) {
  h5bench::BenchConfig cfg;
  cfg.num_datasets = datasets;
  cfg.particles_per_dataset = 256 * 1024;  // 1 MiB per dataset
  cfg.chunk_elems = chunk_elems;
  return cfg;
}

class H5FullStack
    : public ::testing::TestWithParam<std::tuple<bool, bool, u32>> {};

TEST_P(H5FullStack, KernelsVerifyEndToEnd) {
  const auto [use_shm, coalesce, datasets] = GetParam();
  af::AfConfig cfg = use_shm ? af::AfConfig::oaf() : af::AfConfig::stock_tcp();
  Stack stack(cfg, coalesce);
  EXPECT_EQ(stack.initiator->shm_active(), use_shm);
  EXPECT_TRUE(stack.run_kernels(small_config(datasets, 4096)));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, H5FullStack,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(1u, 4u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "shm" : "tcp") +
             (std::get<1>(info.param) ? "_coalesced" : "_direct") + "_" +
             std::to_string(std::get<2>(info.param)) + "ds";
    });

TEST(H5FullStackTest, PersistReopenAcrossStacks) {
  // Write through one stack instance, then reopen the file from the same
  // device via a fresh H5File and verify datasets survive the fabric.
  af::AfConfig cfg = af::AfConfig::oaf();
  Stack stack(cfg, /*coalesce=*/true);
  const auto bench = small_config(2, 8192);
  ASSERT_TRUE(stack.run_kernels(bench));

  bool closed = false;
  stack.file->close([&](Status st) { closed = st.is_ok(); });
  stack.sched.run();
  ASSERT_TRUE(closed);

  NativeVol vol2;
  H5File reopened(*stack.base, vol2);  // bypass the coalescer: data is durable
  bool opened = false;
  reopened.open([&](Status st) { opened = st.is_ok(); });
  stack.sched.run();
  ASSERT_TRUE(opened);
  EXPECT_EQ(reopened.dataset_count(), 2u);

  bool verified = false;
  h5bench::run_read_kernel(stack.sched, reopened, bench, /*verify=*/true,
                           [&](Result<h5bench::KernelStats> r) {
                             verified = r.is_ok();
                           });
  stack.sched.run();
  EXPECT_TRUE(verified);
}

TEST(H5FullStackTest, EncryptedFabricStillVerifies) {
  af::AfConfig cfg = af::AfConfig::oaf();
  cfg.encrypt_shm = true;
  cfg.shm_key = 0xC0FFEE;
  Stack stack(cfg, /*coalesce=*/false);
  ASSERT_TRUE(stack.initiator->shm_active());
  EXPECT_TRUE(stack.run_kernels(small_config(2, 4096)));
}

}  // namespace
}  // namespace oaf::h5

#include "h5/file.h"

#include <gtest/gtest.h>

#include <cstring>

namespace oaf::h5 {
namespace {

class H5FileTest : public ::testing::Test {
 protected:
  H5FileTest() : backend_(64 << 20), file_(backend_, vol_) {}

  void create() {
    bool ok = false;
    file_.create([&](Status st) { ok = st.is_ok(); });
    ASSERT_TRUE(ok);
  }

  MemoryBackend backend_;
  NativeVol vol_;
  H5File file_;
};

TEST_F(H5FileTest, CreateFormatsSuperblock) {
  create();
  EXPECT_TRUE(file_.is_open());
  EXPECT_EQ(file_.dataset_count(), 0u);
  EXPECT_EQ(file_.eof(), H5File::kDataStart);
}

TEST_F(H5FileTest, CreateDatasetAllocatesAligned) {
  create();
  auto id = file_.create_dataset("particles", 4, 1000);
  ASSERT_TRUE(id.is_ok());
  const DatasetInfo& ds = file_.dataset(id.value());
  EXPECT_EQ(ds.name, "particles");
  EXPECT_EQ(ds.elem_size, 4u);
  EXPECT_EQ(ds.num_elems, 1000u);
  EXPECT_EQ(ds.data_offset % H5File::kDataAlign, 0u);
  EXPECT_GE(ds.data_offset, H5File::kDataStart);
}

TEST_F(H5FileTest, WriteReadElements) {
  create();
  auto id = file_.create_dataset("d", 8, 100).take();
  std::vector<u8> data(800);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i);
  bool wrote = false;
  file_.write(id, 0, data, [&](Status st) { wrote = st.is_ok(); });
  ASSERT_TRUE(wrote);

  std::vector<u8> out(400);
  bool read = false;
  file_.read(id, 50, out, [&](Status st) { read = st.is_ok(); });  // elems 50..99
  ASSERT_TRUE(read);
  EXPECT_EQ(std::memcmp(out.data(), data.data() + 400, 400), 0);
}

TEST_F(H5FileTest, PersistAndReopen) {
  create();
  auto id1 = file_.create_dataset("alpha", 4, 256).take();
  auto id2 = file_.create_dataset("beta", 8, 128).take();
  std::vector<u8> data(1024, 0x5A);
  file_.write(id1, 0, data, [](Status st) { ASSERT_TRUE(st.is_ok()); });
  bool closed = false;
  file_.close([&](Status st) { closed = st.is_ok(); });
  ASSERT_TRUE(closed);

  H5File reopened(backend_, vol_);
  bool opened = false;
  reopened.open([&](Status st) { opened = st.is_ok(); });
  ASSERT_TRUE(opened);
  EXPECT_EQ(reopened.dataset_count(), 2u);
  auto found = reopened.find_dataset("beta");
  ASSERT_TRUE(found.is_ok());
  EXPECT_EQ(reopened.dataset(found.value()).num_elems, 128u);
  EXPECT_EQ(reopened.dataset(found.value()).elem_size, 8u);

  std::vector<u8> out(1024);
  bool read = false;
  reopened.read(id2 - 1, 0, out, [&](Status st) { read = st.is_ok(); });
  ASSERT_TRUE(read);
  EXPECT_EQ(out, data);
}

TEST_F(H5FileTest, OpenGarbageRejected) {
  // Backend never formatted.
  H5File fresh(backend_, vol_);
  Status result;
  fresh.open([&](Status st) { result = st; });
  EXPECT_FALSE(result.is_ok());
  EXPECT_FALSE(fresh.is_open());
}

TEST_F(H5FileTest, ValidationErrors) {
  create();
  EXPECT_FALSE(file_.create_dataset("", 4, 10).is_ok());
  EXPECT_FALSE(file_.create_dataset("x", 0, 10).is_ok());
  EXPECT_FALSE(file_.create_dataset("x", 4, 0).is_ok());
  ASSERT_TRUE(file_.create_dataset("x", 4, 10).is_ok());
  EXPECT_FALSE(file_.create_dataset("x", 4, 10).is_ok());  // duplicate

  auto id = file_.find_dataset("x").take();
  std::vector<u8> odd(3);  // not elem-size multiple
  Status st1;
  file_.write(id, 0, odd, [&](Status st) { st1 = st; });
  EXPECT_FALSE(st1.is_ok());

  std::vector<u8> too_much(11 * 4);
  Status st2;
  file_.write(id, 0, too_much, [&](Status st) { st2 = st; });
  EXPECT_FALSE(st2.is_ok());

  Status st3;
  file_.read(99, 0, odd, [&](Status st) { st3 = st; });
  EXPECT_FALSE(st3.is_ok());
}

TEST_F(H5FileTest, CapacityEnforced) {
  create();
  // 64 MiB backend: a 100 MiB dataset must be refused.
  auto too_big = file_.create_dataset("big", 4, 25ull << 20);
  EXPECT_FALSE(too_big.is_ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(H5FileTest, ManyDatasetsDisjointExtents) {
  create();
  std::vector<H5File::DatasetId> ids;
  for (int i = 0; i < 32; ++i) {
    auto id = file_.create_dataset("ds" + std::to_string(i), 4, 4096);
    ASSERT_TRUE(id.is_ok());
    ids.push_back(id.value());
  }
  for (size_t i = 1; i < ids.size(); ++i) {
    const auto& prev = file_.dataset(ids[i - 1]);
    const auto& cur = file_.dataset(ids[i]);
    EXPECT_GE(cur.data_offset, prev.data_offset + prev.data_bytes());
  }
}

TEST_F(H5FileTest, VolInterceptsTransfers) {
  create();
  CountingVol counting(vol_);
  H5File file2(backend_, counting);
  bool ok = false;
  file2.create([&](Status st) { ok = st.is_ok(); });
  ASSERT_TRUE(ok);
  auto id = file2.create_dataset("d", 4, 100).take();
  std::vector<u8> data(400);
  file2.write(id, 0, data, [](Status) {});
  file2.read(id, 0, data, [](Status) {});
  EXPECT_EQ(counting.writes(), 1u);
  EXPECT_EQ(counting.reads(), 1u);
  EXPECT_EQ(counting.bytes_written(), 400u);
  EXPECT_EQ(counting.bytes_read(), 400u);
}

}  // namespace
}  // namespace oaf::h5

#include "af/busy_poll.h"

#include <gtest/gtest.h>

#include "net/sim_channel.h"
#include "sim/scheduler.h"

namespace oaf::af {
namespace {

TEST(BusyPollGovernorTest, InterruptPolicyBudgetZero) {
  BusyPollGovernor gov(BusyPollPolicy::kInterrupt, 0);
  gov.attach(nullptr);
  EXPECT_EQ(gov.current_budget(), 0);
  for (int i = 0; i < 200; ++i) gov.record_op(false);
  EXPECT_EQ(gov.current_budget(), 0);  // never re-tunes
}

TEST(BusyPollGovernorTest, StaticPolicyKeepsBudget) {
  BusyPollGovernor gov(BusyPollPolicy::kStatic, 25'000);
  gov.attach(nullptr);
  EXPECT_EQ(gov.current_budget(), 25'000);
  for (int i = 0; i < 200; ++i) gov.record_op(true);
  EXPECT_EQ(gov.current_budget(), 25'000);
}

TEST(BusyPollGovernorTest, AdaptiveReadHeavyPicksShortBudget) {
  BusyPollGovernor gov(BusyPollPolicy::kAdaptive, 0);
  gov.attach(nullptr);
  for (u32 i = 0; i < BusyPollGovernor::kWindowOps; ++i) gov.record_op(false);
  EXPECT_EQ(gov.current_budget(), BusyPollGovernor::kReadBudgetNs);
}

TEST(BusyPollGovernorTest, AdaptiveWriteHeavyPicksLongBudget) {
  BusyPollGovernor gov(BusyPollPolicy::kAdaptive, 0);
  gov.attach(nullptr);
  for (u32 i = 0; i < BusyPollGovernor::kWindowOps; ++i) gov.record_op(true);
  EXPECT_EQ(gov.current_budget(), BusyPollGovernor::kWriteBudgetNs);
}

TEST(BusyPollGovernorTest, AdaptiveMixedPicksMiddle) {
  BusyPollGovernor gov(BusyPollPolicy::kAdaptive, 0);
  gov.attach(nullptr);
  for (u32 i = 0; i < BusyPollGovernor::kWindowOps; ++i) gov.record_op(i % 2 == 0);
  EXPECT_EQ(gov.current_budget(), BusyPollGovernor::kMixedBudgetNs);
}

TEST(BusyPollGovernorTest, RetunesWhenWorkloadShifts) {
  BusyPollGovernor gov(BusyPollPolicy::kAdaptive, 0);
  gov.attach(nullptr);
  for (u32 i = 0; i < BusyPollGovernor::kWindowOps; ++i) gov.record_op(false);
  EXPECT_EQ(gov.current_budget(), BusyPollGovernor::kReadBudgetNs);
  for (u32 i = 0; i < BusyPollGovernor::kWindowOps; ++i) gov.record_op(true);
  EXPECT_EQ(gov.current_budget(), BusyPollGovernor::kWriteBudgetNs);
}

TEST(BusyPollGovernorTest, AppliesBudgetToTunableChannel) {
  sim::Scheduler sched;
  net::TcpFabricParams params;
  net::SimTcpLink link(sched, params);
  auto [client, target] = link.connect();
  auto* tunable = dynamic_cast<net::BusyPollTunable*>(client.get());
  ASSERT_NE(tunable, nullptr);

  BusyPollGovernor gov(BusyPollPolicy::kAdaptive, 0);
  gov.attach(client.get());
  EXPECT_EQ(tunable->rx_poll_budget(), BusyPollGovernor::kMixedBudgetNs);
  for (u32 i = 0; i < BusyPollGovernor::kWindowOps; ++i) gov.record_op(true);
  EXPECT_EQ(tunable->rx_poll_budget(), BusyPollGovernor::kWriteBudgetNs);
}

TEST(BusyPollGovernorTest, NonTunableChannelIsNoOp) {
  sim::Scheduler sched;
  auto [a, b] = net::make_instant_channel_pair(sched);
  BusyPollGovernor gov(BusyPollPolicy::kAdaptive, 0);
  gov.attach(a.get());  // InstantEndpoint is not tunable; must not crash
  for (u32 i = 0; i < 2 * BusyPollGovernor::kWindowOps; ++i) gov.record_op(true);
  EXPECT_EQ(gov.current_budget(), BusyPollGovernor::kWriteBudgetNs);
}

}  // namespace
}  // namespace oaf::af

#include "af/connection_manager.h"

#include <gtest/gtest.h>

#include "net/copier.h"
#include "sim/scheduler.h"

namespace oaf::af {
namespace {

class CmTest : public ::testing::Test {
 protected:
  sim::Scheduler sched_;
  net::InlineCopier copier_;
};

TEST_F(CmTest, ICReqCarriesTokenAndWish) {
  ShmBroker broker(0xFEED);
  ConnectionManager cm(broker);
  const auto req = cm.make_icreq(AfConfig::oaf());
  EXPECT_EQ(req.node_token, 0xFEEDu);
  EXPECT_TRUE(req.want_shm);
  const auto req2 = cm.make_icreq(AfConfig::stock_tcp());
  EXPECT_FALSE(req2.want_shm);
}

TEST_F(CmTest, CoLocatedGrantsShm) {
  ShmBroker broker(7);
  ConnectionManager client_cm(broker);
  ConnectionManager target_cm(broker);
  AfConfig cfg = AfConfig::oaf();
  cfg.shm_slot_bytes = 4096;
  cfg.shm_slots = 16;

  AfEndpoint client(Role::kClient, sched_, copier_, cfg);
  AfEndpoint target(Role::kTarget, sched_, copier_, cfg);

  const auto req = client_cm.make_icreq(cfg);
  auto resp = target_cm.accept_target(req, "c1", target);
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  EXPECT_TRUE(resp.value().shm_granted);
  EXPECT_EQ(resp.value().shm_slots, 16u);
  EXPECT_EQ(resp.value().shm_name, "c1");
  EXPECT_TRUE(target.shm_ready());

  ASSERT_TRUE(client_cm.complete_client(resp.value(), client));
  EXPECT_TRUE(client.shm_ready());
  EXPECT_EQ(client.slot_bytes(), 4096u);
  EXPECT_EQ(client.slot_count(), 16u);

  // Data actually flows through the established channel.
  std::vector<u8> data(100, 0x77);
  ASSERT_TRUE(client.stage_payload(0, data, [] {}));
  sched_.run();
  std::vector<u8> out(100);
  Result<u64> got = make_error(StatusCode::kUnavailable);
  target.consume_payload(0, out, [&](Result<u64> r) { got = r; });
  sched_.run();
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(out[0], 0x77);
}

TEST_F(CmTest, RemoteClientDeniedShm) {
  ShmBroker client_broker(1);
  ShmBroker target_broker(2);  // different physical host
  ConnectionManager client_cm(client_broker);
  ConnectionManager target_cm(target_broker);
  const AfConfig cfg = AfConfig::oaf();

  AfEndpoint target(Role::kTarget, sched_, copier_, cfg);
  const auto req = client_cm.make_icreq(cfg);
  auto resp = target_cm.accept_target(req, "c1", target);
  ASSERT_TRUE(resp.is_ok());
  EXPECT_FALSE(resp.value().shm_granted);
  EXPECT_FALSE(target.shm_ready());
}

TEST_F(CmTest, ShmNotWantedNotGranted) {
  ShmBroker broker(1);
  ConnectionManager cm(broker);
  const AfConfig stock = AfConfig::stock_tcp();
  AfEndpoint target(Role::kTarget, sched_, copier_, stock);
  auto resp = cm.accept_target(cm.make_icreq(stock), "c1", target);
  ASSERT_TRUE(resp.is_ok());
  EXPECT_FALSE(resp.value().shm_granted);
}

TEST_F(CmTest, SecondConnectionGetsOwnRegion) {
  // Paper §6: per-connection isolation.
  ShmBroker broker(1);
  ConnectionManager cm(broker);
  const AfConfig cfg = AfConfig::oaf();
  AfEndpoint t1(Role::kTarget, sched_, copier_, cfg);
  AfEndpoint t2(Role::kTarget, sched_, copier_, cfg);
  auto r1 = cm.accept_target(cm.make_icreq(cfg), "tenantA", t1);
  auto r2 = cm.accept_target(cm.make_icreq(cfg), "tenantB", t2);
  ASSERT_TRUE(r1.is_ok());
  ASSERT_TRUE(r2.is_ok());
  EXPECT_TRUE(r1.value().shm_granted);
  EXPECT_TRUE(r2.value().shm_granted);
  EXPECT_NE(r1.value().shm_name, r2.value().shm_name);
  EXPECT_EQ(broker.active_regions(), 2u);
}

TEST_F(CmTest, DuplicateConnectionNameFallsBackToTcp) {
  ShmBroker broker(1);
  ConnectionManager cm(broker);
  const AfConfig cfg = AfConfig::oaf();
  AfEndpoint t1(Role::kTarget, sched_, copier_, cfg);
  AfEndpoint t2(Role::kTarget, sched_, copier_, cfg);
  ASSERT_TRUE(cm.accept_target(cm.make_icreq(cfg), "same", t1).is_ok());
  auto r2 = cm.accept_target(cm.make_icreq(cfg), "same", t2);
  ASSERT_TRUE(r2.is_ok());
  EXPECT_FALSE(r2.value().shm_granted);  // graceful TCP fallback
}

TEST_F(CmTest, CompleteClientRejectsUngrantedResp) {
  ShmBroker broker(1);
  ConnectionManager cm(broker);
  AfEndpoint client(Role::kClient, sched_, copier_, AfConfig::oaf());
  pdu::ICResp resp;
  resp.shm_granted = false;
  EXPECT_FALSE(cm.complete_client(resp, client));
  EXPECT_FALSE(client.shm_ready());
}

TEST_F(CmTest, ReleaseRevokesRegion) {
  ShmBroker broker(1);
  ConnectionManager cm(broker);
  const AfConfig cfg = AfConfig::oaf();
  AfEndpoint target(Role::kTarget, sched_, copier_, cfg);
  ASSERT_TRUE(cm.accept_target(cm.make_icreq(cfg), "c", target).is_ok());
  EXPECT_EQ(broker.active_regions(), 1u);
  ASSERT_TRUE(cm.release("c"));
  EXPECT_EQ(broker.active_regions(), 0u);
}

}  // namespace
}  // namespace oaf::af

#include "af/flow_control.h"

#include <gtest/gtest.h>

namespace oaf::af {
namespace {

TEST(FlowControlTest, StockTcpThreshold) {
  AfConfig cfg = AfConfig::stock_tcp();
  // <= 8 KiB in-capsule, above conservative (paper §4.4.2).
  EXPECT_TRUE(write_in_capsule(cfg, false, 4 * 1024));
  EXPECT_TRUE(write_in_capsule(cfg, false, 8 * 1024));
  EXPECT_FALSE(write_in_capsule(cfg, false, 8 * 1024 + 1));
  EXPECT_FALSE(write_in_capsule(cfg, false, 128 * 1024));
}

TEST(FlowControlTest, ShmFlowAlwaysInCapsule) {
  AfConfig cfg = AfConfig::oaf();
  EXPECT_TRUE(write_in_capsule(cfg, true, 4 * 1024));
  EXPECT_TRUE(write_in_capsule(cfg, true, 128 * 1024));
  EXPECT_TRUE(write_in_capsule(cfg, true, 512 * 1024));
}

TEST(FlowControlTest, ShmFlowNeedsChannel) {
  // Config asks for shm flow control but the channel is not connected
  // (remote client): falls back to stock rules.
  AfConfig cfg = AfConfig::oaf();
  EXPECT_TRUE(write_in_capsule(cfg, false, 4 * 1024));
  EXPECT_FALSE(write_in_capsule(cfg, false, 128 * 1024));
}

TEST(FlowControlTest, ConservativeModeOnShm) {
  // Ablation: shm channel present but flow-control optimization off.
  AfConfig cfg = AfConfig::oaf();
  cfg.flow_control = FlowControlMode::kConservative;
  EXPECT_FALSE(write_in_capsule(cfg, true, 128 * 1024));
}

TEST(FlowControlTest, MessageCounts) {
  AfConfig oaf_cfg = AfConfig::oaf();
  AfConfig stock = AfConfig::stock_tcp();
  // Paper Fig 7: shm flow control cuts 4 messages to 2 for large writes.
  EXPECT_EQ(write_control_messages(oaf_cfg, true, 128 * 1024), 2);
  EXPECT_EQ(write_control_messages(stock, false, 128 * 1024), 4);
  EXPECT_EQ(write_control_messages(stock, false, 4 * 1024), 2);
}

TEST(FlowControlTest, ReadSuccessFlag) {
  AfConfig oaf_cfg = AfConfig::oaf();
  AfConfig stock = AfConfig::stock_tcp();
  EXPECT_TRUE(read_success_flag(oaf_cfg, true));
  EXPECT_FALSE(read_success_flag(oaf_cfg, false));
  EXPECT_FALSE(read_success_flag(stock, false));
  AfConfig conservative = AfConfig::oaf();
  conservative.flow_control = FlowControlMode::kConservative;
  EXPECT_FALSE(read_success_flag(conservative, true));
}

TEST(FlowControlTest, CustomThreshold) {
  AfConfig cfg = AfConfig::stock_tcp();
  cfg.in_capsule_threshold = 16 * 1024;
  EXPECT_TRUE(write_in_capsule(cfg, false, 16 * 1024));
  EXPECT_FALSE(write_in_capsule(cfg, false, 16 * 1024 + 1));
}

}  // namespace
}  // namespace oaf::af

#include "af/flow_control.h"

#include <gtest/gtest.h>

namespace oaf::af {
namespace {

TEST(FlowControlTest, StockTcpThreshold) {
  AfConfig cfg = AfConfig::stock_tcp();
  // <= 8 KiB in-capsule, above conservative (paper §4.4.2).
  EXPECT_TRUE(write_in_capsule(cfg, false, 4 * 1024));
  EXPECT_TRUE(write_in_capsule(cfg, false, 8 * 1024));
  EXPECT_FALSE(write_in_capsule(cfg, false, 8 * 1024 + 1));
  EXPECT_FALSE(write_in_capsule(cfg, false, 128 * 1024));
}

TEST(FlowControlTest, ShmFlowAlwaysInCapsule) {
  AfConfig cfg = AfConfig::oaf();
  EXPECT_TRUE(write_in_capsule(cfg, true, 4 * 1024));
  EXPECT_TRUE(write_in_capsule(cfg, true, 128 * 1024));
  EXPECT_TRUE(write_in_capsule(cfg, true, 512 * 1024));
}

TEST(FlowControlTest, ShmFlowNeedsChannel) {
  // Config asks for shm flow control but the channel is not connected
  // (remote client): falls back to stock rules.
  AfConfig cfg = AfConfig::oaf();
  EXPECT_TRUE(write_in_capsule(cfg, false, 4 * 1024));
  EXPECT_FALSE(write_in_capsule(cfg, false, 128 * 1024));
}

TEST(FlowControlTest, ConservativeModeOnShm) {
  // Ablation: shm channel present but flow-control optimization off.
  AfConfig cfg = AfConfig::oaf();
  cfg.flow_control = FlowControlMode::kConservative;
  EXPECT_FALSE(write_in_capsule(cfg, true, 128 * 1024));
}

TEST(FlowControlTest, MessageCounts) {
  AfConfig oaf_cfg = AfConfig::oaf();
  AfConfig stock = AfConfig::stock_tcp();
  // Paper Fig 7: shm flow control cuts 4 messages to 2 for large writes.
  EXPECT_EQ(write_control_messages(oaf_cfg, true, 128 * 1024), 2);
  EXPECT_EQ(write_control_messages(stock, false, 128 * 1024), 4);
  EXPECT_EQ(write_control_messages(stock, false, 4 * 1024), 2);
}

TEST(FlowControlTest, ReadSuccessFlag) {
  AfConfig oaf_cfg = AfConfig::oaf();
  AfConfig stock = AfConfig::stock_tcp();
  EXPECT_TRUE(read_success_flag(oaf_cfg, true));
  EXPECT_FALSE(read_success_flag(oaf_cfg, false));
  EXPECT_FALSE(read_success_flag(stock, false));
  AfConfig conservative = AfConfig::oaf();
  conservative.flow_control = FlowControlMode::kConservative;
  EXPECT_FALSE(read_success_flag(conservative, true));
}

TEST(FlowControlTest, CustomThreshold) {
  AfConfig cfg = AfConfig::stock_tcp();
  cfg.in_capsule_threshold = 16 * 1024;
  EXPECT_TRUE(write_in_capsule(cfg, false, 16 * 1024));
  EXPECT_FALSE(write_in_capsule(cfg, false, 16 * 1024 + 1));
}

TEST(ResourceBudgetTest, AcquireReleaseAndDenials) {
  ResourceBudget b(100);
  EXPECT_TRUE(b.try_acquire(60));
  EXPECT_TRUE(b.try_acquire(40));
  EXPECT_EQ(b.in_use(), 100u);
  EXPECT_EQ(b.peak(), 100u);
  EXPECT_FALSE(b.try_acquire(1));  // over budget
  EXPECT_EQ(b.denied(), 1u);
  b.release(40);
  EXPECT_TRUE(b.try_acquire(30));
  EXPECT_EQ(b.in_use(), 90u);
  EXPECT_EQ(b.peak(), 100u);  // peak is sticky
}

TEST(ResourceBudgetTest, UnlimitedWhenCapacityZero) {
  ResourceBudget b;  // capacity 0 = unlimited
  EXPECT_TRUE(b.try_acquire(1u << 30));
  EXPECT_TRUE(b.try_acquire(1u << 30));
  EXPECT_EQ(b.denied(), 0u);
  EXPECT_EQ(b.occupancy(), 0.0);
  EXPECT_FALSE(b.above(0.5));
}

TEST(ResourceBudgetTest, WatermarkAndUnderflowClamp) {
  ResourceBudget b(10);
  EXPECT_TRUE(b.try_acquire(9));
  EXPECT_TRUE(b.above(0.9));
  EXPECT_FALSE(b.above(0.95));
  b.release(100);  // caller bug: must clamp, never wrap
  EXPECT_EQ(b.in_use(), 0u);
  EXPECT_FALSE(b.above(0.1));
}

}  // namespace
}  // namespace oaf::af

// af::OnceCallback — linear completion tokens (DESIGN.md §14).
//
// The contract under test: a token is armed by construction from a
// callable, must be invoked (rvalue, exactly once) or explicitly
// drop()ed, and aborts the process if an armed token is destroyed —
// that abort is the compile-time-adjacent tripwire that turns a silently
// lost completion (an I/O wedge that would surface minutes later as an
// SLO breach) into an immediate, attributable crash at the drop site.
#include "af/once_callback.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "common/function.h"

namespace oaf::af {
namespace {

TEST(OnceCallback, DefaultConstructedIsDisarmed) {
  OnceCallback<void()> cb;
  EXPECT_FALSE(static_cast<bool>(cb));
  // Destruction of a disarmed token is fine — that's the whole point.
}

TEST(OnceCallback, InvokeDisarmsAndRuns) {
  int runs = 0;
  OnceCallback<void(int)> cb([&](int v) { runs += v; });
  EXPECT_TRUE(static_cast<bool>(cb));
  std::move(cb)(3);
  EXPECT_EQ(runs, 3);
  EXPECT_FALSE(static_cast<bool>(cb));  // disarmed by invocation
}

TEST(OnceCallback, ReturnsValue) {
  OnceCallback<int(int, int)> cb([](int a, int b) { return a + b; });
  EXPECT_EQ(std::move(cb)(20, 22), 42);
}

TEST(OnceCallback, MoveTransfersTheArm) {
  int runs = 0;
  OnceCallback<void()> a([&] { runs++; });
  OnceCallback<void()> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  std::move(b)();
  EXPECT_EQ(runs, 1);
}

TEST(OnceCallback, MoveAssignIntoDisarmedIsFine) {
  int runs = 0;
  OnceCallback<void()> dst;
  dst = OnceCallback<void()>([&] { runs++; });
  std::move(dst)();
  EXPECT_EQ(runs, 1);
}

TEST(OnceCallback, DropDisarmsWithoutRunning) {
  int runs = 0;
  OnceCallback<void()> cb([&] { runs++; });
  std::move(cb).drop();
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_EQ(runs, 0);
}

TEST(OnceCallback, MoveOnlyCaptureIsSupported) {
  auto box = std::make_unique<int>(7);
  OnceCallback<int()> cb([b = std::move(box)] { return *b; });
  EXPECT_EQ(std::move(cb)(), 7);
}

TEST(OnceCallback, TokenRidesMoveOnlyExecutorFn) {
  // The reason Executor::Fn is MoveFunc: an armed token must be able to
  // ride a posted closure. std::function would reject this capture.
  int runs = 0;
  OnceCallback<void()> cb([&] { runs++; });
  MoveFunc<void()> job = [t = std::move(cb)]() mutable { std::move(t)(); };
  job();
  EXPECT_EQ(runs, 1);
}

TEST(OnceCallback, ReentrantOwnerDestructionIsSafe) {
  // Disarm-before-invoke: the callable may destroy the token's last owner
  // (e.g. a completion erases its Pending slot) without tripping the
  // armed-drop check on the token it is running from.
  struct Slot {
    OnceCallback<void()> cb;
  };
  auto slot = std::make_shared<Slot>();
  int runs = 0;
  slot->cb = OnceCallback<void()>([&runs, &slot] {
    slot.reset();  // destroys the (already disarmed) token mid-invoke
    runs++;
  });
  auto cb = std::move(slot->cb);
  std::move(cb)();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(slot, nullptr);
}

using OnceCallbackDeathTest = ::testing::Test;

TEST(OnceCallbackDeathTest, ArmedDropAborts) {
  ASSERT_DEATH(
      {
        OnceCallback<void()> cb([] {});
        // Scope exit destroys an armed token: the linearity violation.
      },
      "armed af::OnceCallback destroyed");
}

TEST(OnceCallbackDeathTest, MoveAssignOverArmedAborts) {
  ASSERT_DEATH(
      {
        OnceCallback<void()> dst([] {});
        dst = OnceCallback<void()>([] {});  // overwrites an armed token
      },
      "armed af::OnceCallback destroyed");
}

}  // namespace
}  // namespace oaf::af

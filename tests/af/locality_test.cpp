#include "af/locality.h"

#include <gtest/gtest.h>

#include "sim/scheduler.h"

namespace oaf::af {
namespace {

TEST(ShmBrokerTest, ProvisionAnnouncesOnLocalityPage) {
  ShmBroker broker(0x1111);
  auto h = broker.provision("connA", 1 << 20);
  ASSERT_TRUE(h.is_ok()) << h.status().to_string();
  const auto handle = std::move(h).take();
  EXPECT_TRUE(handle.valid());
  EXPECT_EQ(handle.bytes, RegionHandle::kRingOffset + (1u << 20));
  const auto page = handle.locality_page();
  EXPECT_EQ(page.generation(), 1u);
  EXPECT_EQ(page.node_token(), 0x1111u);
  EXPECT_EQ(page.region_name(), "connA");
}

TEST(ShmBrokerTest, OpenSharesMemoryInProcessMode) {
  ShmBroker broker(1);
  auto provisioned = broker.provision("c", 4096).take();
  auto opened = broker.open("c");
  ASSERT_TRUE(opened.is_ok());
  // Process-shared backing: literally the same pages.
  provisioned.ring_area()[0] = 0x7E;
  EXPECT_EQ(opened.value().ring_area()[0], 0x7E);
}

TEST(ShmBrokerTest, SingleOpenIsolation) {
  // Paper §6: one shm channel per (client, target) pair; a second tenant
  // must not be able to map the region.
  ShmBroker broker(1);
  (void)broker.provision("conn", 4096);
  ASSERT_TRUE(broker.open("conn").is_ok());
  auto second = broker.open("conn");
  EXPECT_FALSE(second.is_ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ShmBrokerTest, DuplicateProvisionRejected) {
  ShmBroker broker(1);
  ASSERT_TRUE(broker.provision("x", 4096).is_ok());
  auto dup = broker.provision("x", 4096);
  EXPECT_FALSE(dup.is_ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(ShmBrokerTest, OpenUnknownRegionFails) {
  ShmBroker broker(1);
  EXPECT_FALSE(broker.open("ghost").is_ok());
}

TEST(ShmBrokerTest, RevokeFreesName) {
  ShmBroker broker(1);
  auto handle = broker.provision("temp", 4096).take();
  EXPECT_EQ(broker.active_regions(), 1u);
  ASSERT_TRUE(broker.revoke("temp"));
  EXPECT_EQ(broker.active_regions(), 0u);
  // Name reusable after revoke.
  EXPECT_TRUE(broker.provision("temp", 4096).is_ok());
  // Old handle's memory stays valid through its keepalive.
  handle.ring_area()[0] = 1;
}

TEST(ShmBrokerTest, PosixBackingDistinctMappingsSamePages) {
  ShmBroker broker(2, ShmBroker::Backing::kPosixShm);
  const std::string name = "test_posix_" + std::to_string(getpid());
  auto provisioned_res = broker.provision(name, 1 << 16);
  ASSERT_TRUE(provisioned_res.is_ok()) << provisioned_res.status().to_string();
  auto provisioned = std::move(provisioned_res).take();
  auto opened = broker.open(name);
  ASSERT_TRUE(opened.is_ok()) << opened.status().to_string();
  EXPECT_NE(provisioned.base, opened.value().base);  // distinct mappings
  provisioned.ring_area()[5] = 0x42;
  EXPECT_EQ(opened.value().ring_area()[5], 0x42);    // same pages
  ASSERT_TRUE(broker.revoke(name));
}

TEST(ShmBrokerTest, MutexSharedPerRegion) {
  ShmBroker broker(1);
  sim::Scheduler sched;
  (void)broker.provision("m", 4096);
  auto m1 = broker.mutex_for("m", sched);
  auto m2 = broker.mutex_for("m", sched);
  ASSERT_NE(m1, nullptr);
  EXPECT_EQ(m1.get(), m2.get());
  EXPECT_EQ(broker.mutex_for("ghost", sched), nullptr);
}

TEST(ShmBrokerTest, EmptyNameRejected) {
  ShmBroker broker(1);
  EXPECT_FALSE(broker.provision("", 4096).is_ok());
}

}  // namespace
}  // namespace oaf::af

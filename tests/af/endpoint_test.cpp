#include "af/endpoint.h"

#include <gtest/gtest.h>

#include <cstring>

#include "sim/scheduler.h"

namespace oaf::af {
namespace {

class EndpointPair {
 public:
  explicit EndpointPair(AfConfig cfg = AfConfig::oaf(), u64 slot_bytes = 4096,
                        u32 slots = 8)
      : broker_(1),
        client_(Role::kClient, sched_, copier_, cfg),
        target_(Role::kTarget, sched_, copier_, cfg) {
    AfConfig c = cfg;
    c.shm_slot_bytes = slot_bytes;
    c.shm_slots = slots;
    const u64 ring_bytes = shm::DoubleBufferRing::required_bytes(slot_bytes, slots);
    auto handle = broker_.provision("pair", ring_bytes).take();
    auto ring = shm::DoubleBufferRing::create(handle.ring_area(),
                                              handle.ring_bytes(), slot_bytes,
                                              slots)
                    .take();
    std::shared_ptr<sim::AsyncMutex> lock;
    if (cfg.shm_access == ShmAccessMode::kLocked) {
      lock = broker_.mutex_for("pair", sched_);
    }
    auto client_handle = broker_.open("pair").take();
    auto client_ring = shm::DoubleBufferRing::attach(client_handle.ring_area(),
                                                     client_handle.ring_bytes())
                           .take();
    client_.enable_shm(std::move(client_handle), client_ring, lock);
    target_.enable_shm(std::move(handle), ring, lock);
  }

  sim::Scheduler sched_;
  net::InlineCopier copier_;
  ShmBroker broker_;
  AfEndpoint client_;
  AfEndpoint target_;
};

TEST(AfEndpointTest, NotReadyWithoutShm) {
  sim::Scheduler sched;
  net::InlineCopier copier;
  AfEndpoint ep(Role::kClient, sched, copier, AfConfig::oaf());
  EXPECT_FALSE(ep.shm_ready());
  EXPECT_FALSE(ep.stage_payload(0, std::vector<u8>(16), [] {}));
  EXPECT_FALSE(ep.acquire_app_buffer(0).is_ok());
  EXPECT_FALSE(ep.consume_view(0).is_ok());
  EXPECT_FALSE(ep.release_slot(0));
}

TEST(AfEndpointTest, StageConsumeClientToTarget) {
  EndpointPair pair;
  std::vector<u8> data(1000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i);

  bool staged = false;
  ASSERT_TRUE(pair.client_.stage_payload(3, data, [&] { staged = true; }));
  pair.sched_.run();
  ASSERT_TRUE(staged);

  std::vector<u8> out(1000);
  Result<u64> got = make_error(StatusCode::kUnavailable);
  pair.target_.consume_payload(3, out, [&](Result<u64> r) { got = r; });
  pair.sched_.run();
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), 1000u);
  EXPECT_EQ(out, data);
  EXPECT_EQ(pair.client_.shm_payload_bytes(), 1000u);
  EXPECT_EQ(pair.client_.staged_copies(), 1u);
}

TEST(AfEndpointTest, StageConsumeTargetToClient) {
  EndpointPair pair;
  std::vector<u8> data(512, 0xBD);
  ASSERT_TRUE(pair.target_.stage_payload(0, data, [] {}));
  pair.sched_.run();
  auto view = pair.client_.consume_view(0);
  ASSERT_TRUE(view.is_ok());
  EXPECT_EQ(view.value().size(), 512u);
  EXPECT_EQ(view.value()[0], 0xBD);
  ASSERT_TRUE(pair.client_.release_slot(0));
}

TEST(AfEndpointTest, ZeroCopyWritePath) {
  EndpointPair pair;
  auto buf = pair.client_.acquire_app_buffer(2);
  ASSERT_TRUE(buf.is_ok());
  std::memset(buf.value().data(), 0x99, 256);

  bool published = false;
  ASSERT_TRUE(pair.client_.publish_app_buffer(2, 256, [&] { published = true; }));
  pair.sched_.run();
  ASSERT_TRUE(published);
  EXPECT_EQ(pair.client_.zero_copy_publishes(), 1u);
  EXPECT_EQ(pair.client_.staged_copies(), 0u);

  std::vector<u8> out(256);
  Result<u64> got = make_error(StatusCode::kUnavailable);
  pair.target_.consume_payload(2, out, [&](Result<u64> r) { got = r; });
  pair.sched_.run();
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(out[0], 0x99);
}

TEST(AfEndpointTest, PayloadTooLargeRejected) {
  EndpointPair pair(AfConfig::oaf(), 512, 4);
  std::vector<u8> big(513);
  EXPECT_FALSE(pair.client_.stage_payload(0, big, [] {}));
}

TEST(AfEndpointTest, SlotBusyRejected) {
  EndpointPair pair;
  ASSERT_TRUE(pair.client_.stage_payload(1, std::vector<u8>(8), [] {}));
  pair.sched_.run();
  // Slot 1 still Ready (unconsumed) -> second stage fails.
  EXPECT_FALSE(pair.client_.stage_payload(1, std::vector<u8>(8), [] {}));
}

TEST(AfEndpointTest, ConsumeEmptySlotFails) {
  EndpointPair pair;
  std::vector<u8> out(64);
  Result<u64> got = Result<u64>(u64{0});
  pair.target_.consume_payload(5, out, [&](Result<u64> r) { got = r; });
  pair.sched_.run();
  EXPECT_FALSE(got.is_ok());
}

TEST(AfEndpointTest, DstTooSmallFails) {
  EndpointPair pair;
  ASSERT_TRUE(pair.client_.stage_payload(0, std::vector<u8>(100), [] {}));
  pair.sched_.run();
  std::vector<u8> tiny(50);
  Result<u64> got = Result<u64>(u64{0});
  pair.target_.consume_payload(0, tiny, [&](Result<u64> r) { got = r; });
  pair.sched_.run();
  EXPECT_FALSE(got.is_ok());
}

TEST(AfEndpointTest, LockedModeSerializesButDelivers) {
  AfConfig cfg = AfConfig::oaf();
  cfg.shm_access = ShmAccessMode::kLocked;
  cfg.zero_copy = false;
  EndpointPair pair(cfg);
  std::vector<u8> a(100, 1);
  std::vector<u8> b(100, 2);
  int staged = 0;
  ASSERT_TRUE(pair.client_.stage_payload(0, a, [&] { staged++; }));
  ASSERT_TRUE(pair.client_.stage_payload(1, b, [&] { staged++; }));
  pair.sched_.run();
  EXPECT_EQ(staged, 2);

  std::vector<u8> out(100);
  int consumed = 0;
  pair.target_.consume_payload(0, out, [&](Result<u64> r) {
    EXPECT_TRUE(r.is_ok());
    consumed++;
  });
  pair.target_.consume_payload(1, out, [&](Result<u64> r) {
    EXPECT_TRUE(r.is_ok());
    consumed++;
  });
  pair.sched_.run();
  EXPECT_EQ(consumed, 2);
}

TEST(AfEndpointTest, FullRingLap) {
  EndpointPair pair(AfConfig::oaf(), 256, 4);
  for (u64 seq = 0; seq < 12; ++seq) {
    const u32 slot = pair.client_.slot_for(seq);
    EXPECT_EQ(slot, seq % 4);
    std::vector<u8> data(32, static_cast<u8>(seq));
    ASSERT_TRUE(pair.client_.stage_payload(slot, data, [] {}));
    pair.sched_.run();
    std::vector<u8> out(32);
    Result<u64> got = make_error(StatusCode::kUnavailable);
    pair.target_.consume_payload(slot, out, [&](Result<u64> r) { got = r; });
    pair.sched_.run();
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(out[0], static_cast<u8>(seq));
  }
}

}  // namespace
}  // namespace oaf::af

#include "af/buffer_manager.h"

#include <gtest/gtest.h>

#include <set>

namespace oaf::af {
namespace {

TEST(BufferPoolTest, AllocUpToCapacity) {
  BufferPool pool(4096, 4);
  std::vector<std::span<u8>> bufs;
  for (int i = 0; i < 4; ++i) {
    auto b = pool.alloc();
    ASSERT_FALSE(b.empty());
    EXPECT_GE(b.size(), 4096u);
    bufs.push_back(b);
  }
  EXPECT_TRUE(pool.alloc().empty());  // exhausted
  EXPECT_EQ(pool.in_use(), 4u);
  EXPECT_EQ(pool.peak_in_use(), 4u);
  for (auto& b : bufs) ASSERT_TRUE(pool.free(b));
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(BufferPoolTest, BuffersAreDisjointAndAligned) {
  BufferPool pool(1000, 8, 4096);
  std::set<const u8*> starts;
  std::vector<std::span<u8>> bufs;
  for (int i = 0; i < 8; ++i) {
    auto b = pool.alloc();
    ASSERT_FALSE(b.empty());
    starts.insert(b.data());
    bufs.push_back(b);
  }
  EXPECT_EQ(starts.size(), 8u);
  // Buffer size rounds to 64B multiple; first buffer is page-aligned.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(*starts.begin()) % 4096, 0u);
  // Spans do not overlap.
  std::vector<std::pair<const u8*, const u8*>> ranges;
  ranges.reserve(bufs.size());
  for (auto& b : bufs) ranges.emplace_back(b.data(), b.data() + b.size());
  std::sort(ranges.begin(), ranges.end());
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_LE(ranges[i - 1].second, ranges[i].first);
  }
}

TEST(BufferPoolTest, FreeValidation) {
  BufferPool pool(4096, 2);
  auto b = pool.alloc();
  ASSERT_FALSE(b.empty());

  std::vector<u8> foreign(4096);
  EXPECT_FALSE(pool.free(foreign));                     // not from this pool
  EXPECT_FALSE(pool.free(std::span<u8>{}));             // null
  EXPECT_FALSE(pool.free(b.subspan(1)));                // misaligned interior
  ASSERT_TRUE(pool.free(b));
  EXPECT_FALSE(pool.free(b));                           // double free
}

TEST(BufferPoolTest, ReuseAfterFree) {
  BufferPool pool(4096, 1);
  auto a = pool.alloc();
  ASSERT_FALSE(a.empty());
  const u8* addr = a.data();
  ASSERT_TRUE(pool.free(a));
  auto b = pool.alloc();
  EXPECT_EQ(b.data(), addr);  // buffer reuse (paper: Buffer Manager re-uses)
}

TEST(BufferPoolTest, DoubleFreeDetectedAfterRefill) {
  // Regression for the in-use bitmap: the old free-list scan only caught a
  // double free while the index was still on the list. Freeing, re-filling
  // the list through other buffers, and freeing again must still fail —
  // the bitmap says the buffer is not outstanding, whatever the list holds.
  BufferPool pool(4096, 3);
  auto a = pool.alloc();
  auto b = pool.alloc();
  auto c = pool.alloc();
  ASSERT_FALSE(a.empty());
  ASSERT_TRUE(pool.free(a));
  ASSERT_TRUE(pool.free(b));
  ASSERT_TRUE(pool.free(c));
  const Status again = pool.free(a);
  EXPECT_FALSE(again);
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(pool.in_use(), 0u);
  // The pool is still coherent: all three buffers come back out.
  EXPECT_FALSE(pool.alloc().empty());
  EXPECT_FALSE(pool.alloc().empty());
  EXPECT_FALSE(pool.alloc().empty());
  EXPECT_TRUE(pool.alloc().empty());
}

TEST(BufferPoolTest, ExhaustionIsCountedAndTyped) {
  BufferPool pool(4096, 1);
  auto a = pool.alloc();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(pool.exhaustions(), 0u);
  EXPECT_TRUE(pool.alloc().empty());
  EXPECT_EQ(pool.exhaustions(), 1u);
  const auto r = pool.try_alloc();
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(pool.exhaustions(), 2u);
  ASSERT_TRUE(pool.free(a));
  const auto ok = pool.try_alloc();
  ASSERT_TRUE(ok.is_ok());
  EXPECT_FALSE(ok.value().empty());
  EXPECT_EQ(pool.exhaustions(), 2u);  // success does not count
}

TEST(BufferManagerTest, TryAllocStagingSurfacesExhaustion) {
  BufferManager mgr(4096, 1);
  auto held = mgr.try_alloc_staging();
  ASSERT_TRUE(held.is_ok());
  const auto dry = mgr.try_alloc_staging();
  ASSERT_FALSE(dry.is_ok());
  EXPECT_EQ(dry.status().code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(mgr.free_staging(held.value()));
  EXPECT_TRUE(mgr.try_alloc_staging().is_ok());
}

TEST(BufferPoolTest, OwnsChecksBounds) {
  BufferPool pool(4096, 2);
  auto b = pool.alloc();
  EXPECT_TRUE(pool.owns(b.data()));
  EXPECT_TRUE(pool.owns(b.data() + 100));
  std::vector<u8> other(16);
  EXPECT_FALSE(pool.owns(other.data()));
}

TEST(BufferManagerTest, PinnedBytesTracksChunkGeometry) {
  // Fig 9's memory-utilization series: the pool pins chunk_bytes * count.
  BufferManager small(128 * 1024, 16);
  BufferManager large(2 * 1024 * 1024, 16);
  EXPECT_EQ(small.pinned_bytes(), 128u * 1024 * 16);
  EXPECT_EQ(large.pinned_bytes(), 2u * 1024 * 1024 * 16);
  EXPECT_GT(large.pinned_bytes(), small.pinned_bytes());
}

TEST(BufferManagerTest, StagingAllocRoundtrip) {
  BufferManager mgr(4096, 4);
  auto b = mgr.alloc_staging();
  ASSERT_FALSE(b.empty());
  EXPECT_EQ(mgr.pool().in_use(), 1u);
  ASSERT_TRUE(mgr.free_staging(b));
  EXPECT_EQ(mgr.pool().in_use(), 0u);
}

}  // namespace
}  // namespace oaf::af

#include "af/chunker.h"

#include <gtest/gtest.h>

namespace oaf::af {
namespace {

TEST(ChunkerTest, ExactMultiple) {
  const auto chunks = make_chunks(512 * 1024, 128 * 1024);
  ASSERT_EQ(chunks.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(chunks[i].offset, i * 128 * 1024);
    EXPECT_EQ(chunks[i].length, 128u * 1024);
    EXPECT_EQ(chunks[i].last, i == 3);
  }
}

TEST(ChunkerTest, RemainderChunk) {
  const auto chunks = make_chunks(300 * 1024, 128 * 1024);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[2].length, 44u * 1024);
  EXPECT_TRUE(chunks[2].last);
}

TEST(ChunkerTest, SmallIoSingleChunk) {
  const auto chunks = make_chunks(4096, 128 * 1024);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].length, 4096u);
  EXPECT_TRUE(chunks[0].last);
}

TEST(ChunkerTest, ZeroTotalYieldsSentinel) {
  const auto chunks = make_chunks(0, 128 * 1024);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].length, 0u);
  EXPECT_TRUE(chunks[0].last);
}

TEST(ChunkerTest, ZeroChunkSizeMeansNoSplit) {
  const auto chunks = make_chunks(1 << 20, 0);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].length, 1u << 20);
}

TEST(ChunkerTest, CoverageIsExactAndOrdered) {
  // Property: chunks tile [0, total) exactly, in order, no overlap.
  for (u64 total : {1ull, 1000ull, 128ull * 1024, 999'999ull, 2ull << 20}) {
    for (u64 chunk : {512ull, 4096ull, 128ull * 1024, 2ull << 20}) {
      const auto chunks = make_chunks(total, chunk);
      EXPECT_EQ(chunks.size(), chunk_count(total, chunk));
      u64 expect_off = 0;
      for (size_t i = 0; i < chunks.size(); ++i) {
        EXPECT_EQ(chunks[i].offset, expect_off);
        EXPECT_GT(chunks[i].length, 0u);
        EXPECT_LE(chunks[i].length, chunk);
        EXPECT_EQ(chunks[i].last, i + 1 == chunks.size());
        expect_off += chunks[i].length;
      }
      EXPECT_EQ(expect_off, total);
    }
  }
}

TEST(ChunkerTest, PaperChunkCounts) {
  // §4.5: I/O broken into ceil(io_size / chunk_size) requests.
  EXPECT_EQ(chunk_count(512 * 1024, 128 * 1024), 4u);
  EXPECT_EQ(chunk_count(512 * 1024, 512 * 1024), 1u);
  EXPECT_EQ(chunk_count(512 * 1024, 2 * 1024 * 1024), 1u);
  EXPECT_EQ(chunk_count(2 * 1024 * 1024, 512 * 1024), 4u);
}

}  // namespace
}  // namespace oaf::af

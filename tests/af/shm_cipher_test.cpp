#include "af/shm_cipher.h"

#include <gtest/gtest.h>

#include "af/locality.h"
#include "af/endpoint.h"
#include "net/copier.h"
#include "sim/scheduler.h"

namespace oaf::af {
namespace {

TEST(XorKeystreamTest, RoundtripRestoresPlaintext) {
  std::vector<u8> data(1000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i);
  const auto original = data;
  xor_keystream(data, 0xABCDEF, 0);
  EXPECT_NE(data, original);
  xor_keystream(data, 0xABCDEF, 0);
  EXPECT_EQ(data, original);
}

TEST(XorKeystreamTest, SeekableAtAnyOffset) {
  // Encrypting a buffer in one pass must equal encrypting it piecewise at
  // the right stream offsets (slots decrypt independently).
  std::vector<u8> whole(4096, 0x5A);
  std::vector<u8> pieces = whole;
  xor_keystream(whole, 7, 1000);
  xor_keystream(std::span<u8>(pieces.data(), 1500), 7, 1000);
  xor_keystream(std::span<u8>(pieces.data() + 1500, 4096 - 1500), 7, 2500);
  EXPECT_EQ(whole, pieces);
}

TEST(XorKeystreamTest, DifferentKeysDiffer) {
  std::vector<u8> a(256, 0);
  std::vector<u8> b(256, 0);
  xor_keystream(a, 1, 0);
  xor_keystream(b, 2, 0);
  EXPECT_NE(a, b);
}

TEST(XorKeystreamTest, KeystreamLooksBalanced) {
  // Not a security claim — just that the stand-in is not degenerate.
  std::vector<u8> zeros(1 << 16, 0);
  xor_keystream(zeros, 0x1234, 0);
  size_t ones = 0;
  for (u8 b : zeros) ones += static_cast<size_t>(__builtin_popcount(b));
  const double frac = static_cast<double>(ones) / (8.0 * zeros.size());
  EXPECT_NEAR(frac, 0.5, 0.02);
}

class EncryptedEndpointTest : public ::testing::Test {
 protected:
  EncryptedEndpointTest() : broker_(1) {
    AfConfig cfg = AfConfig::oaf();
    cfg.encrypt_shm = true;
    cfg.shm_key = 0xDEADBEEF;
    cfg.shm_slot_bytes = 4096;
    cfg.shm_slots = 4;
    client_ = std::make_unique<AfEndpoint>(Role::kClient, sched_, copier_, cfg);
    target_ = std::make_unique<AfEndpoint>(Role::kTarget, sched_, copier_, cfg);

    const u64 ring_bytes = shm::DoubleBufferRing::required_bytes(4096, 4);
    auto handle = broker_.provision("enc", ring_bytes).take();
    region_base_ = handle.ring_area();
    auto ring =
        shm::DoubleBufferRing::create(handle.ring_area(), handle.ring_bytes(),
                                      4096, 4)
            .take();
    auto client_handle = broker_.open("enc").take();
    auto client_ring = shm::DoubleBufferRing::attach(client_handle.ring_area(),
                                                     client_handle.ring_bytes())
                           .take();
    client_->enable_shm(std::move(client_handle), client_ring);
    target_->enable_shm(std::move(handle), ring);
  }

  sim::Scheduler sched_;
  net::InlineCopier copier_;
  af::ShmBroker broker_;
  std::unique_ptr<AfEndpoint> client_;
  std::unique_ptr<AfEndpoint> target_;
  u8* region_base_ = nullptr;
};

TEST_F(EncryptedEndpointTest, StagedRoundtripDecrypts) {
  std::vector<u8> data(512);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 3);
  ASSERT_TRUE(client_->stage_payload(1, data, [] {}));
  sched_.run();

  std::vector<u8> out(512);
  Result<u64> got = make_error(StatusCode::kUnavailable);
  target_->consume_payload(1, out, [&](Result<u64> r) { got = r; });
  sched_.run();
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(out, data);
}

TEST_F(EncryptedEndpointTest, SnooperSeesOnlyCiphertext) {
  std::vector<u8> secret(256, 0x41);  // "AAAA..." — highly recognizable
  ASSERT_TRUE(client_->stage_payload(0, secret, [] {}));
  sched_.run();

  // A snooper maps the raw region. The slot bytes must not contain the
  // plaintext pattern.
  // Slot 0 of the C2T half starts right after the control arrays.
  bool any_plain_run = false;
  const u8* base = region_base_;
  const u64 scan = shm::DoubleBufferRing::required_bytes(4096, 4) - 8;
  for (u64 off = 0; off + 8 < scan; ++off) {
    int run = 0;
    while (run < 8 && base[off + static_cast<u64>(run)] == 0x41) run++;
    if (run == 8) {
      any_plain_run = true;
      break;
    }
  }
  EXPECT_FALSE(any_plain_run);

  // The legitimate consumer still decrypts it.
  std::vector<u8> out(256);
  Result<u64> got = make_error(StatusCode::kUnavailable);
  target_->consume_payload(0, out, [&](Result<u64> r) { got = r; });
  sched_.run();
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(out, secret);
}

TEST_F(EncryptedEndpointTest, ZeroCopyDisabledByEncryption) {
  // The constructor demotes zero-copy when encryption is on.
  EXPECT_FALSE(client_->config().zero_copy);
  // And views that would expose ciphertext are refused.
  std::vector<u8> data(64);
  ASSERT_TRUE(client_->stage_payload(2, data, [] {}));
  sched_.run();
  auto view = target_->consume_view(2);
  EXPECT_FALSE(view.is_ok());
  EXPECT_EQ(view.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(EncryptedEndpointTest, WrongKeyYieldsGarbage) {
  AfConfig wrong = client_->config();
  wrong.shm_key = 0xBAD;
  AfEndpoint eavesdropper(Role::kTarget, sched_, copier_, wrong);
  auto handle = broker_.open("enc");
  // Single-open isolation already blocks this mapping; simulate a
  // hypothetical bypass by checking the cipher directly instead.
  EXPECT_FALSE(handle.is_ok());

  std::vector<u8> data(128, 0x77);
  auto enc = data;
  xor_keystream(enc, client_->config().shm_key, 0);
  auto dec_wrong = enc;
  xor_keystream(dec_wrong, 0xBAD, 0);
  EXPECT_NE(dec_wrong, data);
}

}  // namespace
}  // namespace oaf::af

// High-volume AF endpoint exercises: full-ring pipelines across mixed
// staged/zero-copy traffic, the chunked slot-reuse path, and parameterized
// geometry sweeps — the steady-state behaviour the figures depend on.
#include <gtest/gtest.h>

#include <cstring>

#include "af/endpoint.h"
#include "af/locality.h"
#include "common/rng.h"
#include "net/copier.h"
#include "sim/scheduler.h"

namespace oaf::af {
namespace {

struct Pair {
  Pair(u64 slot_bytes, u32 slots, AfConfig base = AfConfig::oaf())
      : broker(1) {
    base.shm_slot_bytes = slot_bytes;
    base.shm_slots = slots;
    client = std::make_unique<AfEndpoint>(Role::kClient, sched, copier, base);
    target = std::make_unique<AfEndpoint>(Role::kTarget, sched, copier, base);
    const u64 bytes = shm::DoubleBufferRing::required_bytes(slot_bytes, slots);
    auto handle = broker.provision("stress", bytes).take();
    auto ring = shm::DoubleBufferRing::create(handle.ring_area(),
                                              handle.ring_bytes(), slot_bytes,
                                              slots)
                    .take();
    auto chandle = broker.open("stress").take();
    auto cring =
        shm::DoubleBufferRing::attach(chandle.ring_area(), chandle.ring_bytes())
            .take();
    client->enable_shm(std::move(chandle), cring);
    target->enable_shm(std::move(handle), ring);
  }

  sim::Scheduler sched;
  net::InlineCopier copier;
  ShmBroker broker;
  std::unique_ptr<AfEndpoint> client;
  std::unique_ptr<AfEndpoint> target;
};

class GeometrySweep : public ::testing::TestWithParam<std::pair<u64, u32>> {};

TEST_P(GeometrySweep, ThousandTransfersBothDirections) {
  const auto [slot_bytes, slots] = GetParam();
  Pair pair(slot_bytes, slots);
  Rng rng(slot_bytes + slots);

  for (u64 seq = 0; seq < 1000; ++seq) {
    const u32 slot = pair.client->slot_for(seq);
    const u64 len = 1 + rng.next_below(slot_bytes);
    std::vector<u8> data(len);
    for (auto& b : data) b = static_cast<u8>(rng.next_u64());

    // Client -> target.
    ASSERT_TRUE(pair.client->stage_payload(slot, data, [] {})) << "seq " << seq;
    pair.sched.run();
    std::vector<u8> out(len);
    Result<u64> got = make_error(StatusCode::kUnavailable);
    pair.target->consume_payload(slot, out, [&](Result<u64> r) { got = r; });
    pair.sched.run();
    ASSERT_TRUE(got.is_ok());
    ASSERT_EQ(got.value(), len);
    ASSERT_EQ(out, data);

    // Target -> client (the read direction), same slot index.
    ASSERT_TRUE(pair.target->stage_payload(slot, data, [] {}));
    pair.sched.run();
    auto view = pair.client->consume_view(slot);
    ASSERT_TRUE(view.is_ok());
    ASSERT_EQ(view.value().size(), len);
    ASSERT_EQ(std::memcmp(view.value().data(), data.data(), len), 0);
    ASSERT_TRUE(pair.client->release_slot(slot));
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, GeometrySweep,
                         ::testing::Values(std::pair<u64, u32>{512, 1},
                                           std::pair<u64, u32>{4096, 8},
                                           std::pair<u64, u32>{65536, 32},
                                           std::pair<u64, u32>{524288, 128}));

TEST(EndpointStressTest, FullPipelineAllSlotsInFlight) {
  constexpr u32 kSlots = 16;
  Pair pair(4096, kSlots);
  // Fill every slot before consuming any — the QD == slots steady state.
  for (u32 s = 0; s < kSlots; ++s) {
    std::vector<u8> data(128, static_cast<u8>(s));
    ASSERT_TRUE(pair.client->stage_payload(s, data, [] {}));
  }
  pair.sched.run();
  // Ring is full: the next producer acquire must fail cleanly.
  EXPECT_FALSE(pair.client->stage_payload(0, std::vector<u8>(8), [] {}));

  for (u32 s = 0; s < kSlots; ++s) {
    std::vector<u8> out(128);
    Result<u64> got = make_error(StatusCode::kUnavailable);
    pair.target->consume_payload(s, out, [&](Result<u64> r) { got = r; });
    pair.sched.run();
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(out[0], static_cast<u8>(s));
  }
  // All free again.
  ASSERT_TRUE(pair.client->stage_payload(0, std::vector<u8>(8), [] {}));
}

TEST(EndpointStressTest, StageWhenFreeWaitsForDrain) {
  Pair pair(4096, 4);
  std::vector<u8> first(64, 1);
  std::vector<u8> second(64, 2);
  ASSERT_TRUE(pair.client->stage_payload(2, first, [] {}));
  pair.sched.run();

  // Slot 2 is Ready; a forced second stage parks and polls.
  bool second_staged = false;
  pair.client->stage_payload_when_free(2, second, [&] { second_staged = true; });
  pair.sched.run_until(pair.sched.now() + 10'000);
  EXPECT_FALSE(second_staged);  // still waiting on the consumer

  std::vector<u8> out(64);
  pair.target->consume_payload(2, out, [](Result<u64> r) {
    ASSERT_TRUE(r.is_ok());
  });
  pair.sched.run();
  EXPECT_TRUE(second_staged);  // retry succeeded after the drain
  EXPECT_EQ(out[0], 1);

  Result<u64> got = make_error(StatusCode::kUnavailable);
  pair.target->consume_payload(2, out, [&](Result<u64> r) { got = r; });
  pair.sched.run();
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(out[0], 2);
}

TEST(EndpointStressTest, MixedZeroCopyAndStagedTraffic) {
  Pair pair(8192, 8);
  Rng rng(99);
  for (u64 seq = 0; seq < 400; ++seq) {
    const u32 slot = pair.client->slot_for(seq);
    const u64 len = 1 + rng.next_below(8192);
    std::vector<u8> data(len);
    for (auto& b : data) b = static_cast<u8>(rng.next_u64() >> 17);

    if (seq % 2 == 0) {
      auto buf = pair.client->acquire_app_buffer(slot);
      ASSERT_TRUE(buf.is_ok());
      std::memcpy(buf.value().data(), data.data(), len);
      ASSERT_TRUE(pair.client->publish_app_buffer(slot, len, [] {}));
    } else {
      ASSERT_TRUE(pair.client->stage_payload(slot, data, [] {}));
    }
    pair.sched.run();

    std::vector<u8> out(len);
    Result<u64> got = make_error(StatusCode::kUnavailable);
    pair.target->consume_payload(slot, out, [&](Result<u64> r) { got = r; });
    pair.sched.run();
    ASSERT_TRUE(got.is_ok());
    ASSERT_EQ(out, data);
  }
  EXPECT_EQ(pair.client->zero_copy_publishes(), 200u);
  EXPECT_EQ(pair.client->staged_copies(), 200u);
}

TEST(EndpointStressTest, StatsAccounting) {
  Pair pair(4096, 4);
  std::vector<u8> data(1000);
  ASSERT_TRUE(pair.client->stage_payload(0, data, [] {}));
  pair.sched.run();
  EXPECT_EQ(pair.client->shm_payload_bytes(), 1000u);
  auto buf = pair.client->acquire_app_buffer(1);
  ASSERT_TRUE(buf.is_ok());
  ASSERT_TRUE(pair.client->publish_app_buffer(1, 500, [] {}));
  pair.sched.run();
  EXPECT_EQ(pair.client->shm_payload_bytes(), 1500u);
}

}  // namespace
}  // namespace oaf::af

// Figure 18: scale-out case-1 — four h5bench clients, each talking to a
// remote SSD on a *different* node (per-pair links). The "SHM (k%)" series
// co-locates k% of the clients with their storage service (shared-memory
// channel); the rest stay on NVMe/TCP-25G. Aggregate write/read bandwidth.
// SHM(100%) is omitted as in the paper (it equals the case-2 setting).
#include "bench_report.h"
#include "h5_util.h"

using namespace oaf;
using namespace oaf::bench;

int main(int argc, char** argv) {
  BenchReport report("fig18_scaleout_case1");
  Table t("Fig 18: case-1 (4 clients -> 4 SSDs on different nodes): aggregate MiB/s");
  t.header({"Mode", "h5bench write", "h5bench read"});
  double w0 = 0;
  double r0 = 0;
  double w75 = 0;
  double r75 = 0;
  for (const int shm_clients : {0, 1, 2, 3}) {
    const auto res = run_scaleout_clients(shm_clients, /*shared_link=*/false);
    if (shm_clients == 0) {
      w0 = res.write_mib_s;
      r0 = res.read_mib_s;
    }
    if (shm_clients == 3) {
      w75 = res.write_mib_s;
      r75 = res.read_mib_s;
    }
    t.row({"SHM (" + std::to_string(shm_clients * 25) + "%)",
           mib(res.write_mib_s), mib(res.read_mib_s)});
  }
  t.print();
  report.add_table(t);

  std::printf(
      "\nPaper shape check: SHM(75%%) vs SHM(0%%) = 1.81x write / 2.98x read;\n"
      "measured %.2fx write / %.2fx read.\n",
      w75 / w0, r75 / r0);
  return finish_bench(report, argc, argv);
}

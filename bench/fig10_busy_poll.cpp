// Figure 10: throughput of NVMe/TCP-10G under different busy-polling
// budgets, 128 KiB I/O, single client at queue depth 128 (a saturated but
// not wire-bound stream on this testbed — the regime where the rx path is
// on the critical resource).
//
// Reproduced: busy polling beats the interrupt path (the paper's core
// §4.5 claim), reads peak at the short 25-50 us budgets and degrade toward
// 100 us, and the adaptive governor matches or beats the best static
// setting on both workloads. Deviation from the paper: the static-budget
// *ordering for writes* (paper: 25 us below interrupts, 100 us best) is
// not reproduced — our virtualized-interrupt cost model rewards short
// budgets for both directions; see EXPERIMENTS.md for the hypothesis.
#include "bench_report.h"
#include "bench_util.h"

using namespace oaf;
using namespace oaf::bench;

namespace {

double run_one(bool is_read, af::BusyPollPolicy policy, DurNs budget) {
  WorkloadSpec spec = paper_defaults().with_io(128 * kKiB).with_mix(
      is_read ? 1.0 : 0.0, true);

  RigOptions opts = opts_with_tcp(tcp_10g());
  // Both endpoints of every connection poll with the same budget (the
  // kernel knob is per socket, set on client and target alike).
  opts.tcp.initial_poll_budget_ns =
      policy == af::BusyPollPolicy::kStatic ? budget : 0;

  sim::Scheduler sched;
  af::AfConfig cfg = af::AfConfig::stock_tcp();
  cfg.busy_poll = policy;
  cfg.static_poll_ns = budget;
  Rig rig(sched, opts, {StreamSpec{Transport::kTcpStock, spec, cfg}});
  return Rig::aggregate_mib_s(rig.run());
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("fig10_busy_poll");
  struct Mode {
    const char* name;
    af::BusyPollPolicy policy;
    DurNs budget;
  };
  const std::vector<Mode> modes = {
      {"interrupt (stock)", af::BusyPollPolicy::kInterrupt, 0},
      {"poll 25us", af::BusyPollPolicy::kStatic, 25'000},
      {"poll 50us", af::BusyPollPolicy::kStatic, 50'000},
      {"poll 100us", af::BusyPollPolicy::kStatic, 100'000},
      {"adaptive (AF)", af::BusyPollPolicy::kAdaptive, 0},
  };

  Table t("Fig 10: TCP-10G 128 KiB throughput (MiB/s), 1 client, QD 128");
  t.header({"Mode", "seq write", "seq read"});
  for (const auto& mode : modes) {
    t.row({mode.name, mib(run_one(false, mode.policy, mode.budget)),
           mib(run_one(true, mode.policy, mode.budget))});
  }
  t.print();
  report.add_table(t);

  std::printf(
      "\nPaper shape check: polling beats interrupts; reads peak at 25-50 us\n"
      "and sag at 100 us; the adaptive governor (workload-type base +\n"
      "miss-rate feedback) matches or beats every static budget. Known\n"
      "deviation: the paper's static-write ordering (25 us worst, 100 us\n"
      "best) is not reproduced — see EXPERIMENTS.md.\n");
  return finish_bench(report, argc, argv);
}

// Figure 15: throughput for random mixed workloads at 512 KiB — read-heavy
// (95:5), balanced (50:50), and write-heavy (5:95), single stream/SSD.
#include "bench_report.h"
#include "bench_util.h"

using namespace oaf;
using namespace oaf::bench;

int main(int argc, char** argv) {
  BenchReport report("fig15_random_workloads");
  struct Row {
    const char* name;
    Transport transport;
    RigOptions opts;
  };
  const std::vector<Row> rows = {
      {"NVMe/TCP-10G", Transport::kTcpStock, opts_with_tcp(tcp_10g())},
      {"NVMe/TCP-25G", Transport::kTcpStock, opts_with_tcp(tcp_25g())},
      {"NVMe/TCP-100G", Transport::kTcpStock, opts_with_tcp(tcp_100g())},
      {"NVMe/RDMA-56G", Transport::kRdma, RigOptions{}},
      {"NVMe/RoCE-100G", Transport::kRoce, RigOptions{}},
      {"NVMe-oAF", Transport::kAfShm, opts_with_tcp(tcp_25g())},
  };
  const std::vector<std::pair<const char*, double>> mixes = {
      {"95:5 (read-heavy)", 0.95}, {"50:50", 0.5}, {"5:95 (write-heavy)", 0.05}};

  Table t("Fig 15: random 512 KiB mixed workloads, 1 stream: throughput (MiB/s)");
  std::vector<std::string> header{"Transport"};
  for (const auto& [name, frac] : mixes) header.emplace_back(name);
  t.header(header);

  double af_avg = 0;
  double tcp100_avg = 0;
  double rdma_avg = 0;
  for (const auto& row : rows) {
    std::vector<std::string> cells{row.name};
    double sum = 0;
    for (const auto& [name, frac] : mixes) {
      WorkloadSpec spec = paper_defaults().with_io(512 * kKiB).with_mix(frac, false);
      spec.working_set_bytes = 4 * kGiB;
      const auto stats = run_streams(row.transport, 1, spec, row.opts);
      const double bw = Rig::aggregate_mib_s(stats);
      sum += bw;
      cells.push_back(mib(bw));
    }
    t.row(cells);
    const double avg = sum / static_cast<double>(mixes.size());
    if (row.transport == Transport::kAfShm) af_avg = avg;
    if (row.transport == Transport::kRdma) rdma_avg = avg;
    if (row.transport == Transport::kTcpStock && row.opts.tcp.link_gbps == 100.0) {
      tcp100_avg = avg;
    }
  }
  t.print();
  report.add_table(t);

  std::printf(
      "\nAverages across mixes (paper: oAF = 2.33x TCP-100G; oAF within\n"
      "5-13.5%% of RDMA-56G):\n");
  std::printf("  measured oAF/TCP-100G = %.2fx\n", af_avg / tcp100_avg);
  std::printf("  measured oAF vs RDMA-56G = %+.1f%%\n",
              100.0 * (af_avg - rdma_avg) / rdma_avg);
  return finish_bench(report, argc, argv);
}

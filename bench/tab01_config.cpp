// Table 1: experiment configuration — the paper's testbed table plus the
// model substitutions this reproduction uses for each hardware component.
#include "bench/calibration.h"

#include "bench_report.h"
#include "common/table.h"

using namespace oaf;
using namespace oaf::bench;

int main(int argc, char** argv) {
  BenchReport report("tab01_config");
  Table paper("Table 1: experiment configuration (paper testbeds)");
  paper.header({"", "Physical node", "Client VM", "Target VM"});
  paper.row({"Processor",
             "CC: Xeon E5-2670v3 2.3GHz / CL: EPYC 7402P 2.8GHz", "", ""});
  paper.row({"CPU(s)", "48", "14", "14"});
  paper.row({"NUMA(s)", "2", "1", "1"});
  paper.row({"DRAM", "128GB", "16GB", "16GB"});
  paper.row({"Interconnects",
             "10GbE (CC), FDR 56G IB (CC), 25/100GbE CX-5 (CL)", "SR-IOV VF",
             "SR-IOV VF"});
  paper.row({"Scale", "up to 4 nodes", "", ""});
  paper.print();
  report.add_table(paper);

  Table model("Reproduction substitutions (calibrated models)");
  model.header({"Paper component", "This repo", "Key parameters"});
  const auto t10 = tcp_10g();
  const auto t100 = tcp_100g();
  const auto ib = rdma_56g();
  const auto shm = host_shm();
  const auto dev = emulated_ssd();
  model.row({"TCP 10/25GbE (IPoIB on CC Xeon)", "SimTcpLink model",
             "per-PDU " + Table::num(ns_to_us(t10.per_pdu_overhead_ns), 0) +
                 "us, stack " + Table::num(t10.stack_bytes_per_sec / 1e9, 1) +
                 " GB/s/conn, node " +
                 Table::num(t10.node_stack_bytes_per_sec / 1e9, 1) + " GB/s"});
  model.row({"TCP 100GbE (CL EPYC)", "SimTcpLink model",
             "per-PDU " + Table::num(ns_to_us(t100.per_pdu_overhead_ns), 0) +
                 "us, stack " + Table::num(t100.stack_bytes_per_sec / 1e9, 1) +
                 " GB/s/conn, node " +
                 Table::num(t100.node_stack_bytes_per_sec / 1e9, 1) + " GB/s"});
  model.row({"FDR 56G InfiniBand (SR-IOV)", "SimRdmaLink model",
             "eff " + Table::num(ib.link_efficiency, 2) + ", reg miss " +
                 Table::num(ns_to_us(ib.reg_cost_mean_ns), 0) + "us mean"});
  model.row({"IVSHMEM between VMs", "POSIX shm + SimMemoryBus",
             "stream " + Table::num(shm.memcpy_bytes_per_sec / 1e9, 1) +
                 " GB/s, node " +
                 Table::num(shm.node_mem_bytes_per_sec / 1e9, 1) + " GB/s"});
  model.row({"QEMU-emulated NVMe SSD", "SimDevice model",
             "read " + Table::num(ns_to_us(dev.read_base_ns), 0) + "us + " +
                 Table::num(dev.read_bytes_per_sec / 1e9, 1) +
                 " GB/s, caps R" +
                 Table::num(dev.max_read_bytes_per_sec / 1e9, 1) + "/W" +
                 Table::num(dev.max_write_bytes_per_sec / 1e9, 1) + " GB/s"});
  model.row({"Intel SPDK v20.07", "oaf::nvmf target + initiator",
             "polled, lockless per queue pair"});
  model.row({"h5bench v1.0 / HDF5 v1.12", "oaf::h5 + oaf::h5bench",
             "VOL-intercepted contiguous 1-D datasets"});
  model.row({"NFS (async mount)", "oaf::nfs model",
             "write-behind page cache + chunked RPC"});
  model.print();
  report.add_table(model);
  return finish_bench(report, argc, argv);
}

// Figure 17: h5bench config-2 — 8 datasets of 8M particles, whose
// interleaved small transfers favour NFS's page-cache buffering over a
// fabric that waits for the SSD — until the application-agnostic I/O
// coalescing is added (paper: with coalescing oAF reaches 6x/7x NFS).
#include "bench_report.h"
#include "h5_util.h"

using namespace oaf;
using namespace oaf::bench;

int main(int argc, char** argv) {
  BenchReport report("fig17_h5bench_config2");
  const h5bench::BenchConfig cfg = h5bench::BenchConfig::config2();

  const H5KernelResult nfs = run_h5bench_nfs(cfg);
  const H5KernelResult af_plain = run_h5bench_fabric(
      Transport::kAfShm, cfg, /*coalesce=*/false, opts_with_tcp(tcp_25g()));
  const H5KernelResult af_co = run_h5bench_fabric(
      Transport::kAfShm, cfg, /*coalesce=*/true, opts_with_tcp(tcp_25g()));

  Table t("Fig 17: h5bench config-2 (8 datasets x 8M particles), MiB/s");
  t.header({"System", "write BW", "read BW"});
  t.row({"NFS (async, 25G)", mib(nfs.write_mib_s), mib(nfs.read_mib_s)});
  t.row({"NVMe-oAF (SHM-0-copy)", mib(af_plain.write_mib_s),
         mib(af_plain.read_mib_s)});
  t.row({"NVMe-oAF + I/O coalescing", mib(af_co.write_mib_s),
         mib(af_co.read_mib_s)});
  t.print();
  report.add_table(t);

  std::printf(
      "\nRatios vs NFS (paper: plain oAF 0.53x write / 0.41x read;\n"
      "with coalescing 6x write / 7x read):\n"
      "  plain     write %.2fx, read %.2fx\n"
      "  coalesced write %.2fx, read %.2fx\n",
      af_plain.write_mib_s / nfs.write_mib_s,
      af_plain.read_mib_s / nfs.read_mib_s,
      af_co.write_mib_s / nfs.write_mib_s, af_co.read_mib_s / nfs.read_mib_s);
  return finish_bench(report, argc, argv);
}

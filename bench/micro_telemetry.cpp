// Telemetry overhead guard: the cost of every hot-path instrumentation
// primitive, and of the same code with telemetry disabled. The contract
// (DESIGN.md §9): a disabled tracer record is one relaxed load, a counter
// bump is one relaxed fetch_add, and an OAF_TEL site compiled out is free —
// so a telemetry-off build must stay within noise of the seed.
#include <benchmark/benchmark.h>

#include "telemetry/attribution.h"
#include "telemetry/prof/alloc_ledger.h"
#include "telemetry/prof/cost_center.h"
#include "telemetry/telemetry.h"

namespace {

using namespace oaf;

// --------------------------------------------------------------------------
// Baseline: the un-instrumented loop body the guards compare against.
// --------------------------------------------------------------------------
void BM_Baseline(benchmark::State& state) {
  u64 x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(++x);
  }
}
BENCHMARK(BM_Baseline);

void BM_CounterInc(benchmark::State& state) {
  telemetry::MetricsRegistry reg;
  telemetry::Counter* c = reg.counter("bench_total", "bench");
  for (auto _ : state) {
    c->inc();
  }
  benchmark::DoNotOptimize(c->value());
}
BENCHMARK(BM_CounterInc);

void BM_CounterBumpNullSafe(benchmark::State& state) {
  // The cached-handle path used by instrumented components.
  telemetry::MetricsRegistry reg;
  telemetry::Counter* c = reg.counter("bench_total", "bench");
  for (auto _ : state) {
    telemetry::bump(c);
  }
  benchmark::DoNotOptimize(c->value());
}
BENCHMARK(BM_CounterBumpNullSafe);

void BM_GaugeSet(benchmark::State& state) {
  telemetry::MetricsRegistry reg;
  telemetry::Gauge* g = reg.gauge("bench_gauge", "bench");
  i64 v = 0;
  for (auto _ : state) {
    g->set(v++);
  }
  benchmark::DoNotOptimize(g->value());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramRecord(benchmark::State& state) {
  telemetry::MetricsRegistry reg;
  telemetry::HistogramMetric* h = reg.histogram("bench_hist", "bench");
  i64 v = 0;
  for (auto _ : state) {
    h->record(v++ & 0xFFFFF);
  }
}
BENCHMARK(BM_HistogramRecord);

// --------------------------------------------------------------------------
// Tracer: the disabled path is the one every production I/O pays when
// tracing is off at runtime — it must price like a single relaxed load.
// --------------------------------------------------------------------------
void BM_TracerRecordDisabled(benchmark::State& state) {
  telemetry::TraceRecorder rec(1 << 10);
  TimeNs now = 0;
  for (auto _ : state) {
    rec.instant(1, "bench", "ev", 0, now++);
  }
  benchmark::DoNotOptimize(rec.size());
}
BENCHMARK(BM_TracerRecordDisabled);

void BM_TracerRecordEnabled(benchmark::State& state) {
  telemetry::TraceRecorder rec(1 << 10);
  rec.set_enabled(true);
  TimeNs now = 0;
  for (auto _ : state) {
    rec.instant(1, "bench", "ev", 0, now++);
  }
  benchmark::DoNotOptimize(rec.size());
}
BENCHMARK(BM_TracerRecordEnabled);

void BM_TracerCompleteSpanEnabled(benchmark::State& state) {
  telemetry::TraceRecorder rec(1 << 10);
  rec.set_enabled(true);
  TimeNs now = 0;
  for (auto _ : state) {
    rec.complete(1, "bench", "span", 7, now, 100, "bytes", 4096);
    now += 200;
  }
  benchmark::DoNotOptimize(rec.size());
}
BENCHMARK(BM_TracerCompleteSpanEnabled);

// --------------------------------------------------------------------------
// The macro itself. With OAF_TELEMETRY=ON this is the counter bump; with
// OAF_TELEMETRY=OFF the loop must measure the same as BM_Baseline — that
// equality is the compile-out guarantee the acceptance criterion checks.
// --------------------------------------------------------------------------
void BM_OafTelSite(benchmark::State& state) {
  telemetry::Counter* c =
      telemetry::metrics().counter("bench_macro_total", "bench");
  u64 x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(++x);
    OAF_TEL(telemetry::bump(c));
  }
}
BENCHMARK(BM_OafTelSite);

// --------------------------------------------------------------------------
// Attribution (DESIGN.md §13). Ledger stamping is plain arithmetic on
// caller-owned state, and a disabled record() is one relaxed load — the
// watchdog has to be cheap enough to leave compiled in on every data path.
// CI gates the enabled/disabled ratio through bench_compare (the
// observability job transforms these cases into an oaf-bench-v1 document).
// --------------------------------------------------------------------------
void BM_AttributionLedgerStamp(benchmark::State& state) {
  // One full I/O lifecycle: reset → two transitions → finalize carve.
  telemetry::StageLedger ledger;
  TimeNs now = 0;
  for (auto _ : state) {
    ledger.reset(now);
    ledger.enter(telemetry::Stage::kEncode, now + 100);
    ledger.enter(telemetry::Stage::kGrant, now + 250);
    ledger.finalize(now + 1000, /*device_ns=*/400, /*target_ns=*/100);
    now += 1000;
  }
  benchmark::DoNotOptimize(ledger.total_ns());
}
BENCHMARK(BM_AttributionLedgerStamp);

void BM_AttributionRecordDisabled(benchmark::State& state) {
  telemetry::Attribution attr;  // never configured: enabled() stays false
  telemetry::StageLedger ledger;
  ledger.reset(0);
  ledger.finalize(1000, 400, 100);
  TimeNs now = 0;
  bool breached = false;
  for (auto _ : state) {
    breached |=
        attr.record(telemetry::OpClass::kRead, ledger, 1000, 7, now++);
  }
  benchmark::DoNotOptimize(breached);
}
BENCHMARK(BM_AttributionRecordDisabled);

void BM_AttributionRecordEnabled(benchmark::State& state) {
  telemetry::Attribution attr;
  telemetry::AttributionOptions opts;
  opts.slo_read_ns = 10'000;  // armed but never breached by the 1 µs I/O
  attr.configure(opts);
  telemetry::StageLedger ledger;
  ledger.reset(0);
  ledger.finalize(1000, 400, 100);
  TimeNs now = 0;
  bool breached = false;
  for (auto _ : state) {
    breached |=
        attr.record(telemetry::OpClass::kRead, ledger, 1000, 7, now++);
  }
  benchmark::DoNotOptimize(breached);
}
BENCHMARK(BM_AttributionRecordEnabled);

// --------------------------------------------------------------------------
// Profiling plane (DESIGN.md §15): the hot-path cost of cost accounting
// itself. Disarmed CostScope must be two TLS stores + one relaxed load;
// armed adds two rdtsc reads + relaxed adds.
// --------------------------------------------------------------------------
void BM_CostScopeDisabled(benchmark::State& state) {
  telemetry::prof::cycle_ledger().set_enabled(false);
  for (auto _ : state) {
    telemetry::prof::CostScope scope(telemetry::prof::CostCenter::kSubmit);
    benchmark::DoNotOptimize(scope);
  }
}
BENCHMARK(BM_CostScopeDisabled);

void BM_CostScopeEnabled(benchmark::State& state) {
  telemetry::prof::cycle_ledger().set_enabled(true);
  for (auto _ : state) {
    telemetry::prof::CostScope scope(telemetry::prof::CostCenter::kSubmit);
    benchmark::DoNotOptimize(scope);
  }
  telemetry::prof::cycle_ledger().set_enabled(false);
  telemetry::prof::cycle_ledger().reset_for_test();
}
BENCHMARK(BM_CostScopeEnabled);

void BM_CostScopeEnabledNested(benchmark::State& state) {
  telemetry::prof::cycle_ledger().set_enabled(true);
  for (auto _ : state) {
    telemetry::prof::CostScope outer(telemetry::prof::CostCenter::kSubmit);
    telemetry::prof::CostScope inner(telemetry::prof::CostCenter::kEncode);
    benchmark::DoNotOptimize(inner);
  }
  telemetry::prof::cycle_ledger().set_enabled(false);
  telemetry::prof::cycle_ledger().reset_for_test();
}
BENCHMARK(BM_CostScopeEnabledNested);

void BM_AllocLedgerRecord(benchmark::State& state) {
  // The fixed cost the interposer adds to every malloc: a TLS read and two
  // relaxed fetch_adds. (The interposer itself is measured implicitly by
  // every other benchmark in an OAF_PROF build.)
  auto& ledger = telemetry::prof::alloc_ledger();
  for (auto _ : state) {
    ledger.record_alloc(64);
    ledger.record_free();
  }
  ledger.reset_for_test();
}
BENCHMARK(BM_AllocLedgerRecord);

}  // namespace

BENCHMARK_MAIN();

// Bench failover: the multipath regression anchor (DESIGN.md §11).
//
// A deterministic virtual-time session — one shm path plus two TCP spares
// into one target service over pipe channels — measured twice per selector
// policy: a steady-state run, and a run where the shm path is killed
// mid-burst and the group re-drives its in-flight I/Os on the survivors.
// The interesting numbers are the p99 across the failover (how much tail
// the detour costs) and the failure count, which must be zero: losing any
// one of three paths may slow the workload, never break it. Its --json
// output is committed as bench/BENCH_failover.json and gated by
// tools/bench_compare in CI. Refresh the baseline by re-running:
//
//   build/bench/bench_failover --json bench/BENCH_failover.json
#include <memory>
#include <string>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "net/fault_channel.h"
#include "net/pipe_channel.h"
#include "nvmf/path_group.h"
#include "nvmf/path_selector.h"
#include "nvmf/target_service.h"
#include "sim/scheduler.h"
#include "ssd/real_device.h"

using namespace oaf;
using namespace oaf::bench;

namespace {

constexpr u32 kPaths = 3;
constexpr DurNs kDuration = 100 * 1000 * 1000;  // 100 ms virtual
// The kill must land *inside* an I/O burst to displace in-flight commands,
// and in the deterministic virtual-time plane a whole I/O completes within
// one scheduler cascade — a wall-clock timer would always fall between
// bursts. net::FaultChannel::kill_at(n) cuts the cable on the nth PDU
// instead: mid-write, mid-burst, at the same point in the stream every run.
constexpr u64 kKillAtPdu = 5000;

struct FailoverRun {
  RunStats stats;
  u64 failovers = 0;
  u64 redrives = 0;
  u64 duplicates = 0;
};

/// One virtual-time session: 3-path group against a single target service,
/// optionally killing the shm path halfway through the measured window.
FailoverRun run_session(const std::string& selector, bool kill) {
  sim::Scheduler sched;
  net::InlineCopier copier;
  af::ShmBroker broker(kPaths);
  ssd::RealDevice device(sched, 512, 1 << 19);
  ssd::Subsystem subsystem("nqn.bench.failover");
  (void)subsystem.add_namespace(1, &device);
  nvmf::TargetServiceOptions sopts;
  sopts.af = af::AfConfig::oaf();
  nvmf::NvmfTargetService service(sched, copier, broker, subsystem, sopts);

  nvmf::PathGroupOptions gopts;
  gopts.name = "bench";
  nvmf::PathGroup group(sched, std::move(gopts),
                        nvmf::make_selector(selector));
  for (u32 i = 0; i < kPaths; ++i) {
    nvmf::InitiatorOptions iopts;
    iopts.af = i == 0 ? af::AfConfig::oaf() : af::AfConfig::stock_tcp();
    iopts.queue_depth = 32;
    iopts.connection_name = "bench.p" + std::to_string(i);
    // Legacy teardown on fault: the killed path dies for good and the run
    // exercises the group's re-drive, not the path's own reconnect. The
    // command deadline is what turns the dead path's orphans into
    // re-drivable failures.
    iopts.reconnect.max_attempts = 0;
    iopts.command_timeout_ns = 5'000'000;
    group.add_path(std::make_unique<nvmf::NvmfInitiator>(
        sched,
        [&sched, &service, i, kill]() -> std::unique_ptr<net::MsgChannel> {
          auto [c, t] = net::make_pipe_channel_pair(sched, sched);
          service.accept(std::move(t), "bench.p" + std::to_string(i));
          auto faulted = std::make_unique<net::FaultChannel>(std::move(c));
          if (kill && i == 0) faulted->kill_at(kKillAtPdu);
          return faulted;
        },
        copier, broker, iopts));
  }
  group.connect([](Status) {});
  sched.run();

  WorkloadSpec spec;
  spec.io_bytes = 64 * kKiB;
  spec.queue_depth = 32;
  spec.read_fraction = 0.5;
  spec.sequential = true;
  spec.duration = kDuration;
  spec.warmup = kDuration / 10;
  spec.working_set_bytes = 64 * kMiB;

  PerfDriver driver(sched, group, spec);
  FailoverRun out;
  bool done = false;
  driver.run([&](RunStats s) {
    out.stats = std::move(s);
    done = true;
  });
  sched.run();
  if (!done) std::abort();  // the virtual run must always drain
  out.failovers = group.failovers();
  out.redrives = group.redrives();
  out.duplicates = group.duplicates_suppressed();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("bench_failover");
  const std::vector<std::string> selectors = {"round-robin", "queue-depth",
                                              "latency-ewma"};

  Table t("Failover: 3 paths (1 shm + 2 TCP), seq 64 KiB 50:50, QD 32, kill shm path mid-burst");
  t.header({"Selector", "steady p99 (us)", "failover p99 (us)", "MiB/s",
            "failures", "failovers", "redrives", "dup-suppressed"});
  for (const auto& sel : selectors) {
    const FailoverRun steady = run_session(sel, /*kill=*/false);
    const FailoverRun failover = run_session(sel, /*kill=*/true);
    t.row({sel,
           usec(static_cast<double>(steady.stats.latency.p99()) / 1000.0),
           usec(static_cast<double>(failover.stats.latency.p99()) / 1000.0),
           mib(failover.stats.bandwidth_mib_s()),
           std::to_string(steady.stats.failures + failover.stats.failures),
           std::to_string(failover.failovers),
           std::to_string(failover.redrives),
           std::to_string(failover.duplicates)});
  }
  t.print();
  report.add_table(t);
  return finish_bench(report, argc, argv);
}

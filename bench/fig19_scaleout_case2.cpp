// Figure 19: scale-out case-2 — four h5bench clients whose SSDs all live on
// the *same* node (one NIC shared by every TCP stream), with the fraction
// of shm-capable clients swept 0..100%.
#include "bench_report.h"
#include "h5_util.h"

using namespace oaf;
using namespace oaf::bench;

int main(int argc, char** argv) {
  BenchReport report("fig19_scaleout_case2");
  Table t("Fig 19: case-2 (4 clients -> 4 SSDs, same node): aggregate MiB/s");
  t.header({"Mode", "h5bench write", "h5bench read", "write vs SHM(0%)",
            "read vs SHM(0%)"});
  double w0 = 0;
  double r0 = 0;
  for (const int shm_clients : {0, 1, 2, 3, 4}) {
    const auto res = run_scaleout_clients(shm_clients, /*shared_link=*/true);
    if (shm_clients == 0) {
      w0 = res.write_mib_s;
      r0 = res.read_mib_s;
    }
    t.row({"SHM (" + std::to_string(shm_clients * 25) + "%)",
           mib(res.write_mib_s), mib(res.read_mib_s),
           Table::num(res.write_mib_s / w0, 2) + "x",
           Table::num(res.read_mib_s / r0, 2) + "x"});
  }
  t.print();
  report.add_table(t);

  std::printf(
      "\nPaper shape check: SHM(25%%) improves aggregate by ~37%%/66%%\n"
      "(write/read); SHM(100%%) reaches 2.34x/4.55x over all-TCP-25G.\n");
  return finish_bench(report, argc, argv);
}

// Figure 14: concurrency estimation — one NVMe I/O queue pair to a single
// SSD, sequential 128 KiB reads, queue depth swept 1..128. NVMe/TCP and
// NVMe/RoCE flatten once the network/stack saturates (~QD 8); NVMe-oAF's
// lock-free double buffer keeps scaling with depth until the device itself
// is the limit.
#include "bench_report.h"
#include "bench_util.h"

using namespace oaf;
using namespace oaf::bench;

int main(int argc, char** argv) {
  BenchReport report("fig14_concurrency");
  struct Row {
    const char* name;
    Transport transport;
    RigOptions opts;
  };
  const std::vector<Row> rows = {
      {"NVMe/TCP-25G", Transport::kTcpStock, opts_with_tcp(tcp_25g())},
      {"NVMe/RoCE-100G", Transport::kRoce, RigOptions{}},
      {"NVMe-oAF", Transport::kAfShm, opts_with_tcp(tcp_25g())},
  };
  const std::vector<u32> depths = {1, 2, 4, 8, 16, 32, 64, 128};

  Table t("Fig 14: single SSD, seq 128 KiB read bandwidth (MiB/s) vs queue depth");
  std::vector<std::string> header{"Transport"};
  for (const u32 qd : depths) header.push_back("QD" + std::to_string(qd));
  t.header(header);

  std::vector<double> af_curve;
  std::vector<double> tcp_curve;
  for (const auto& row : rows) {
    std::vector<std::string> cells{row.name};
    for (const u32 qd : depths) {
      WorkloadSpec spec = paper_defaults().with_io(128 * kKiB).with_qd(qd);
      const auto stats = run_streams(row.transport, 1, spec, row.opts);
      const double bw = Rig::aggregate_mib_s(stats);
      cells.push_back(mib(bw));
      if (row.transport == Transport::kAfShm) af_curve.push_back(bw);
      if (row.transport == Transport::kTcpStock) tcp_curve.push_back(bw);
    }
    t.row(cells);
  }
  t.print();
  report.add_table(t);

  std::printf(
      "\nPaper shape check: TCP and RoCE ~flat beyond QD 8; oAF keeps\n"
      "scaling (measured oAF QD128/QD8 = %.2fx vs TCP %.2fx).\n",
      af_curve.back() / af_curve[3], tcp_curve.back() / tcp_curve[3]);
  return finish_bench(report, argc, argv);
}

// Figure 3: sequential read/write latency breakdown over the existing
// NVMe-oF transports — the end-to-end average latency decomposed into
// I/O time (device), communication time (fabric), and other
// (client preparation + target processing). Same topology as Fig 2.
#include "bench_report.h"
#include "bench_util.h"

using namespace oaf;
using namespace oaf::bench;

int main(int argc, char** argv) {
  BenchReport report("fig03_latency_breakdown");
  struct Row {
    const char* name;
    Transport transport;
    RigOptions opts;
  };
  const std::vector<Row> rows = {
      {"NVMe/TCP-10G", Transport::kTcpStock, opts_with_tcp(tcp_10g())},
      {"NVMe/TCP-25G", Transport::kTcpStock, opts_with_tcp(tcp_25g())},
      {"NVMe/TCP-100G", Transport::kTcpStock, opts_with_tcp(tcp_100g())},
      {"NVMe/RDMA-56G", Transport::kRdma, RigOptions{}},
  };

  for (const bool is_read : {true, false}) {
    for (const u64 io : {u64{4} * kKiB, u64{128} * kKiB}) {
      Table t("Fig 3: " + std::string(is_read ? "read" : "write") + " " +
              std::to_string(io / kKiB) +
              " KiB latency breakdown, 4 apps <-> 4 SSDs (us)");
      t.header({"Transport", "I/O time", "comm time", "other", "total",
                "comm %"});
      for (const auto& row : rows) {
        WorkloadSpec spec = paper_defaults().with_io(io).with_mix(
            is_read ? 1.0 : 0.0, true);
        const auto stats = run_streams(row.transport, 4, spec, row.opts);
        const LatencyParts mean = merged_breakdown(stats).mean();
        const double total = static_cast<double>(mean.total());
        t.row({row.name, usec(ns_to_us(mean.io)), usec(ns_to_us(mean.comm)),
               usec(ns_to_us(mean.other)), usec(ns_to_us(mean.total())),
               Table::num(total > 0 ? 100.0 * static_cast<double>(mean.comm) /
                                          total
                                    : 0.0,
                          0) + "%"});
      }
      t.print();
      report.add_table(t);
    }
  }

  std::printf(
      "\nPaper shape check: communication time dominates NVMe/TCP; write\n"
      "\"other\" exceeds read \"other\" (client buffer fill + copy-out); at\n"
      "4 KiB the I/O time is the NVMe/RDMA bottleneck, and at 128 KiB RDMA's\n"
      "comm:I/O ratio approaches ~1:1.1.\n");
  return finish_bench(report, argc, argv);
}

// Figure 9: finding the optimal application-level chunk size for NVMe/TCP
// over 25 Gbps — random reads at several I/O sizes while sweeping the chunk
// size, plus the target memory the chunk pool pins (the reason 512 KiB is
// "ideal": near-peak bandwidth at a fraction of 2 MiB's memory bill).
#include "af/buffer_manager.h"
#include "bench_report.h"
#include "bench_util.h"

using namespace oaf;
using namespace oaf::bench;

int main(int argc, char** argv) {
  BenchReport report("fig09_chunk_size");
  const RigOptions opts = opts_with_tcp(tcp_25g());
  const std::vector<u64> chunks = {64 * kKiB, 128 * kKiB, 256 * kKiB,
                                   512 * kKiB, 1 * kMiB, 2 * kMiB};
  const std::vector<u64> ios = {128 * kKiB, 512 * kKiB, 1 * kMiB, 2 * kMiB};

  Table t("Fig 9: NVMe/TCP-25G random read bandwidth (MiB/s) vs chunk size");
  std::vector<std::string> header{"Chunk"};
  for (const u64 io : ios) header.push_back(std::to_string(io / kKiB) + "KiB IO");
  header.push_back("pool memory (MiB)");
  t.header(header);

  for (const u64 chunk : chunks) {
    std::vector<std::string> row{std::to_string(chunk / kKiB) + "KiB"};
    for (const u64 io : ios) {
      WorkloadSpec spec = paper_defaults().with_io(io).with_mix(1.0, false);
      spec.working_set_bytes = 4 * kGiB;

      sim::Scheduler sched;
      af::AfConfig cfg = af::AfConfig::stock_tcp();
      cfg.chunk_bytes = chunk;
      Rig rig(sched, opts, {StreamSpec{Transport::kTcpStock, spec, cfg}});
      const auto stats = rig.run();
      row.push_back(mib(Rig::aggregate_mib_s(stats)));
    }
    // Buffer Manager pool: one chunk-sized staging buffer per queue slot.
    af::BufferManager mgr(chunk, 128);
    row.push_back(Table::num(
        static_cast<double>(mgr.pinned_bytes()) / static_cast<double>(kMiB), 0));
    t.row(row);
  }
  t.print();
  report.add_table(t);

  std::printf(
      "\nPaper shape check: small chunks hurt bandwidth (per-PDU overhead);\n"
      "512 KiB reaches ~peak for every stream while pinning 4x less memory\n"
      "than 2 MiB — the adaptive choice for this fabric.\n");
  return finish_bench(report, argc, argv);
}

// Bench smoke: the CI regression anchor.
//
// A deliberately small, fully deterministic run (virtual-time simulation,
// fixed seeds) covering the three transport families the paper compares —
// stock NVMe/TCP, AF's optimized TCP, and full NVMe-oAF over shm — at one
// representative workload. Its --json output is committed as
// bench/BENCH_smoke.json; the CI observability job re-runs this binary and
// gates on tools/bench_compare against the committed baseline, so a change
// that silently shifts simulated throughput or latency fails the build
// instead of landing unnoticed. Refresh the baseline by re-running:
//
//   build/bench/bench_smoke --json bench/BENCH_smoke.json
//
// --attribution arms the tail-latency attribution plane (DESIGN.md §13)
// for the whole run. Metrics are virtual-time, so the output must be
// byte-identical to an unarmed run — CI compares an armed fresh run
// against the committed (unarmed) baseline to prove the watchdog never
// perturbs the data path it observes.
#include <cstring>

#include "bench_report.h"
#include "bench_util.h"
#include "telemetry/attribution.h"

using namespace oaf;
using namespace oaf::bench;

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--attribution") == 0) {
      telemetry::AttributionOptions aopts;
      aopts.slo_read_ns = 1;  // every I/O breaches: worst-case record path
      aopts.slo_write_ns = 1;
      telemetry::attribution().configure(aopts);
    }
  }
  BenchReport report("bench_smoke");
  struct Row {
    const char* name;
    Transport transport;
  };
  const std::vector<Row> rows = {
      {"NVMe/TCP-25G", Transport::kTcpStock},
      {"AF-TCP-25G", Transport::kAfTcpOnly},
      {"NVMe-oAF", Transport::kAfShm},
  };

  // Short virtual run: rates stabilize well inside 100 ms of simulated time,
  // and the whole binary finishes in a few wall seconds.
  WorkloadSpec spec = paper_defaults().with_io(128 * kKiB).with_mix(0.7, true);
  spec.duration = 100 * 1000 * 1000;
  spec.warmup = 10 * 1000 * 1000;

  Table t("Bench smoke: seq 128 KiB 70:30 read-write, 1 stream, QD 128");
  t.header({"Transport", "MiB/s", "p50 (us)", "p99 (us)", "IOs"});
  for (const auto& row : rows) {
    const auto stats = run_streams(row.transport, 1, spec,
                                   opts_with_tcp(tcp_25g()));
    const Histogram lat = merged_latency(stats);
    t.row({row.name, mib(Rig::aggregate_mib_s(stats)),
           usec(static_cast<double>(lat.p50()) / 1000.0),
           usec(static_cast<double>(lat.p99()) / 1000.0),
           std::to_string(lat.count())});
  }
  t.print();
  report.add_table(t);
  return finish_bench(report, argc, argv);
}

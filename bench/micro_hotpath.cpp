// Micro hot-path cost accounting: cycles/IO and allocs/IO per transport.
//
// Runs the bench_smoke workload shape through the three transport families
// and reads the profiling plane (DESIGN.md §15) after each run:
//
//   * allocs/IO, frees/IO, alloc bytes/IO — from the allocation ledger.
//     The run is a fixed-seed virtual-time simulation, so the allocation
//     SEQUENCE is deterministic: the same binary must produce the same
//     counts every run. These cells are pure numbers and therefore land in
//     the gated "metrics" map; CI compares them against the committed
//     bench/BENCH_hotpath.json, so a change that adds an allocation to the
//     per-I/O path fails the profiling job instead of landing unnoticed.
//     Counts are zero unless the interposer is linked (-DOAF_PROF=ON) — the
//     committed baseline comes from an OAF_PROF build:
//
//       build/bench/micro_hotpath --json bench/BENCH_hotpath.json
//
//   * cycles/IO by cost center — from the cycle ledger. TSC readings are
//     wall-clock dependent (CPU model, frequency, noise), so these cells
//     carry a " cyc" suffix: informational in the table, never gated.
#include <string>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "telemetry/prof/alloc_ledger.h"
#include "telemetry/prof/cost_center.h"

using namespace oaf;
using namespace oaf::bench;

namespace {

std::string per_io(u64 total, u64 ios, int prec = 2) {
  if (ios == 0) return Table::num(0.0, prec);
  return Table::num(static_cast<double>(total) / static_cast<double>(ios),
                    prec);
}

std::string cyc(u64 total, u64 ios) {
  if (ios == 0) return "0 cyc";
  return Table::num(static_cast<double>(total) / static_cast<double>(ios), 0) +
         " cyc";
}

}  // namespace

int main(int argc, char** argv) {
  namespace prof = telemetry::prof;
  BenchReport report("micro_hotpath");
  struct Row {
    const char* name;
    Transport transport;
  };
  const std::vector<Row> rows = {
      {"NVMe/TCP-25G", Transport::kTcpStock},
      {"AF-TCP-25G", Transport::kAfTcpOnly},
      {"NVMe-oAF", Transport::kAfShm},
  };

  WorkloadSpec spec = paper_defaults().with_io(128 * kKiB).with_mix(0.7, true);
  spec.duration = 100 * 1000 * 1000;  // 100 ms virtual; wall-fast
  spec.warmup = 10 * 1000 * 1000;

  if (!prof::interposer_active()) {
    std::fprintf(stderr,
                 "micro_hotpath: allocation interposer not linked "
                 "(build with -DOAF_PROF=ON); alloc columns will be 0\n");
  }
  prof::cycle_ledger().set_enabled(true);

  Table alloc_t("Hot-path allocations: seq 128 KiB 70:30, 1 stream, QD 128");
  alloc_t.header({"Transport", "allocs/IO", "frees/IO", "alloc B/IO", "IOs"});
  Table cyc_t("Hot-path cycles (informational; wall-clock dependent)");
  cyc_t.header({"Transport", "cycles/IO", "submit", "encode", "xfer",
                "target", "complete"});

  for (const auto& row : rows) {
    // Warmup run: first-touch allocations (lazy pools, registry handles,
    // hash-map rehashes) belong to process setup, not the steady-state
    // per-I/O cost this bench gates.
    (void)run_streams(row.transport, 1, spec, opts_with_tcp(tcp_25g()));

    prof::alloc_ledger().reset_for_test();
    prof::cycle_ledger().reset_for_test();
    prof::cycle_ledger().set_enabled(true);
    const auto stats = run_streams(row.transport, 1, spec,
                                   opts_with_tcp(tcp_25g()));

    u64 ios = 0;
    for (const auto& s : stats) ios += s.ios_completed;
    const auto allocs = prof::alloc_ledger().snapshot();
    const u64 total_allocs = allocs.total.allocs;
    const u64 total_frees = allocs.total.frees;
    const u64 total_bytes = allocs.total.bytes;
    const auto cycles = prof::cycle_ledger().snapshot();
    auto center_cycles = [&](prof::CostCenter c) {
      return cycles.cycles[static_cast<u32>(c)];
    };
    u64 hot = 0;
    for (u32 i = 0; i < prof::kCostCenterCount; ++i) {
      if (i == static_cast<u32>(prof::CostCenter::kReactor) ||
          i == static_cast<u32>(prof::CostCenter::kIdle)) {
        continue;
      }
      hot += cycles.cycles[i];
    }

    alloc_t.row({row.name, per_io(total_allocs, ios), per_io(total_frees, ios),
                 per_io(total_bytes, ios, 1), std::to_string(ios)});
    cyc_t.row({row.name, cyc(hot, ios),
               cyc(center_cycles(prof::CostCenter::kSubmit), ios),
               cyc(center_cycles(prof::CostCenter::kEncode), ios),
               cyc(center_cycles(prof::CostCenter::kXfer), ios),
               cyc(center_cycles(prof::CostCenter::kTarget), ios),
               cyc(center_cycles(prof::CostCenter::kComplete), ios)});
  }

  alloc_t.print();
  cyc_t.print();
  report.add_table(alloc_t);
  report.add_table(cyc_t);
  report.add_metric("interposer_active",
                    prof::interposer_active() ? 1.0 : 0.0);
  return finish_bench(report, argc, argv);
}

// Bench overload: the backpressure regression anchor (DESIGN.md §12).
//
// A deterministic virtual-time session — one initiator driving a target
// whose admitted queue depth and staging budget are far below the offered
// load — measured against an uncapped baseline. The interesting numbers are
// what graceful degradation costs (p99 and bandwidth under steady
// kQueueFull churn) and the failure count, which must be zero: overload
// slows a client down, it never surfaces as an error. Both shed policies
// run so a regression in either victim-selection path shows up. Its --json
// output is committed as bench/BENCH_overload.json and gated by
// tools/bench_compare in CI. Refresh the baseline by re-running:
//
//   build/bench/bench_overload --json bench/BENCH_overload.json
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "net/pipe_channel.h"
#include "nvmf/initiator.h"
#include "nvmf/target_service.h"
#include "sim/scheduler.h"
#include "ssd/sim_device.h"

using namespace oaf;
using namespace oaf::bench;

namespace {

constexpr DurNs kDuration = 50 * 1000 * 1000;  // 50 ms virtual

struct OverloadRun {
  RunStats stats;
  u64 queue_full_rejects = 0;
  u64 queue_full_retries = 0;
  u64 congestion_defers = 0;
  u64 staging_peak = 0;
  u64 staging_capacity = 0;
};

/// One virtual-time session: a QD-32 write storm against a target admitting
/// only 8 commands / 64 KiB of staging (or uncapped for the baseline row).
OverloadRun run_session(bool capped, const std::string& shed_policy) {
  sim::Scheduler sched;
  net::InlineCopier copier;
  af::ShmBroker broker(1);
  // A latency-modeling device so commands genuinely accumulate in flight:
  // with the instant functional-plane device every write completes inside
  // one scheduler cascade and no budget ever fills.
  ssd::SimDeviceParams dparams;
  dparams.num_blocks = 1 << 19;
  ssd::SimDevice device(sched, dparams);
  ssd::Subsystem subsystem("nqn.bench.overload");
  (void)subsystem.add_namespace(1, &device);

  nvmf::TargetServiceOptions sopts;
  sopts.af = af::AfConfig::oaf();
  if (capped) {
    sopts.max_inflight_cmds = 8;
    sopts.global_staging_bytes = 64 * kKiB;
    sopts.shed_watermark = 0.9;
    sopts.shed_policy = nvmf::parse_shed_policy(shed_policy);
  }
  nvmf::NvmfTargetService service(sched, copier, broker, subsystem, sopts);

  nvmf::InitiatorOptions iopts;
  // Stock TCP keeps the driver on the staged-write path, where kQueueFull
  // is absorbed by the in-place retry ladder; zero-copy producers instead
  // throttle on congested() and see the reject (bench_smoke covers them).
  iopts.af = af::AfConfig::stock_tcp();
  iopts.queue_depth = 32;
  iopts.connection_name = "bench.overload";
  iopts.reconnect.max_attempts = 5;
  iopts.reconnect.initial_backoff_ns = 1'000'000;
  iopts.reconnect.max_command_retries = 128;
  nvmf::NvmfInitiator initiator(
      sched,
      [&sched, &service]() -> std::unique_ptr<net::MsgChannel> {
        auto [c, t] = net::make_pipe_channel_pair(sched, sched);
        service.accept(std::move(t), "bench.overload");
        return std::move(c);
      },
      copier, broker, iopts);
  initiator.connect([](Status) {});
  sched.run();

  WorkloadSpec spec;
  spec.io_bytes = 4 * kKiB;
  spec.queue_depth = 32;
  spec.read_fraction = 0.0;  // writes stage bytes: the budget-bound path
  spec.sequential = true;
  spec.duration = kDuration;
  spec.warmup = kDuration / 10;
  spec.working_set_bytes = 64 * kMiB;

  PerfDriver driver(sched, initiator, spec);
  OverloadRun out;
  bool done = false;
  // The overload tick (shed ladder) runs every 1 ms of virtual time, as
  // oaf_target's serve loop would run it.
  std::function<void()> tick = [&] {
    service.overload_tick();
    if (!done) sched.schedule_after(1'000'000, tick);
  };
  sched.schedule_after(1'000'000, tick);
  driver.run([&](RunStats s) {
    out.stats = std::move(s);
    done = true;
  });
  sched.run();
  if (!done) std::abort();  // the virtual run must always drain
  out.queue_full_rejects = service.queue_full_rejects();
  out.queue_full_retries = initiator.resilience().queue_full_retries;
  out.congestion_defers = driver.congestion_defers();
  out.staging_peak = service.global_staging().peak();
  out.staging_capacity = service.global_staging().capacity();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("bench_overload");

  Table t("Overload: seq 4 KiB writes, QD 32 vs 8 admitted / 64 KiB staging");
  t.header({"Config", "p99 (us)", "MiB/s", "failures", "qfull-rejects",
            "qfull-retries", "defers", "staging peak (KiB)"});
  struct Row {
    const char* label;
    bool capped;
    const char* policy;
  };
  const std::vector<Row> rows = {{"uncapped", false, "oldest"},
                                 {"capped oldest-first", true, "oldest"},
                                 {"capped fair", true, "fair"}};
  for (const Row& row : rows) {
    const OverloadRun r = run_session(row.capped, row.policy);
    t.row({row.label,
           usec(static_cast<double>(r.stats.latency.p99()) / 1000.0),
           mib(r.stats.bandwidth_mib_s()),
           std::to_string(r.stats.failures),
           std::to_string(r.queue_full_rejects),
           std::to_string(r.queue_full_retries),
           std::to_string(r.congestion_defers),
           std::to_string(r.staging_peak / kKiB)});
  }
  t.print();
  report.add_table(t);
  return finish_bench(report, argc, argv);
}

// Shared helpers for the figure benches: every binary regenerates one table
// or figure of the paper and prints the same rows/series it reports.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench/rig.h"
#include "common/table.h"

namespace oaf::bench {

/// Paper workload defaults (§5.1): queue depth 128 unless a figure varies
/// it; the virtual run time is shortened from the paper's 20 s to keep the
/// deterministic simulation quick — throughputs are rate-stable well before
/// that (see EXPERIMENTS.md).
inline WorkloadSpec paper_defaults() {
  WorkloadSpec spec;
  spec.queue_depth = 128;
  spec.duration = 400 * 1000 * 1000;  // 400 ms virtual
  spec.warmup = 50 * 1000 * 1000;
  spec.working_set_bytes = 1 * kGiB;
  return spec;
}

/// Run `streams` identical workloads (distinct seeds) over `transport`.
inline std::vector<RunStats> run_streams(Transport transport, int streams,
                                         const WorkloadSpec& spec,
                                         const RigOptions& opts = RigOptions{}) {
  sim::Scheduler sched;
  std::vector<StreamSpec> specs;
  specs.reserve(static_cast<size_t>(streams));
  for (int i = 0; i < streams; ++i) {
    WorkloadSpec s = spec;
    s.seed = spec.seed + static_cast<u64>(i) * 7919;
    specs.push_back({transport, s, std::nullopt});
  }
  Rig rig(sched, opts, std::move(specs));
  return rig.run();
}

inline RigOptions opts_with_tcp(const net::TcpFabricParams& tcp) {
  RigOptions opts;
  opts.tcp = tcp;
  return opts;
}

/// Merge per-stream latency histograms.
inline Histogram merged_latency(const std::vector<RunStats>& stats) {
  Histogram h;
  for (const auto& s : stats) h.merge(s.latency);
  return h;
}

/// Merge per-stream breakdown accounting.
inline BreakdownStats merged_breakdown(const std::vector<RunStats>& stats) {
  BreakdownStats b;
  for (const auto& s : stats) b.merge(s.breakdown);
  return b;
}

inline std::string mib(double v) { return Table::num(v, 1); }
inline std::string usec(double v) { return Table::num(v, 1); }

}  // namespace oaf::bench

// Machine-readable bench output: the oaf-bench-v1 document.
//
// Every figure bench prints human tables AND (with --json <path>) writes one
// JSON document with a stable schema, so runs are diffable by machines:
//
//   {
//     "schema":  "oaf-bench-v1",
//     "bench":   "fig09_chunk_size",
//     "env":     { "cpu_model": ..., "cores": N, "build_type": ...,
//                  "sanitizers": ..., "prof": bool },
//     "tables":  [ {"title": ..., "header": [...], "rows": [[...], ...]} ],
//     "metrics": { "<title>/<row-label>/<column>": <number>, ... }
//   }
//
// `tables` mirrors exactly what the bench printed. `metrics` is the derived
// flat map tools/bench_compare diffs: every cell whose text parses fully as
// a number becomes one entry keyed "<table title>/<first cell>/<column
// header>". Benches only call add_table(); the extraction is generic, so a
// bench cannot forget to export the series it prints.
//
// The schema string only changes when the document shape changes
// incompatibly; adding tables or metrics to a bench is not a schema change.
// `env` records where the numbers came from — comparing a Debug run against
// a Release baseline, or an ASan run against a clean one, is the #1 source
// of phantom regressions, and the block makes that visible in the diff.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/table.h"

namespace oaf::bench {

/// Snapshot of the machine and build that produced a report.
struct BenchEnv {
  std::string cpu_model;    ///< "model name" from /proc/cpuinfo, or "unknown"
  unsigned cores = 0;       ///< std::thread::hardware_concurrency()
  std::string build_type;   ///< CMAKE_BUILD_TYPE at compile time
  std::string sanitizers;   ///< comma list ("address,undefined") or "none"
  bool prof = false;        ///< built with OAF_PROF (frame pointers kept)
};

inline BenchEnv collect_env() {
  BenchEnv env;
  env.cpu_model = "unknown";
  if (std::FILE* f = std::fopen("/proc/cpuinfo", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      std::string_view sv(line);
      if (sv.substr(0, 10) != "model name") continue;
      const auto colon = sv.find(':');
      if (colon == std::string_view::npos) break;
      sv.remove_prefix(colon + 1);
      while (!sv.empty() && (sv.front() == ' ' || sv.front() == '\t')) {
        sv.remove_prefix(1);
      }
      while (!sv.empty() && (sv.back() == '\n' || sv.back() == ' ')) {
        sv.remove_suffix(1);
      }
      if (!sv.empty()) env.cpu_model = std::string(sv);
      break;
    }
    std::fclose(f);
  }
  env.cores = std::thread::hardware_concurrency();
#if defined(OAF_BUILD_TYPE)
  env.build_type = OAF_BUILD_TYPE;
#elif defined(NDEBUG)
  env.build_type = "Release";
#else
  env.build_type = "Debug";
#endif
  if (env.build_type.empty()) env.build_type = "unspecified";
  std::string san;
#if defined(__SANITIZE_ADDRESS__)
  san += san.empty() ? "address" : ",address";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  san += san.empty() ? "address" : ",address";
#endif
#endif
#if defined(__SANITIZE_THREAD__)
  san += san.empty() ? "thread" : ",thread";
#endif
  env.sanitizers = san.empty() ? "none" : san;
#if defined(OAF_PROF)
  env.prof = true;
#endif
  return env;
}

class BenchReport {
 public:
  explicit BenchReport(std::string bench) : bench_(std::move(bench)) {}

  /// Capture a printed table: stored verbatim under "tables", numeric cells
  /// flattened into "metrics".
  void add_table(const Table& t) {
    TableData data;
    data.title = t.title();
    data.header = t.header_row();
    data.rows = t.data_rows();
    for (const auto& row : data.rows) {
      if (row.empty()) continue;
      for (size_t c = 1; c < row.size(); ++c) {
        double v = 0;
        if (!parse_number(row[c], &v)) continue;
        const std::string col =
            c < data.header.size() ? data.header[c] : std::to_string(c);
        metrics_[data.title + "/" + row[0] + "/" + col] = v;
      }
    }
    tables_.push_back(std::move(data));
  }

  /// Explicit metric for values that never went through a Table.
  void add_metric(const std::string& key, double value) {
    metrics_[key] = value;
  }

  [[nodiscard]] const std::map<std::string, double>& metrics() const {
    return metrics_;
  }

  [[nodiscard]] std::string to_json() const {
    JsonWriter w;
    w.begin_object();
    w.key("schema").value("oaf-bench-v1");
    w.key("bench").value(bench_);
    const BenchEnv env = collect_env();
    w.key("env").begin_object();
    w.key("cpu_model").value(env.cpu_model);
    w.key("cores").value(static_cast<double>(env.cores));
    w.key("build_type").value(env.build_type);
    w.key("sanitizers").value(env.sanitizers);
    w.key("prof").value(env.prof);
    w.end_object();
    w.key("tables").begin_array();
    for (const auto& t : tables_) {
      w.begin_object();
      w.key("title").value(t.title);
      w.key("header").begin_array();
      for (const auto& h : t.header) w.value(h);
      w.end_array();
      w.key("rows").begin_array();
      for (const auto& row : t.rows) {
        w.begin_array();
        for (const auto& cell : row) w.value(cell);
        w.end_array();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.key("metrics").begin_object();
    for (const auto& [key, value] : metrics_) w.key(key).value(value);
    w.end_object();
    w.end_object();
    return w.take();
  }

  /// Write the document to `path`. Returns false on I/O failure.
  [[nodiscard]] bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string doc = to_json();
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                    std::fputc('\n', f) != EOF;
    std::fclose(f);
    return ok;
  }

 private:
  struct TableData {
    std::string title;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
  };

  /// True only when the whole cell is one number ("123.4" yes, "512KiB" no).
  static bool parse_number(const std::string& s, double* out) {
    if (s.empty()) return false;
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size()) return false;
    *out = v;
    return true;
  }

  std::string bench_;
  std::vector<TableData> tables_;
  std::map<std::string, double> metrics_;
};

/// The one flag every bench understands: `--json <path>`. Empty = absent.
inline std::string bench_json_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") return argv[i + 1];
  }
  return {};
}

/// Standard bench epilogue: write the report when --json was passed.
/// Benches `return finish_bench(report, argc, argv);`.
inline int finish_bench(const BenchReport& report, int argc, char** argv) {
  const std::string path = bench_json_path(argc, argv);
  if (path.empty()) return 0;
  if (!report.write(path)) {
    std::fprintf(stderr, "failed to write bench json to %s\n", path.c_str());
    return 1;
  }
  std::printf("bench json: %s\n", path.c_str());
  return 0;
}

}  // namespace oaf::bench

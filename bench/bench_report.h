// Machine-readable bench output: the oaf-bench-v1 document.
//
// Every figure bench prints human tables AND (with --json <path>) writes one
// JSON document with a stable schema, so runs are diffable by machines:
//
//   {
//     "schema":  "oaf-bench-v1",
//     "bench":   "fig09_chunk_size",
//     "tables":  [ {"title": ..., "header": [...], "rows": [[...], ...]} ],
//     "metrics": { "<title>/<row-label>/<column>": <number>, ... }
//   }
//
// `tables` mirrors exactly what the bench printed. `metrics` is the derived
// flat map tools/bench_compare diffs: every cell whose text parses fully as
// a number becomes one entry keyed "<table title>/<first cell>/<column
// header>". Benches only call add_table(); the extraction is generic, so a
// bench cannot forget to export the series it prints.
//
// The schema string only changes when the document shape changes
// incompatibly; adding tables or metrics to a bench is not a schema change.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/table.h"

namespace oaf::bench {

class BenchReport {
 public:
  explicit BenchReport(std::string bench) : bench_(std::move(bench)) {}

  /// Capture a printed table: stored verbatim under "tables", numeric cells
  /// flattened into "metrics".
  void add_table(const Table& t) {
    TableData data;
    data.title = t.title();
    data.header = t.header_row();
    data.rows = t.data_rows();
    for (const auto& row : data.rows) {
      if (row.empty()) continue;
      for (size_t c = 1; c < row.size(); ++c) {
        double v = 0;
        if (!parse_number(row[c], &v)) continue;
        const std::string col =
            c < data.header.size() ? data.header[c] : std::to_string(c);
        metrics_[data.title + "/" + row[0] + "/" + col] = v;
      }
    }
    tables_.push_back(std::move(data));
  }

  /// Explicit metric for values that never went through a Table.
  void add_metric(const std::string& key, double value) {
    metrics_[key] = value;
  }

  [[nodiscard]] const std::map<std::string, double>& metrics() const {
    return metrics_;
  }

  [[nodiscard]] std::string to_json() const {
    JsonWriter w;
    w.begin_object();
    w.key("schema").value("oaf-bench-v1");
    w.key("bench").value(bench_);
    w.key("tables").begin_array();
    for (const auto& t : tables_) {
      w.begin_object();
      w.key("title").value(t.title);
      w.key("header").begin_array();
      for (const auto& h : t.header) w.value(h);
      w.end_array();
      w.key("rows").begin_array();
      for (const auto& row : t.rows) {
        w.begin_array();
        for (const auto& cell : row) w.value(cell);
        w.end_array();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.key("metrics").begin_object();
    for (const auto& [key, value] : metrics_) w.key(key).value(value);
    w.end_object();
    w.end_object();
    return w.take();
  }

  /// Write the document to `path`. Returns false on I/O failure.
  [[nodiscard]] bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string doc = to_json();
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                    std::fputc('\n', f) != EOF;
    std::fclose(f);
    return ok;
  }

 private:
  struct TableData {
    std::string title;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
  };

  /// True only when the whole cell is one number ("123.4" yes, "512KiB" no).
  static bool parse_number(const std::string& s, double* out) {
    if (s.empty()) return false;
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size()) return false;
    *out = v;
    return true;
  }

  std::string bench_;
  std::vector<TableData> tables_;
  std::map<std::string, double> metrics_;
};

/// The one flag every bench understands: `--json <path>`. Empty = absent.
inline std::string bench_json_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") return argv[i + 1];
  }
  return {};
}

/// Standard bench epilogue: write the report when --json was passed.
/// Benches `return finish_bench(report, argc, argv);`.
inline int finish_bench(const BenchReport& report, int argc, char** argv) {
  const std::string path = bench_json_path(argc, argv);
  if (path.empty()) return 0;
  if (!report.write(path)) {
    std::fprintf(stderr, "failed to write bench json to %s\n", path.c_str());
    return 1;
  }
  std::printf("bench json: %s\n", path.c_str());
  return 0;
}

}  // namespace oaf::bench

// Figure 11: overall benefit of NVMe-oAF — four applications to four SSDs,
// aggregate bandwidth and average latency, 4 KiB and 128 KiB, sequential
// read and write; NVMe-oAF vs every TCP generation and NVMe/RDMA.
#include "bench_report.h"
#include "bench_util.h"

using namespace oaf;
using namespace oaf::bench;

int main(int argc, char** argv) {
  BenchReport report("fig11_overall");
  struct Row {
    const char* name;
    Transport transport;
    RigOptions opts;
  };
  const std::vector<Row> rows = {
      {"NVMe/TCP-10G", Transport::kTcpStock, opts_with_tcp(tcp_10g())},
      {"NVMe/TCP-25G", Transport::kTcpStock, opts_with_tcp(tcp_25g())},
      {"NVMe/TCP-100G", Transport::kTcpStock, opts_with_tcp(tcp_100g())},
      {"NVMe/RDMA-56G", Transport::kRdma, RigOptions{}},
      {"NVMe-oAF", Transport::kAfShm, opts_with_tcp(tcp_25g())},
  };

  double af_read_bw_128 = 0;
  double tcp10_read_bw_128 = 0;
  double rdma_read_bw_128 = 0;

  for (const bool is_read : {true, false}) {
    Table t(std::string("Fig 11: 4 apps <-> 4 SSDs, sequential ") +
            (is_read ? "read" : "write") +
            ": aggregate BW (MiB/s) / avg latency (us)");
    t.header({"Transport", "4KiB BW", "4KiB lat", "128KiB BW", "128KiB lat"});
    for (const auto& row : rows) {
      std::vector<std::string> cells{row.name};
      for (const u64 io : {u64{4} * kKiB, u64{128} * kKiB}) {
        WorkloadSpec spec = paper_defaults().with_io(io).with_mix(
            is_read ? 1.0 : 0.0, true);
        const auto stats = run_streams(row.transport, 4, spec, row.opts);
        const double bw = Rig::aggregate_mib_s(stats);
        cells.push_back(mib(bw));
        cells.push_back(
            usec(ns_to_us(static_cast<DurNs>(merged_latency(stats).mean()))));
        if (is_read && io == 128 * kKiB) {
          if (row.transport == Transport::kAfShm) af_read_bw_128 = bw;
          if (row.transport == Transport::kTcpStock &&
              row.opts.tcp.link_gbps == 10.0) {
            tcp10_read_bw_128 = bw;
          }
          if (row.transport == Transport::kRdma) rdma_read_bw_128 = bw;
        }
      }
      t.row(cells);
    }
    t.print();
    report.add_table(t);
  }

  std::printf("\nHeadline ratios (paper: oAF/TCP-10G = 7.1x, oAF/RDMA = 1.78x):\n");
  std::printf("  measured oAF/TCP-10G 128KiB read = %.2fx\n",
              af_read_bw_128 / tcp10_read_bw_128);
  std::printf("  measured oAF/RDMA-56G 128KiB read = %.2fx\n",
              af_read_bw_128 / rdma_read_bw_128);
  return finish_bench(report, argc, argv);
}

// Figure 2: performance of existing NVMe-oF transports — four applications
// issuing sequential reads/writes to four SSDs (one-to-one) over the same
// fabric; aggregate bandwidth and average latency for 4 KiB and 128 KiB.
// NVMe/RoCE is reported for a single stream/SSD only (the paper had one
// real SSD on the physical testbed).
#include "bench_report.h"
#include "bench_util.h"

using namespace oaf;
using namespace oaf::bench;

namespace {

struct Row {
  const char* name;
  Transport transport;
  int streams;
  RigOptions opts;
};

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("fig02_existing_transports");
  std::vector<Row> rows = {
      {"NVMe/TCP-10G", Transport::kTcpStock, 4, opts_with_tcp(tcp_10g())},
      {"NVMe/TCP-25G", Transport::kTcpStock, 4, opts_with_tcp(tcp_25g())},
      {"NVMe/TCP-100G", Transport::kTcpStock, 4, opts_with_tcp(tcp_100g())},
      {"NVMe/RDMA-56G", Transport::kRdma, 4, RigOptions{}},
      {"NVMe/RoCE-100G (1 SSD)", Transport::kRoce, 1, RigOptions{}},
  };

  for (const bool is_read : {true, false}) {
    Table bw(std::string("Fig 2(") + (is_read ? "a" : "b") + "): sequential " +
             (is_read ? "read" : "write") +
             ", 4 apps <-> 4 SSDs: aggregate bandwidth (MiB/s) / avg latency (us)");
    bw.header({"Transport", "4KiB BW", "4KiB lat", "128KiB BW", "128KiB lat"});
    for (const auto& row : rows) {
      std::vector<std::string> cells{row.name};
      for (const u64 io : {u64{4} * kKiB, u64{128} * kKiB}) {
        WorkloadSpec spec = paper_defaults().with_io(io).with_mix(
            is_read ? 1.0 : 0.0, /*seq=*/true);
        const auto stats = run_streams(row.transport, row.streams, spec, row.opts);
        cells.push_back(mib(Rig::aggregate_mib_s(stats)));
        cells.push_back(usec(ns_to_us(static_cast<DurNs>(
            merged_latency(stats).mean()))));
      }
      bw.row(cells);
    }
    bw.print();
    report.add_table(bw);
  }

  std::printf(
      "\nPaper shape check: RDMA leads every TCP generation; TCP-100G over\n"
      "TCP-25G is a modest gain (stack-bound, not wire-bound); latency grows\n"
      "with I/O size and RDMA stays lowest.\n");
  return finish_bench(report, argc, argv);
}

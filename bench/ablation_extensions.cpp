// Extension ablations beyond the paper's figures:
//   1. Control path over RDMA — the paper's §5.5/§8 future-work item: the
//      residual control-plane overhead that dominates small I/Os can be
//      attacked by carrying the out-of-band PDUs over a faster fabric.
//   2. Encrypted shared-memory channel — the §6 hardening: what one extra
//      pass per side costs across I/O sizes.
//   3. Value of adaptive selection — the same application binary, co-located
//      vs remote: what the locality-aware channel switch buys end to end.
#include "bench_report.h"
#include "bench_util.h"

using namespace oaf;
using namespace oaf::bench;

namespace {

double bw(Transport t, u64 io, double read_frac, u32 qd = 128) {
  WorkloadSpec spec = paper_defaults().with_io(io).with_mix(read_frac, true);
  spec.queue_depth = qd;
  return Rig::aggregate_mib_s(
      run_streams(t, 1, spec, opts_with_tcp(tcp_25g())));
}

double lat(Transport t, u64 io, u32 qd) {
  WorkloadSpec spec = paper_defaults().with_io(io).with_qd(qd);
  sim::Scheduler sched;
  Rig rig(sched, opts_with_tcp(tcp_25g()), {StreamSpec{t, spec, std::nullopt}});
  return rig.run()[0].avg_latency_us();
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("ablation_extensions");
  // 1. RDMA control path.
  {
    Table t("Ablation: AF control path over TCP vs RDMA (future work, §8)");
    t.header({"I/O size", "oAF ctrl=TCP (MiB/s)", "oAF ctrl=RDMA (MiB/s)",
              "QD1 lat TCP (us)", "QD1 lat RDMA (us)"});
    for (const u64 io : {u64{4} * kKiB, u64{16} * kKiB, u64{128} * kKiB}) {
      t.row({std::to_string(io / kKiB) + "KiB",
             mib(bw(Transport::kAfShm, io, 1.0)),
             mib(bw(Transport::kAfShmRdmaControl, io, 1.0)),
             usec(lat(Transport::kAfShm, io, 1)),
             usec(lat(Transport::kAfShmRdmaControl, io, 1))});
    }
    t.print();
    report.add_table(t);
    std::printf(
        "\nExpectation: small I/Os are control-plane bound (paper §5.5), so\n"
        "an RDMA control path lifts 4-16 KiB throughput and trims QD1\n"
        "latency; at 128 KiB the data path dominates and the gap closes.\n");
  }

  // 2. Encrypted shm channel.
  {
    Table t("Ablation: §6 hardening — encrypted shared-memory channel");
    t.header({"Workload", "oAF (MiB/s)", "oAF encrypted (MiB/s)", "overhead"});
    struct Case {
      const char* name;
      u64 io;
      double read_frac;
    };
    for (const Case c : {Case{"128KiB seq read", 128 * kKiB, 1.0},
                         Case{"128KiB seq write", 128 * kKiB, 0.0},
                         Case{"512KiB seq read", 512 * kKiB, 1.0}}) {
      const double plain = bw(Transport::kAfShm, c.io, c.read_frac);
      const double enc = bw(Transport::kAfShmEncrypted, c.io, c.read_frac);
      t.row({c.name, mib(plain), mib(enc),
             Table::num(100.0 * (plain - enc) / plain, 0) + "%"});
    }
    t.print();
    report.add_table(t);
    std::printf(
        "\nExpectation: encryption costs roughly one extra payload pass per\n"
        "side (and forfeits zero-copy), a bounded tax on bandwidth.\n");
  }

  // 3. Adaptive selection value.
  {
    Table t("Ablation: locality-aware channel selection (same binary)");
    t.header({"Placement", "channel", "128KiB read (MiB/s)"});
    t.row({"co-located", "shared memory", mib(bw(Transport::kAfShm, 128 * kKiB, 1.0))});
    t.row({"remote node", "optimized TCP",
           mib(bw(Transport::kAfTcpOnly, 128 * kKiB, 1.0))});
    t.row({"remote node", "stock NVMe/TCP",
           mib(bw(Transport::kTcpStock, 128 * kKiB, 1.0))});
    t.print();
    report.add_table(t);
    std::printf(
        "\nExpectation: the fabric adapts per placement — co-located I/O\n"
        "leaves the network entirely; remote I/O still beats stock NVMe/TCP\n"
        "through the §4.5 TCP optimizations.\n");
  }
  return finish_bench(report, argc, argv);
}

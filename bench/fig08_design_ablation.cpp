// Figure 8: contribution of each NVMe-oSHM design optimization — 512 KiB
// sequential reads, single stream, cumulative designs:
//   NVMe/TCP-25G -> SHM-baseline (locked, conservative flow)
//                -> SHM-lock-free (+ lock-free double buffer)
//                -> SHM-flow-ctl (+ shared-memory flow control)
//                -> SHM-0-copy  (+ zero-copy transport)
// Reports bandwidth and p99.99 tail latency, with step-over-step deltas.
#include "bench_report.h"
#include "bench_util.h"

using namespace oaf;
using namespace oaf::bench;

int main(int argc, char** argv) {
  BenchReport report("fig08_design_ablation");
  WorkloadSpec spec = paper_defaults().with_io(512 * kKiB);
  spec.working_set_bytes = 2 * kGiB;
  const RigOptions opts = opts_with_tcp(tcp_25g());

  struct Step {
    const char* name;
    Transport transport;
  };
  const std::vector<Step> steps = {
      {"NVMe/TCP-25G", Transport::kTcpStock},
      {"SHM-baseline", Transport::kAfShmBaselineLocked},
      {"SHM-lock-free", Transport::kAfShmLockFree},
      {"SHM-flow-ctl", Transport::kAfShmFlowCtl},
      {"SHM-0-copy", Transport::kAfShm},
  };

  Table t("Fig 8: design ablation, 512 KiB sequential read (1 stream)");
  t.header({"Design", "BW (MiB/s)", "BW vs prev", "p99.99 (us)",
            "tail vs prev"});
  double prev_bw = 0;
  double prev_tail = 0;
  for (const auto& step : steps) {
    const auto stats = run_streams(step.transport, 1, spec, opts);
    const double bw = Rig::aggregate_mib_s(stats);
    const double tail = ns_to_us(merged_latency(stats).p9999());
    std::string bw_delta = "-";
    std::string tail_delta = "-";
    if (prev_bw > 0) {
      bw_delta = Table::num(bw / prev_bw, 2) + "x";
      tail_delta = Table::num(100.0 * (tail - prev_tail) / prev_tail, 0) + "%";
    }
    t.row({step.name, mib(bw), bw_delta, usec(tail), tail_delta});
    prev_bw = bw;
    prev_tail = tail;
  }
  t.print();
  report.add_table(t);

  std::printf(
      "\nPaper shape check: SHM-baseline well above TCP-25G (paper: 1.83x);\n"
      "lock-free leaves bandwidth ~unchanged but cuts p99.99 (paper: -38%%);\n"
      "flow control buys bandwidth again (paper: 1.83x); zero-copy trims the\n"
      "tail further (paper: -22%%).\n");
  return finish_bench(report, argc, argv);
}

// Figure 13: tail latency for the sequential 128 KiB mixed 70:30 workload.
// Includes the paper's follow-up experiment: rerunning NVMe/RDMA with a
// 3-4x longer duration dilutes the registration warmup and brings its tail
// back down — evidence that memory-registration overhead is what hurts
// short-running applications.
#include "bench_report.h"
#include "bench_util.h"

using namespace oaf;
using namespace oaf::bench;

namespace {

Histogram run_mixed(Transport t, const RigOptions& opts, DurNs duration,
                    DurNs warmup = 0) {
  WorkloadSpec spec = paper_defaults().with_io(128 * kKiB).with_mix(0.7, true);
  spec.queue_depth = 16;  // moderate depth: fabric tails, not queueing tails
  spec.duration = duration;
  // Tail study of a *short-running* application: by default measure from
  // connection start (no warmup exclusion) so registration warmup is
  // visible, as it is to the paper's short runs.
  spec.warmup = warmup;
  sim::Scheduler sched;
  std::vector<StreamSpec> specs;
  for (int i = 0; i < 4; ++i) {
    WorkloadSpec s = spec;
    s.seed = 1 + static_cast<u64>(i);
    specs.push_back({t, s, std::nullopt});
  }
  Rig rig(sched, opts, specs);
  return merged_latency(rig.run());
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("fig13_tail_latency");
  struct Row {
    const char* name;
    Transport transport;
    RigOptions opts;
  };
  const std::vector<Row> rows = {
      {"NVMe/TCP-10G", Transport::kTcpStock, opts_with_tcp(tcp_10g())},
      {"NVMe/TCP-25G", Transport::kTcpStock, opts_with_tcp(tcp_25g())},
      {"NVMe/TCP-100G", Transport::kTcpStock, opts_with_tcp(tcp_100g())},
      {"NVMe/RDMA-56G", Transport::kRdma, RigOptions{}},
      {"NVMe/RoCE-100G", Transport::kRoce, RigOptions{}},
      {"NVMe-oAF", Transport::kAfShm, opts_with_tcp(tcp_25g())},
  };

  const DurNs base_duration = 300 * 1000 * 1000;

  Table t("Fig 13: seq 128 KiB read-write 70:30 latency percentiles (us)");
  t.header({"Transport", "p50", "p99", "p99.9", "p99.99"});
  i64 af_tail = 0;
  i64 tcp100_tail = 0;
  i64 rdma_tail = 0;
  for (const auto& row : rows) {
    const Histogram h = run_mixed(row.transport, row.opts, base_duration);
    t.row({row.name, usec(ns_to_us(h.p50())), usec(ns_to_us(h.p99())),
           usec(ns_to_us(h.p999())), usec(ns_to_us(h.p9999()))});
    if (row.transport == Transport::kAfShm) af_tail = h.p9999();
    if (row.transport == Transport::kRdma) rdma_tail = h.p9999();
    if (row.transport == Transport::kTcpStock && row.opts.tcp.link_gbps == 100.0) {
      tcp100_tail = h.p9999();
    }
  }
  t.print();
  report.add_table(t);

  std::printf("\nTail ratios (paper: oAF ~3x below TCP-100G and NVMe/RDMA):\n");
  std::printf("  TCP-100G p99.99 / oAF p99.99 = %.1fx\n",
              static_cast<double>(tcp100_tail) / static_cast<double>(af_tail));
  std::printf("  RDMA-56G p99.99 / oAF p99.99 = %.1fx\n",
              static_cast<double>(rdma_tail) / static_cast<double>(af_tail));

  // The paper's longer-run counter-experiment: 3-4x the duration lets a
  // long-running application amortize the registration storm; measured in
  // steady state its tail falls back below NVMe-oAF's.
  Table t2("Fig 13 follow-up: NVMe/RDMA p99.99 vs run length (warmup dilution)");
  t2.header({"Run length", "p99.99 (us)", "vs oAF"});
  for (const int mult : {1, 4}) {
    const Histogram h = run_mixed(Transport::kRdma, RigOptions{},
                                  base_duration * mult,
                                  mult > 1 ? base_duration : 0);
    t2.row({std::to_string(mult) + "x", usec(ns_to_us(h.p9999())),
            Table::num(static_cast<double>(h.p9999()) /
                           static_cast<double>(af_tail),
                       2) + "x"});
  }
  t2.print();
  report.add_table(t2);
  return finish_bench(report, argc, argv);
}

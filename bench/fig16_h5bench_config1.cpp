// Figure 16: h5bench write/read kernels, config-1 — one dataset of 16M
// particles — NVMe-oAF (SHM-0-copy co-design) vs NFS over the same 25 G
// fabric. Timing includes the closing flush/commit (h5bench sync mode).
#include "bench_report.h"
#include "h5_util.h"

using namespace oaf;
using namespace oaf::bench;

int main(int argc, char** argv) {
  BenchReport report("fig16_h5bench_config1");
  const h5bench::BenchConfig cfg = h5bench::BenchConfig::config1();

  const H5KernelResult nfs = run_h5bench_nfs(cfg);
  const H5KernelResult af = run_h5bench_fabric(
      Transport::kAfShm, cfg, /*coalesce=*/false, opts_with_tcp(tcp_25g()));

  Table t("Fig 16: h5bench config-1 (1 dataset x 16M particles), MiB/s");
  t.header({"System", "write BW", "read BW"});
  t.row({"NFS (async, 25G)", mib(nfs.write_mib_s), mib(nfs.read_mib_s)});
  t.row({"NVMe-oAF (SHM-0-copy)", mib(af.write_mib_s), mib(af.read_mib_s)});
  t.print();
  report.add_table(t);

  std::printf(
      "\nRatios (paper: oAF 5.95x NFS write, 5.68x NFS read):\n"
      "  measured write %.2fx, read %.2fx\n",
      af.write_mib_s / nfs.write_mib_s, af.read_mib_s / nfs.read_mib_s);
  return finish_bench(report, argc, argv);
}

// Figure 12: latency breakdown of NVMe-oAF next to the TCP generations and
// NVMe/RDMA for the four-SSD workload — the communication component AF's
// zero-copy + shm flow control removes.
#include "bench_report.h"
#include "bench_util.h"

using namespace oaf;
using namespace oaf::bench;

int main(int argc, char** argv) {
  BenchReport report("fig12_af_breakdown");
  struct Row {
    const char* name;
    Transport transport;
    RigOptions opts;
  };
  const std::vector<Row> rows = {
      {"NVMe/TCP-10G", Transport::kTcpStock, opts_with_tcp(tcp_10g())},
      {"NVMe/TCP-25G", Transport::kTcpStock, opts_with_tcp(tcp_25g())},
      {"NVMe/TCP-100G", Transport::kTcpStock, opts_with_tcp(tcp_100g())},
      {"NVMe/RDMA-56G", Transport::kRdma, RigOptions{}},
      {"NVMe-oAF", Transport::kAfShm, opts_with_tcp(tcp_25g())},
  };

  double af_total_read128 = 0;
  std::vector<std::pair<std::string, double>> tcp_totals_read128;

  for (const bool is_read : {true, false}) {
    for (const u64 io : {u64{4} * kKiB, u64{128} * kKiB}) {
      Table t("Fig 12: " + std::string(is_read ? "read" : "write") + " " +
              std::to_string(io / kKiB) + " KiB breakdown, 4 SSDs (us)");
      t.header({"Transport", "I/O time", "comm time", "other", "total"});
      for (const auto& row : rows) {
        WorkloadSpec spec = paper_defaults().with_io(io).with_mix(
            is_read ? 1.0 : 0.0, true);
        const auto stats = run_streams(row.transport, 4, spec, row.opts);
        const LatencyParts mean = merged_breakdown(stats).mean();
        t.row({row.name, usec(ns_to_us(mean.io)), usec(ns_to_us(mean.comm)),
               usec(ns_to_us(mean.other)), usec(ns_to_us(mean.total()))});
        if (is_read && io == 128 * kKiB) {
          const double total = ns_to_us(mean.total());
          if (row.transport == Transport::kAfShm) {
            af_total_read128 = total;
          } else if (row.transport == Transport::kTcpStock) {
            tcp_totals_read128.emplace_back(row.name, total);
          }
        }
      }
      t.print();
      report.add_table(t);
    }
  }

  std::printf(
      "\n128 KiB read average-latency reduction of NVMe-oAF (paper: 50%%/43%%/33%%"
      " vs TCP-10/25/100G):\n");
  for (const auto& [name, total] : tcp_totals_read128) {
    std::printf("  vs %s: %.0f%%\n", name.c_str(),
                100.0 * (total - af_total_read128) / total);
  }
  return finish_bench(report, argc, argv);
}

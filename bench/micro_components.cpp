// Component micro-benchmarks on the functional plane (real memory, real
// atomics, real codec) via google-benchmark: the building blocks whose cost
// structure the timing plane's models encode.
#include <benchmark/benchmark.h>

#include <cstring>

#include "af/buffer_manager.h"
#include "pdu/codec.h"
#include "pdu/crc32.h"
#include "shm/double_buffer.h"
#include "shm/locked_buffer.h"
#include "shm/region.h"
#include "shm/spsc_queue.h"

namespace {

using namespace oaf;

// --------------------------------------------------------------------------
// Lock-free double buffer: full produce/consume cycle per iteration.
// --------------------------------------------------------------------------
void BM_DoubleBufferCycle(benchmark::State& state) {
  const u64 payload = static_cast<u64>(state.range(0));
  auto region = shm::ShmRegion::anonymous(
                    shm::DoubleBufferRing::required_bytes(payload, 8))
                    .take();
  auto ring =
      shm::DoubleBufferRing::create(region.data(), region.size(), payload, 8)
          .take();
  std::vector<u8> data(payload, 0x5A);
  const auto dir = shm::Direction::kClientToTarget;
  u64 seq = 0;
  for (auto _ : state) {
    const u32 slot = ring.slot_for(seq++);
    benchmark::DoNotOptimize(ring.acquire(dir, slot));
    auto buf = ring.slot_data(dir, slot);
    std::memcpy(buf.data(), data.data(), payload);
    benchmark::DoNotOptimize(ring.publish(dir, slot, payload));
    auto view = ring.consume(dir, slot);
    benchmark::DoNotOptimize(view);
    benchmark::DoNotOptimize(ring.release(dir, slot));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(payload));
}
BENCHMARK(BM_DoubleBufferCycle)->Arg(4096)->Arg(128 * 1024)->Arg(512 * 1024);

// Zero-copy variant: no client memcpy, only slot state transitions — the
// §4.4.3 saving measured directly.
void BM_DoubleBufferZeroCopyCycle(benchmark::State& state) {
  const u64 payload = static_cast<u64>(state.range(0));
  auto region = shm::ShmRegion::anonymous(
                    shm::DoubleBufferRing::required_bytes(payload, 8))
                    .take();
  auto ring =
      shm::DoubleBufferRing::create(region.data(), region.size(), payload, 8)
          .take();
  const auto dir = shm::Direction::kClientToTarget;
  u64 seq = 0;
  for (auto _ : state) {
    const u32 slot = ring.slot_for(seq++);
    benchmark::DoNotOptimize(ring.acquire(dir, slot));
    // Application "fills" in place: the buffer IS the slot.
    benchmark::DoNotOptimize(ring.publish(dir, slot, payload));
    auto view = ring.consume(dir, slot);
    benchmark::DoNotOptimize(view);
    benchmark::DoNotOptimize(ring.release(dir, slot));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(payload));
}
BENCHMARK(BM_DoubleBufferZeroCopyCycle)->Arg(128 * 1024)->Arg(512 * 1024);

// Locked baseline for contrast (Fig 8's SHM-baseline mechanics).
void BM_LockedBufferCycle(benchmark::State& state) {
  const u64 payload = static_cast<u64>(state.range(0));
  auto region = shm::ShmRegion::anonymous(
                    shm::LockedSharedBuffer::required_bytes(payload))
                    .take();
  auto buf =
      shm::LockedSharedBuffer::create(region.data(), region.size(), payload)
          .take();
  std::vector<u8> in(payload, 1);
  std::vector<u8> out(payload);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buf.put(in));
    benchmark::DoNotOptimize(buf.take(out));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(payload));
}
BENCHMARK(BM_LockedBufferCycle)->Arg(4096)->Arg(128 * 1024);

// --------------------------------------------------------------------------
// SPSC notification queue.
// --------------------------------------------------------------------------
void BM_SpscQueuePushPop(benchmark::State& state) {
  shm::SpscQueue<u64> q(1024);
  u64 v = 0;
  for (auto _ : state) {
    q.push(v);
    q.pop(v);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_SpscQueuePushPop);

// --------------------------------------------------------------------------
// Buffer pool.
// --------------------------------------------------------------------------
void BM_BufferPoolAllocFree(benchmark::State& state) {
  af::BufferPool pool(128 * 1024, 128);
  for (auto _ : state) {
    auto b = pool.alloc();
    benchmark::DoNotOptimize(b);
    benchmark::DoNotOptimize(pool.free(b));
  }
}
BENCHMARK(BM_BufferPoolAllocFree);

// --------------------------------------------------------------------------
// PDU codec + CRC32C.
// --------------------------------------------------------------------------
void BM_PduEncodeDecodeControl(benchmark::State& state) {
  pdu::Pdu p;
  pdu::C2HData c;
  c.length = 128 * 1024;
  c.placement = pdu::DataPlacement::kShmSlot;
  c.shm_slot = 7;
  p.header = c;
  for (auto _ : state) {
    auto bytes = pdu::encode(p);
    auto decoded = pdu::decode(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_PduEncodeDecodeControl);

void BM_PduEncodeDecodeWithPayload(benchmark::State& state) {
  const u64 payload = static_cast<u64>(state.range(0));
  pdu::Pdu p;
  pdu::C2HData c;
  c.length = payload;
  p.header = c;
  p.payload.resize(payload, 0xAB);
  for (auto _ : state) {
    auto bytes = pdu::encode(p);
    auto decoded = pdu::decode(bytes);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(payload));
}
BENCHMARK(BM_PduEncodeDecodeWithPayload)->Arg(4096)->Arg(128 * 1024);

void BM_Crc32c(benchmark::State& state) {
  std::vector<u8> data(static_cast<size_t>(state.range(0)), 0x3C);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdu::crc32c(data));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(128 * 1024);

}  // namespace

BENCHMARK_MAIN();

// Shared harness for the h5bench figures (16/17/18/19): runs the write and
// read kernels against a storage backend on the sim scheduler and reports
// both bandwidths.
#pragma once

#include <memory>

#include "bench_util.h"
#include "h5/coalescing_backend.h"
#include "h5/nfs_backend.h"
#include "h5/nvmf_backend.h"
#include "h5bench/kernels.h"

namespace oaf::bench {

struct H5KernelResult {
  double write_mib_s = 0;
  double read_mib_s = 0;
};

/// Run write kernel then read kernel on `file` (which must be created).
/// Drives `sched` to completion for each phase.
inline H5KernelResult run_h5bench(sim::Scheduler& sched, h5::H5File& file,
                                  const h5bench::BenchConfig& cfg) {
  H5KernelResult out;
  bool done = false;
  h5bench::run_write_kernel(sched, file, cfg,
                            [&](Result<h5bench::KernelStats> r) {
                              if (r.is_ok()) {
                                out.write_mib_s = r.value().bandwidth_mib_s();
                              } else {
                                std::fprintf(stderr, "write kernel failed: %s\n",
                                             r.status().to_string().c_str());
                              }
                              done = true;
                            });
  sched.run();
  if (!done) std::fprintf(stderr, "write kernel did not finish\n");

  done = false;
  h5bench::run_read_kernel(sched, file, cfg, /*verify=*/false,
                           [&](Result<h5bench::KernelStats> r) {
                             if (r.is_ok()) {
                               out.read_mib_s = r.value().bandwidth_mib_s();
                             } else {
                               std::fprintf(stderr, "read kernel failed: %s\n",
                                            r.status().to_string().c_str());
                             }
                             done = true;
                           });
  sched.run();
  if (!done) std::fprintf(stderr, "read kernel did not finish\n");
  return out;
}

/// NFS baseline: h5bench over an async-mounted NFS file.
inline H5KernelResult run_h5bench_nfs(const h5bench::BenchConfig& cfg,
                                      const nfs::NfsParams& params = nfs_25g()) {
  sim::Scheduler sched;
  nfs::NfsClient client(sched, params);
  h5::NfsBackend backend(client, "bench.h5", cfg.total_bytes() + (4ull << 20));
  h5::NativeVol vol;
  h5::H5File file(backend, vol);
  bool created = false;
  file.create([&](Status st) { created = st.is_ok(); });
  sched.run();
  if (!created) std::fprintf(stderr, "NFS h5 create failed\n");
  return run_h5bench(sched, file, cfg);
}

/// NVMe-oAF (or NVMe/TCP) co-design: h5bench over an NvmfBackend, optionally
/// wrapped in the I/O coalescer.
inline H5KernelResult run_h5bench_fabric(Transport transport,
                                         const h5bench::BenchConfig& cfg,
                                         bool coalesce,
                                         const RigOptions& opts = RigOptions{}) {
  sim::Scheduler sched;
  WorkloadSpec unused;  // kernels drive I/O themselves
  Rig rig(sched, opts, {StreamSpec{transport, unused, std::nullopt}});
  rig.connect_all();

  h5::NvmfBackend base(rig.initiator(0), 1, opts.max_io_bytes);
  base.set_capacity(rig.device(0).num_blocks() *
                    static_cast<u64>(rig.device(0).block_size()));
  std::unique_ptr<h5::CoalescingBackend> co;
  h5::StorageBackend* backend = &base;
  if (coalesce) {
    co = std::make_unique<h5::CoalescingBackend>(base, 4 * kMiB, 4 * kMiB);
    backend = co.get();
  }

  h5::NativeVol vol;
  h5::H5File file(*backend, vol);
  bool created = false;
  file.create([&](Status st) { created = st.is_ok(); });
  sched.run();
  if (!created) std::fprintf(stderr, "fabric h5 create failed\n");
  return run_h5bench(sched, file, cfg);
}

/// Aggregate h5bench result across several concurrent clients.
struct H5AggregateResult {
  double write_mib_s = 0;
  double read_mib_s = 0;
};

/// The scale-out topology of Figs 18/19: four h5bench clients (config-1
/// each), `shm_clients` of them co-located with their storage service (shm
/// channel), the rest on stock NVMe/TCP. `shared_link` distinguishes case-2
/// (all pairs on one node / one NIC) from case-1 (one node pair per client).
inline H5AggregateResult run_scaleout_clients(int shm_clients, bool shared_link,
                                              int total_clients = 4) {
  const h5bench::BenchConfig cfg = h5bench::BenchConfig::config1();
  RigOptions opts = opts_with_tcp(tcp_25g());
  opts.shared_tcp_link = shared_link;

  sim::Scheduler sched;
  std::vector<StreamSpec> specs;
  for (int i = 0; i < total_clients; ++i) {
    specs.push_back({i < shm_clients ? Transport::kAfShm : Transport::kTcpStock,
                     WorkloadSpec{}, std::nullopt});
  }
  Rig rig(sched, opts, specs);
  rig.connect_all();

  std::vector<std::unique_ptr<h5::NvmfBackend>> backends;
  std::vector<std::unique_ptr<h5::NativeVol>> vols;
  std::vector<std::unique_ptr<h5::H5File>> files;
  for (int i = 0; i < total_clients; ++i) {
    backends.push_back(std::make_unique<h5::NvmfBackend>(
        rig.initiator(static_cast<size_t>(i)), 1, opts.max_io_bytes));
    backends.back()->set_capacity(cfg.total_bytes() + (4ull << 20));
    vols.push_back(std::make_unique<h5::NativeVol>());
    files.push_back(std::make_unique<h5::H5File>(*backends.back(), *vols.back()));
    files.back()->create([](Status st) {
      if (!st) std::fprintf(stderr, "create failed\n");
    });
  }
  sched.run();

  H5AggregateResult out;
  int done = 0;
  for (int i = 0; i < total_clients; ++i) {
    h5bench::BenchConfig c = cfg;
    c.seed = 1 + static_cast<u64>(i);
    h5bench::run_write_kernel(sched, *files[static_cast<size_t>(i)], c,
                              [&out, &done](Result<h5bench::KernelStats> r) {
                                if (r.is_ok()) {
                                  out.write_mib_s += r.value().bandwidth_mib_s();
                                }
                                done++;
                              });
  }
  sched.run();
  if (done != total_clients) std::fprintf(stderr, "write kernels incomplete\n");

  done = 0;
  for (int i = 0; i < total_clients; ++i) {
    h5bench::BenchConfig c = cfg;
    c.seed = 1 + static_cast<u64>(i);
    h5bench::run_read_kernel(sched, *files[static_cast<size_t>(i)], c, false,
                             [&out, &done](Result<h5bench::KernelStats> r) {
                               if (r.is_ok()) {
                                 out.read_mib_s += r.value().bandwidth_mib_s();
                               }
                               done++;
                             });
  }
  sched.run();
  if (done != total_clients) std::fprintf(stderr, "read kernels incomplete\n");
  return out;
}

}  // namespace oaf::bench

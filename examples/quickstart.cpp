// Quickstart: stand up a co-located NVMe-oF target and client on the
// functional plane — real reactor threads, a real socketpair control
// channel, and a real POSIX shared-memory region — then run one write and
// one read through the adaptive fabric and verify the bytes.
//
//   build/examples/quickstart
#include <atomic>
#include <cstdio>
#include <thread>

#include "af/locality.h"
#include "net/socket_channel.h"
#include "nvmf/initiator.h"
#include "nvmf/target.h"
#include "sim/real_executor.h"
#include "ssd/real_device.h"

using namespace oaf;

namespace {

void wait_for(const std::atomic<bool>& flag) {
  while (!flag.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

}  // namespace

int main() {
  // One reactor thread per endpoint, as SPDK pins connections to cores.
  sim::RealExecutor client_exec;
  sim::RealExecutor target_exec;
  net::InlineCopier copier;

  // The broker plays the host's helper process (hypervisor/Kubernetes
  // agent): it provisions IVSHMEM-style regions. Both endpoints share it,
  // so locality detection will grant the shared-memory channel.
  af::ShmBroker host(/*node_token=*/42, af::ShmBroker::Backing::kPosixShm);

  // Storage service: one namespace on an in-memory NVMe device.
  ssd::RealDevice ssd(target_exec, /*block_size=*/512,
                      /*num_blocks=*/(256ull << 20) / 512);
  ssd::Subsystem subsystem("nqn.2026-07.io.oaf:quickstart");
  if (auto st = subsystem.add_namespace(1, &ssd); !st) {
    std::fprintf(stderr, "add_namespace: %s\n", st.to_string().c_str());
    return 1;
  }

  // Control path: a real socketpair carrying NVMe/TCP PDUs.
  auto channels = net::make_socket_channel_pair(client_exec, target_exec);
  if (!channels) {
    std::fprintf(stderr, "socketpair: %s\n", channels.status().to_string().c_str());
    return 1;
  }
  auto [client_ch, target_ch] = std::move(channels).take();

  const std::string conn = "quickstart_" + std::to_string(getpid());
  nvmf::NvmfTargetConnection target(target_exec, *target_ch, copier, host,
                                    subsystem, {af::AfConfig::oaf(), conn});
  nvmf::NvmfInitiator client(client_exec, *client_ch, copier, host,
                             {af::AfConfig::oaf(), /*queue_depth=*/32, conn});

  // Handshake: ICReq/ICResp + shared-memory grant (paper Fig 5).
  std::atomic<bool> connected{false};
  client_exec.post([&] {
    client.connect([&](Status st) {
      if (!st) std::fprintf(stderr, "connect: %s\n", st.to_string().c_str());
      connected = true;
    });
  });
  wait_for(connected);
  std::printf("connected; shared-memory channel %s, zero-copy %s\n",
              client.shm_active() ? "ACTIVE" : "inactive",
              client.supports_zero_copy() ? "available" : "unavailable");

  // Zero-copy write: the Buffer Manager hands us a buffer that lives
  // directly in the shared-memory slot (paper §4.4.3).
  std::vector<u8> payload(128 * 1024);
  for (size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<u8>(i * 31);

  std::atomic<bool> wrote{false};
  client_exec.post([&] {
    auto ticket = client.zero_copy_write_begin(payload.size());
    if (!ticket) {
      std::fprintf(stderr, "ticket: %s\n", ticket.status().to_string().c_str());
      exit(1);
    }
    std::copy(payload.begin(), payload.end(), ticket.value().buffer.begin());
    client.zero_copy_write(ticket.value(), 1, /*slba=*/2048, payload.size(),
                           [&](nvmf::NvmfInitiator::IoResult r) {
                             std::printf(
                                 "write done: status=%u, %.1f us total "
                                 "(%.1f us on the device)\n",
                                 static_cast<unsigned>(r.cpl.status),
                                 ns_to_us(r.total_ns),
                                 ns_to_us(static_cast<DurNs>(r.io_time_ns)));
                             wrote = true;
                           });
  });
  wait_for(wrote);

  // Zero-copy read: the payload is consumed straight out of the slot.
  std::atomic<bool> read_done{false};
  std::atomic<bool> match{false};
  client_exec.post([&] {
    client.zero_copy_read(
        1, 2048, payload.size(),
        [&](Result<nvmf::NvmfInitiator::ReadView> view,
            nvmf::NvmfInitiator::IoResult r) {
          if (view.is_ok() && r.ok()) {
            match = std::equal(payload.begin(), payload.end(),
                               view.value().data.begin());
            view.value().release();
          }
          read_done = true;
        });
  });
  wait_for(read_done);

  std::printf("read done: payload %s\n",
              match.load() ? "verified" : "MISMATCH");
  std::printf("client sent %llu control PDUs; %llu zero-copy publishes, "
              "%llu staged copies\n",
              static_cast<unsigned long long>(client.control_pdus_sent()),
              static_cast<unsigned long long>(
                  client.endpoint().zero_copy_publishes()),
              static_cast<unsigned long long>(client.endpoint().staged_copies()));
  return match.load() ? 0 : 1;
}

// HDF5 co-design (paper §5.7): store h5bench-style particle datasets on a
// remote NVMe namespace through the adaptive fabric, with VOL interception
// and I/O coalescing — the full storage-runtime stack on the functional
// plane, ending with a reopen-and-verify pass.
//
//   build/examples/h5_particle_io
#include <atomic>
#include <cstdio>
#include <thread>

#include "af/locality.h"
#include "h5/coalescing_backend.h"
#include "h5/file.h"
#include "h5/nvmf_backend.h"
#include "h5bench/kernels.h"
#include "net/socket_channel.h"
#include "nvmf/initiator.h"
#include "nvmf/target.h"
#include "sim/real_executor.h"
#include "ssd/real_device.h"

using namespace oaf;

namespace {

void pump(sim::RealExecutor&, const std::atomic<bool>& done) {
  while (!done.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

}  // namespace

int main() {
  sim::RealExecutor client_exec;
  sim::RealExecutor target_exec;
  net::InlineCopier copier;
  af::ShmBroker host(7, af::ShmBroker::Backing::kPosixShm);

  ssd::RealDevice ssd(target_exec, 512, (512ull << 20) / 512);
  ssd::Subsystem subsystem("nqn.2026-07.io.oaf:h5");
  (void)subsystem.add_namespace(1, &ssd);

  auto channels = net::make_socket_channel_pair(client_exec, target_exec).take();
  const std::string conn = "h5example_" + std::to_string(getpid());
  nvmf::NvmfTargetConnection target(target_exec, *channels.second, copier, host,
                                    subsystem, {af::AfConfig::oaf(), conn});
  nvmf::NvmfInitiator client(client_exec, *channels.first, copier, host,
                             {af::AfConfig::oaf(), 32, conn});

  std::atomic<bool> connected{false};
  client_exec.post([&] {
    client.connect([&](Status) { connected = true; });
  });
  pump(client_exec, connected);
  std::printf("fabric connected (shm %s)\n",
              client.shm_active() ? "active" : "inactive");

  // Storage stack: NVMe-oAF backend + application-agnostic coalescer +
  // mini-HDF5 file, with a counting VOL connector observing every dataset
  // transfer (the paper's interception point).
  h5::NvmfBackend base(client, 1, /*max_io=*/512 * kKiB);
  base.set_capacity(ssd.num_blocks() * 512ull);
  h5::CoalescingBackend backend(base, /*run_bytes=*/2 * kMiB,
                                /*readahead=*/2 * kMiB);
  h5::NativeVol native;
  h5::CountingVol vol(native);
  h5::H5File file(backend, vol);

  std::atomic<bool> step{false};
  client_exec.post([&] {
    file.create([&](Status st) {
      if (!st) std::fprintf(stderr, "create: %s\n", st.to_string().c_str());
      step = true;
    });
  });
  pump(client_exec, step);

  // Small config-2-style workload: 4 datasets x 1M particles, interleaved
  // 32 KiB transfers — the access pattern coalescing exists for.
  h5bench::BenchConfig cfg;
  cfg.num_datasets = 4;
  cfg.particles_per_dataset = 1 << 20;
  cfg.elem_size = 4;
  cfg.chunk_elems = 8 * 1024;

  std::atomic<bool> wrote{false};
  client_exec.post([&] {
    h5bench::run_write_kernel(client_exec, file, cfg,
                              [&](Result<h5bench::KernelStats> r) {
                                if (r.is_ok()) {
                                  std::printf("write kernel: %llu bytes\n",
                                              static_cast<unsigned long long>(
                                                  r.value().bytes));
                                } else {
                                  std::fprintf(stderr, "write kernel: %s\n",
                                               r.status().to_string().c_str());
                                }
                                wrote = true;
                              });
  });
  pump(client_exec, wrote);

  std::atomic<bool> read_ok{false};
  std::atomic<bool> read_done{false};
  client_exec.post([&] {
    h5bench::run_read_kernel(client_exec, file, cfg, /*verify=*/true,
                             [&](Result<h5bench::KernelStats> r) {
                               read_ok = r.is_ok();
                               if (!r.is_ok()) {
                                 std::fprintf(stderr, "read kernel: %s\n",
                                              r.status().to_string().c_str());
                               }
                               read_done = true;
                             });
  });
  pump(client_exec, read_done);

  std::printf("read kernel: %s (every byte checked)\n",
              read_ok.load() ? "verified" : "FAILED");
  std::printf("VOL observed %llu dataset writes (%llu bytes) and %llu reads\n",
              static_cast<unsigned long long>(vol.writes()),
              static_cast<unsigned long long>(vol.bytes_written()),
              static_cast<unsigned long long>(vol.reads()));
  std::printf("coalescer: %llu application writes -> %llu fabric I/Os\n",
              static_cast<unsigned long long>(backend.writes_absorbed()),
              static_cast<unsigned long long>(backend.coalesced_flushes()));
  std::printf("backend: %llu NVMe commands, %llu via zero-copy\n",
              static_cast<unsigned long long>(base.commands_issued()),
              static_cast<unsigned long long>(base.zero_copy_writes()));

  // Reopen from the persisted superblock and check the metadata survived.
  h5::H5File reopened(backend, vol);
  std::atomic<bool> reopened_ok{false};
  std::atomic<bool> reopen_done{false};
  client_exec.post([&] {
    file.close([&](Status) {
      reopened.open([&](Status st) {
        reopened_ok = st.is_ok() && reopened.dataset_count() == cfg.num_datasets;
        reopen_done = true;
      });
    });
  });
  pump(client_exec, reopen_done);
  std::printf("reopen after close: %s (%zu datasets)\n",
              reopened_ok.load() ? "ok" : "FAILED", reopened.dataset_count());

  return read_ok.load() && reopened_ok.load() ? 0 : 1;
}

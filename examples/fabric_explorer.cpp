// Fabric explorer: the timing plane as a library. Runs a user-configurable
// workload over every transport the paper evaluates and prints a comparison
// table — a starting point for exploring the calibrated models beyond the
// paper's figures.
//
//   build/examples/fabric_explorer [io_kib] [queue_depth] [read_fraction]
//   e.g. build/examples/fabric_explorer 256 32 0.7
#include <cstdio>
#include <cstdlib>

#include "bench/rig.h"
#include "common/table.h"

using namespace oaf;
using namespace oaf::bench;

int main(int argc, char** argv) {
  const u64 io_kib = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 128;
  const u32 qd = argc > 2 ? static_cast<u32>(std::atoi(argv[2])) : 32;
  const double read_frac = argc > 3 ? std::atof(argv[3]) : 1.0;

  WorkloadSpec spec;
  spec.io_bytes = io_kib * kKiB;
  spec.queue_depth = qd;
  spec.read_fraction = read_frac;
  spec.sequential = true;
  spec.duration = 300 * 1000 * 1000;
  spec.warmup = 40 * 1000 * 1000;
  spec.working_set_bytes = 1 * kGiB;

  struct Row {
    const char* name;
    Transport transport;
    RigOptions opts;
  };
  RigOptions o10;
  o10.tcp = tcp_10g();
  RigOptions o25;
  o25.tcp = tcp_25g();
  RigOptions o100;
  o100.tcp = tcp_100g();
  const std::vector<Row> rows = {
      {"NVMe/TCP-10G", Transport::kTcpStock, o10},
      {"NVMe/TCP-25G", Transport::kTcpStock, o25},
      {"NVMe/TCP-100G", Transport::kTcpStock, o100},
      {"AF TCP-only mode", Transport::kAfTcpOnly, o25},
      {"NVMe/RDMA-56G", Transport::kRdma, RigOptions{}},
      {"NVMe/RoCE-100G", Transport::kRoce, RigOptions{}},
      {"NVMe-oAF", Transport::kAfShm, o25},
  };

  std::printf("workload: %llu KiB, QD %u, %.0f%% reads, sequential\n",
              static_cast<unsigned long long>(io_kib), qd, 100 * read_frac);

  Table t("Fabric comparison (timing plane)");
  t.header({"Transport", "BW (MiB/s)", "avg lat (us)", "p99 (us)",
            "p99.99 (us)"});
  for (const auto& row : rows) {
    sim::Scheduler sched;
    Rig rig(sched, row.opts, {StreamSpec{row.transport, spec, std::nullopt}});
    auto stats = rig.run();
    const auto& s = stats[0];
    t.row({row.name, Table::num(s.bandwidth_mib_s(), 1),
           Table::num(s.avg_latency_us(), 1),
           Table::num(ns_to_us(s.latency.p99()), 1),
           Table::num(ns_to_us(s.latency.p9999()), 1)});
  }
  t.print();
  return 0;
}

// Multi-tenant disaggregation (the paper's Fig 1 architecture): one storage
// service hosts two namespaces for two tenants on the same machine. Tenant A
// is co-located with the service and gets the shared-memory channel; tenant
// B connects "from another node" (different host token) and transparently
// falls back to the optimized TCP path — same application code. The example
// also demonstrates the §6 isolation rule: every connection gets its own shm
// region and a third party cannot map it.
//
//   build/examples/disaggregated_tenants
#include <atomic>
#include <cstdio>
#include <thread>

#include "af/locality.h"
#include "net/socket_channel.h"
#include "nvmf/initiator.h"
#include "nvmf/target.h"
#include "sim/real_executor.h"
#include "ssd/real_device.h"

using namespace oaf;

namespace {

struct Tenant {
  Tenant(const char* name, sim::RealExecutor& target_exec, af::ShmBroker& broker,
         ssd::Subsystem& subsystem, const std::string& conn)
      : name(name) {
    auto channels = net::make_socket_channel_pair(exec, target_exec).take();
    client_ch = std::move(channels.first);
    target_ch = std::move(channels.second);
    target = std::make_unique<nvmf::NvmfTargetConnection>(
        target_exec, *target_ch, copier, broker, subsystem,
        nvmf::TargetOptions{af::AfConfig::oaf(), conn});
  }

  void connect(af::ShmBroker& client_broker, const std::string& conn) {
    initiator = std::make_unique<nvmf::NvmfInitiator>(
        exec, *client_ch, copier, client_broker,
        nvmf::InitiatorOptions{af::AfConfig::oaf(), 16, conn});
    std::atomic<bool> done{false};
    exec.post([&] {
      initiator->connect([&](Status) { done = true; });
    });
    while (!done.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  /// Write then read back `bytes` at `slba`; returns true on verified data.
  bool roundtrip(u32 nsid, u64 slba, u64 bytes) {
    std::vector<u8> data(bytes);
    for (u64 i = 0; i < bytes; ++i) data[i] = static_cast<u8>(i ^ slba);
    std::vector<u8> out(bytes);
    std::atomic<int> phase{0};
    exec.post([&] {
      initiator->write(nsid, slba, data, [&](nvmf::NvmfInitiator::IoResult r) {
        if (!r.ok()) {
          phase = -1;
          return;
        }
        initiator->read(nsid, slba, out, [&](nvmf::NvmfInitiator::IoResult r2) {
          phase = r2.ok() ? 1 : -1;
        });
      });
    });
    while (phase.load() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return phase.load() == 1 && out == data;
  }

  const char* name;
  sim::RealExecutor exec;
  net::InlineCopier copier;
  std::unique_ptr<net::MsgChannel> client_ch;
  std::unique_ptr<net::MsgChannel> target_ch;
  std::unique_ptr<nvmf::NvmfTargetConnection> target;
  std::unique_ptr<nvmf::NvmfInitiator> initiator;
};

}  // namespace

int main() {
  sim::RealExecutor target_exec;

  // The physical host's helper (provisions IVSHMEM-style regions).
  af::ShmBroker host(/*node_token=*/1, af::ShmBroker::Backing::kPosixShm);
  // A different physical node: same code, different identity token.
  af::ShmBroker other_node(/*node_token=*/2, af::ShmBroker::Backing::kPosixShm);

  // One storage service with a namespace per tenant.
  ssd::RealDevice ssd_a(target_exec, 512, (64ull << 20) / 512);
  ssd::RealDevice ssd_b(target_exec, 512, (64ull << 20) / 512);
  ssd::Subsystem subsystem("nqn.2026-07.io.oaf:tenants");
  (void)subsystem.add_namespace(1, &ssd_a);
  (void)subsystem.add_namespace(2, &ssd_b);

  const std::string conn_a = "tenantA_" + std::to_string(getpid());
  const std::string conn_b = "tenantB_" + std::to_string(getpid());
  Tenant tenant_a("tenant-A (co-located)", target_exec, host, subsystem, conn_a);
  Tenant tenant_b("tenant-B (remote)", target_exec, host, subsystem, conn_b);

  tenant_a.connect(host, conn_a);        // same host -> shm granted
  tenant_b.connect(other_node, conn_b);  // different host -> TCP fallback

  std::printf("%-22s channel: %s\n", tenant_a.name,
              tenant_a.initiator->shm_active() ? "shared memory" : "TCP");
  std::printf("%-22s channel: %s\n", tenant_b.name,
              tenant_b.initiator->shm_active() ? "shared memory" : "TCP");

  // Both tenants use the identical API regardless of the fabric beneath.
  const bool a_ok = tenant_a.roundtrip(1, 128, 64 * 1024);
  const bool b_ok = tenant_b.roundtrip(2, 128, 64 * 1024);
  std::printf("%-22s 64 KiB roundtrip: %s\n", tenant_a.name,
              a_ok ? "verified" : "FAILED");
  std::printf("%-22s 64 KiB roundtrip: %s\n", tenant_b.name,
              b_ok ? "verified" : "FAILED");

  // Isolation (paper §6): tenant A's region is single-open; nobody else —
  // not even code on the same host — can map it again.
  auto snoop = host.open(conn_a);
  std::printf("second mapping of %s: %s\n", conn_a.c_str(),
              snoop.is_ok() ? "GRANTED (bug!)"
                            : snoop.status().to_string().c_str());

  return a_ok && b_ok && !snoop.is_ok() ? 0 : 1;
}
